//! Scalability report: strong scaling of the lattice and Monte Carlo
//! engines on the modelled cluster, with Amdahl fits, Karp–Flatt serial
//! fractions and efficiencies — the analysis pipeline behind figures
//! F1/F2/F3.
//!
//! ```text
//! cargo run --release -p mdp-core --example scalability_report
//! ```

use mdp_core::cluster::trace::{render_gantt, summarize};
use mdp_core::cluster::{collectives, run_spmd_traced, Communicator};
use mdp_core::prelude::*;
use mdp_perf::laws;

const PROCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn curve_for<F: Fn(usize) -> f64>(label: &str, time_at: F) -> ScalingCurve {
    let times: Vec<f64> = PROCS.iter().map(|&p| time_at(p)).collect();
    ScalingCurve::new(label, PROCS.to_vec(), times)
}

fn print_curve(c: &ScalingCurve) {
    let s = c.speedups();
    let e = c.efficiencies();
    let f = c.amdahl_fraction().unwrap_or(1.0);
    println!("{}", c.label);
    println!("  p      time[ms]   speedup   efficiency   Amdahl(f={f:.4})");
    for (i, &p) in c.procs.iter().enumerate() {
        println!(
            "  {:>2}  {:>10.2}  {:>8.2}  {:>10.2}   {:>8.2}",
            p,
            c.times[i] * 1e3,
            s[i],
            e[i],
            laws::amdahl_speedup(f, p)
        );
    }
    for (p, kf) in c.karp_flatt() {
        print!("  e({p})={kf:.4}");
    }
    println!("\n");
}

fn main() {
    let machine = Machine::cluster2002();

    // --- Lattice strong scaling: d=2, two problem sizes -------------------
    let m2 = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.5).expect("market");
    let maxcall = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);

    for steps in [128usize, 512] {
        let c = curve_for(&format!("BEG lattice d=2, N={steps}"), |p| {
            Pricer::new(Method::lattice(steps))
                .backend(Backend::cluster(p, machine))
                .price(&m2, &maxcall)
                .expect("lattice")
                .time
                .unwrap()
                .makespan
        });
        print_curve(&c);
    }

    // --- Monte Carlo strong scaling: d=5 ---------------------------------
    let m5 = GbmMarket::symmetric(5, 100.0, 0.3, 0.0, 0.05, 0.3).expect("market");
    let basket = Product::european(
        Payoff::BasketCall {
            weights: Product::equal_weights(5),
            strike: 100.0,
        },
        1.0,
    );
    for paths in [10_000u64, 1_000_000] {
        let cfg = McConfig {
            paths,
            block_size: (paths / 64).max(1),
            ..Default::default()
        };
        let c = curve_for(&format!("Monte Carlo d=5, {paths} paths"), |p| {
            Pricer::new(Method::MonteCarlo(cfg))
                .backend(Backend::cluster(p, machine))
                .price(&m5, &basket)
                .expect("mc")
                .time
                .unwrap()
                .makespan
        });
        print_curve(&c);
    }

    println!(
        "Reading the shapes: the lattice rolls over as per-step halo latency\n\
         eats the shrinking per-rank work (stronger for small N); Monte Carlo\n\
         stays near the ideal line until the final reduction matters at small\n\
         path counts. Exactly the strong-scaling story of the paper.\n"
    );

    // --- A per-rank timeline of a bulk-synchronous round --------------
    // 6 ranks do imbalanced compute then allreduce: the Gantt makes the
    // straggler-wait structure visible at a glance.
    println!("Timeline of one imbalanced compute + allreduce round (6 ranks):\n");
    let (results, traces) = run_spmd_traced(6, machine, |comm| {
        comm.compute(0.5e-3 * (comm.rank() + 1) as f64);
        collectives::allreduce_sum(comm, &[comm.rank() as f64])[0]
    })
    .expect("traced run");
    print!("{}", render_gantt(&traces, 64));
    for (r, t) in results.iter().zip(&traces) {
        let s = summarize(r.rank, t);
        println!(
            "  r{}: utilization {:>5.1}%  (compute {:.2} ms, wait {:.2} ms)",
            s.rank,
            s.utilization() * 100.0,
            s.compute * 1e3,
            s.wait * 1e3
        );
    }
}
