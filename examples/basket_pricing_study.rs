//! The curse-of-dimensionality study: price geometric basket calls in
//! d = 1..6 with every engine that can handle each dimension and compare
//! accuracy against the closed form — a runnable miniature of
//! experiment T5.
//!
//! ```text
//! cargo run --release -p mdp-core --example basket_pricing_study
//! ```

use mdp_core::prelude::*;
use mdp_perf::report::fmt_sig;
use mdp_perf::timing::measure;

fn main() {
    let mut table = Table::new(
        "Geometric basket call by engine and dimension (K=100, σ=0.3, ρ=0.3)",
        &["d", "engine", "price", "abs err", "time [s]"],
    );

    for d in 1..=6usize {
        let market = GbmMarket::symmetric(d, 100.0, 0.3, 0.0, 0.05, 0.3).expect("market");
        let product = Product::european(Payoff::GeometricCall { strike: 100.0 }, 1.0);
        let exact =
            analytic::geometric_basket_call(&market, &Product::equal_weights(d), 100.0, 1.0);

        // Lattice: node count (N+1)^d explodes — shrink N with d and stop
        // at d = 4, exactly the limitation the study demonstrates.
        if d <= 4 {
            let steps = match d {
                1 => 1000,
                2 => 200,
                3 => 60,
                _ => 24,
            };
            let (res, secs) =
                measure(|| Pricer::new(Method::lattice(steps)).price(&market, &product));
            let r = res.expect("lattice");
            table.push(&[
                d.to_string(),
                format!("lattice N={steps}"),
                format!("{:.4}", r.price),
                fmt_sig((r.price - exact).abs(), 2),
                fmt_sig(secs, 2),
            ]);
        } else {
            table.push(&[
                d.to_string(),
                "lattice".to_string(),
                "—".to_string(),
                "(N+1)^d intractable".to_string(),
                "—".to_string(),
            ]);
        }

        // PDE: only d ≤ 2 in this workspace (ADI).
        if d == 1 {
            let (res, secs) =
                measure(|| Pricer::new(Method::Fd1d(Fd1d::default())).price(&market, &product));
            let r = res.expect("fd1d");
            table.push(&[
                d.to_string(),
                "fd-1d CN".to_string(),
                format!("{:.4}", r.price),
                fmt_sig((r.price - exact).abs(), 2),
                fmt_sig(secs, 2),
            ]);
        } else if d == 2 {
            let (res, secs) =
                measure(|| Pricer::new(Method::Adi2d(Adi2d::default())).price(&market, &product));
            let r = res.expect("adi");
            table.push(&[
                d.to_string(),
                "adi-2d".to_string(),
                format!("{:.4}", r.price),
                fmt_sig((r.price - exact).abs(), 2),
                fmt_sig(secs, 2),
            ]);
        }

        // Monte Carlo: dimension-independent cost.
        let (res, secs) =
            measure(|| Pricer::new(Method::monte_carlo(100_000)).price(&market, &product));
        let r = res.expect("mc");
        table.push(&[
            d.to_string(),
            "mc 100k".to_string(),
            format!("{:.4}", r.price),
            fmt_sig((r.price - exact).abs(), 2),
            fmt_sig(secs, 2),
        ]);

        // QMC while the Sobol' dimension allows (steps=1 ⇒ dim = d ≤ 64).
        let (res, secs) = measure(|| {
            Pricer::new(Method::Qmc(QmcConfig {
                points: 16_384,
                replicates: 4,
                ..Default::default()
            }))
            .price(&market, &product)
        });
        let r = res.expect("qmc");
        table.push(&[
            d.to_string(),
            "qmc 4×16k".to_string(),
            format!("{:.4}", r.price),
            fmt_sig((r.price - exact).abs(), 2),
            fmt_sig(secs, 2),
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "The lattice wins in low dimension, dies by d≈4; Monte Carlo's cost is\n\
         flat in d — the crossover the multidimensional-pricing literature is about."
    );
}
