//! Quickstart: price a 3-asset basket call four different ways.
//!
//! ```text
//! cargo run --release -p mdp-core --example quickstart
//! ```

use mdp_core::prelude::*;

fn main() {
    // A symmetric 3-asset market: S=100, σ=20%, q=0, r=5%, ρ=0.4.
    let market = GbmMarket::symmetric(3, 100.0, 0.2, 0.0, 0.05, 0.4).expect("valid market");

    // European call on the equally-weighted arithmetic basket, K=100, T=1y.
    let product = Product::european(
        Payoff::BasketCall {
            weights: Product::equal_weights(3),
            strike: 100.0,
        },
        1.0,
    );

    println!("3-asset basket call (S=100, K=100, σ=0.2, ρ=0.4, r=5%, T=1)\n");

    // 1. The BEG multidimensional lattice.
    let lattice = Pricer::new(Method::lattice(100))
        .price(&market, &product)
        .expect("lattice");
    println!(
        "  BEG lattice (N=100)           : {:.4}   [{:.2}s]",
        lattice.price, lattice.wall_seconds
    );

    // 2. Plain Monte Carlo.
    let mc = Pricer::new(Method::monte_carlo(200_000))
        .price(&market, &product)
        .expect("mc");
    println!(
        "  Monte Carlo (200k paths)      : {:.4} ± {:.4}",
        mc.price,
        mc.std_error.unwrap()
    );

    // 3. Monte Carlo with the geometric-basket control variate.
    let cv = Pricer::new(Method::MonteCarlo(McConfig {
        paths: 200_000,
        variance_reduction: VarianceReduction::GeometricCv,
        ..Default::default()
    }))
    .price(&market, &product)
    .expect("cv");
    println!(
        "  MC + geometric CV (200k)      : {:.4} ± {:.4}",
        cv.price,
        cv.std_error.unwrap()
    );

    // 4. Randomised quasi-Monte Carlo.
    let qmc = Pricer::new(Method::Qmc(QmcConfig {
        points: 16_384,
        replicates: 8,
        ..Default::default()
    }))
    .price(&market, &product)
    .expect("qmc");
    println!(
        "  Sobol' QMC (8×16k points)     : {:.4} ± {:.4}",
        qmc.price,
        qmc.std_error.unwrap()
    );

    // And the same Monte Carlo run on a modelled 16-node 2002 cluster:
    // identical price, plus the virtual-time execution model.
    let par = Pricer::new(Method::monte_carlo(200_000))
        .backend(Backend::cluster(16, Machine::cluster2002()))
        .price(&market, &product)
        .expect("cluster");
    let tm = par.time.unwrap();
    println!(
        "\n  Same MC on 16 modelled nodes  : {:.4} (bit-identical: {})",
        par.price,
        par.price.to_bits() == mc.price.to_bits()
    );
    println!(
        "  modelled time {:.1} ms, comm fraction {:.1}%",
        tm.makespan * 1e3,
        tm.comm_fraction() * 100.0
    );
}
