//! Pricing-as-a-service demo: fire a burst of independent strike
//! requests at a [`PricingService`] and watch the coalescer fuse them,
//! then repeat the burst to see the plan cache collapse plan time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use mdp_core::prelude::*;
use mdp_serve::{PriceRequest, PricingService, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

fn burst(
    service: &PricingService,
    market: &Arc<GbmMarket>,
    strikes: &[f64],
) -> (f64, f64, usize) {
    let t0 = Instant::now();
    let tickets: Vec<_> = strikes
        .iter()
        .enumerate()
        .map(|(i, &strike)| {
            let product = Product::european(
                Payoff::BasketCall {
                    weights: vec![1.0],
                    strike,
                },
                1.0,
            );
            service
                .submit(PriceRequest::new(i as u64, Arc::clone(market), product))
                .expect("queue has room for the demo burst")
        })
        .collect();
    let mut max_latency = 0.0f64;
    let mut max_batch = 0usize;
    for t in tickets {
        let resp = t.wait().expect("service alive");
        resp.outcome.as_ref().expect("pricing succeeded");
        max_latency = max_latency.max(resp.latency_seconds());
        max_batch = max_batch.max(resp.batch_size);
    }
    (t0.elapsed().as_secs_f64(), max_latency, max_batch)
}

fn main() {
    let market = Arc::new(GbmMarket::single(100.0, 0.25, 0.01, 0.05).unwrap());
    let strikes: Vec<f64> = (0..64).map(|i| 70.0 + i as f64).collect();

    // Naive baseline: a pool of per-request pricers, one plan build each.
    let naive = PricingService::start(
        Pricer::new(Method::Fd1d(Fd1d::default())),
        ServeConfig {
            coalesce: false,
            ..Default::default()
        },
    );
    let (naive_wall, naive_p_max, _) = burst(&naive, &market, &strikes);
    let naive_stats = naive.shutdown();

    // Coalescing service: same burst fuses into multi-RHS ladder groups.
    let service = PricingService::start(
        Pricer::new(Method::Fd1d(Fd1d::default())),
        ServeConfig::default(),
    );
    let (cold_wall, cold_p_max, cold_batch) = burst(&service, &market, &strikes);
    // Second identical burst rides the plan cache.
    let (warm_wall, warm_p_max, warm_batch) = burst(&service, &market, &strikes);
    let stats = service.shutdown();

    println!("burst of {} strike requests, Fd1d default grid", strikes.len());
    println!(
        "  naive per-request : wall {:>8.2} ms  max latency {:>8.2} ms  ({} plan builds)",
        naive_wall * 1e3,
        naive_p_max * 1e3,
        naive_stats.completed
    );
    println!(
        "  coalesced (cold)  : wall {:>8.2} ms  max latency {:>8.2} ms  max batch {}",
        cold_wall * 1e3,
        cold_p_max * 1e3,
        cold_batch
    );
    println!(
        "  coalesced (warm)  : wall {:>8.2} ms  max latency {:>8.2} ms  max batch {}",
        warm_wall * 1e3,
        warm_p_max * 1e3,
        warm_batch
    );
    println!(
        "  cache: {} hits / {} misses, mean plan {:>10.1} ns (hit) vs {:>10.1} ns (miss)",
        stats.cache.hits,
        stats.cache.misses,
        stats.mean_plan_seconds_hit() * 1e9,
        stats.mean_plan_seconds_miss() * 1e9
    );
    println!(
        "  fused {} of {} grouped requests across {} groups (mean batch {:.1})",
        stats.fused,
        stats.grouped_requests,
        stats.groups,
        stats.mean_batch()
    );
}
