//! Portfolio risk report: price a heterogeneous book of multi-asset
//! derivatives with auto-selected engines, then aggregate present value
//! and per-asset deltas via bump-and-reprice sensitivities.
//!
//! ```text
//! cargo run --release -p mdp-core --example portfolio_risk
//! ```

use mdp_core::greeks::BumpConfig;
use mdp_core::prelude::*;

struct Position {
    name: &'static str,
    quantity: f64,
    product: Product,
}

fn main() {
    // One common 3-asset market for the whole book.
    let market = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.35).expect("market");

    let book = vec![
        Position {
            name: "long basket call",
            quantity: 100.0,
            product: Product::european(
                Payoff::BasketCall {
                    weights: Product::equal_weights(3),
                    strike: 100.0,
                },
                1.0,
            ),
        },
        Position {
            name: "short best-of call",
            quantity: -40.0,
            product: Product::european(Payoff::MaxCall { strike: 110.0 }, 1.0),
        },
        Position {
            name: "long worst-of put (American)",
            quantity: 60.0,
            product: Product::american(Payoff::MinPut { strike: 95.0 }, 1.0),
        },
        Position {
            name: "long geometric call",
            quantity: 25.0,
            product: Product::european(Payoff::GeometricCall { strike: 105.0 }, 1.0),
        },
    ];

    println!("Portfolio on a 3-asset market (S=100, σ=25%, ρ=0.35, r=4%, q=1%)\n");
    println!(
        "{:<30} {:>8} {:>10} {:>12}  engine",
        "position", "qty", "unit PV", "position PV"
    );

    let bumps = BumpConfig::default();
    let mut total_pv = 0.0;
    let mut total_delta = vec![0.0; market.dim()];
    let mut total_vega = vec![0.0; market.dim()];

    for pos in &book {
        let pricer = Pricer::auto(&market, &pos.product);
        let report = pricer.price(&market, &pos.product).expect("price");
        let greeks = pricer.greeks(&market, &pos.product, bumps).expect("greeks");
        total_pv += pos.quantity * report.price;
        for i in 0..market.dim() {
            total_delta[i] += pos.quantity * greeks.delta[i];
            total_vega[i] += pos.quantity * greeks.vega[i];
        }
        println!(
            "{:<30} {:>8.0} {:>10.4} {:>12.2}  {}",
            pos.name,
            pos.quantity,
            report.price,
            pos.quantity * report.price,
            report.engine
        );
    }

    println!("\nAggregate risk:");
    println!("  portfolio PV : {total_pv:>12.2}");
    for i in 0..market.dim() {
        println!(
            "  asset {}      : delta {:>10.2} sh   vega {:>10.2} /vol-pt",
            i + 1,
            total_delta[i],
            total_vega[i] / 100.0
        );
    }
    println!(
        "\nA 1% drop in every asset moves the book by ≈ {:+.2}",
        -0.01 * 100.0 * total_delta.iter().sum::<f64>()
    );
}
