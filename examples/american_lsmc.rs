//! American option pricing: LSMC against the lattice and PDE references,
//! in one and two dimensions, including the parallel LSMC whose per-date
//! regression is the Amdahl bottleneck (experiment T7 in miniature).
//!
//! ```text
//! cargo run --release -p mdp-core --example american_lsmc
//! ```

use mdp_core::prelude::*;

fn main() {
    // --- 1-D American put ------------------------------------------------
    let m1 = GbmMarket::single(100.0, 0.2, 0.0, 0.05).expect("market");
    let put = Product::american(
        Payoff::BasketPut {
            weights: vec![1.0],
            strike: 110.0,
        },
        1.0,
    );

    let binomial = Pricer::new(Method::Binomial {
        steps: 2000,
        kind: BinomialKind::CoxRossRubinstein,
    })
    .price(&m1, &put)
    .expect("binomial");

    let pde = Pricer::new(Method::Fd1d(Fd1d::default()))
        .price(&m1, &put)
        .expect("pde");

    let lsmc = Pricer::new(Method::Lsmc(LsmcConfig {
        paths: 50_000,
        steps: 50,
        degree: 3,
        ..Default::default()
    }))
    .price(&m1, &put)
    .expect("lsmc");

    println!("American put, S=100 K=110 σ=0.2 r=5% T=1\n");
    println!("  binomial (N=2000)   : {:.4}", binomial.price);
    println!("  CN finite difference: {:.4}", pde.price);
    println!(
        "  LSMC (50k × 50 dates): {:.4} ± {:.4}  (low-biased policy estimate)",
        lsmc.price,
        lsmc.std_error.unwrap()
    );
    println!(
        "  European (analytic)  : {:.4}  → early-exercise premium ≈ {:.4}\n",
        analytic::black_scholes_put(100.0, 110.0, 0.05, 0.0, 0.2, 1.0),
        binomial.price - analytic::black_scholes_put(100.0, 110.0, 0.05, 0.0, 0.2, 1.0)
    );

    // --- 2-D American min-put ---------------------------------------------
    let m2 = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).expect("market");
    let minput = Product::american(Payoff::MinPut { strike: 110.0 }, 1.0);

    let lattice = Pricer::new(Method::lattice(150))
        .price(&m2, &minput)
        .expect("lattice");
    let adi = Pricer::new(Method::Adi2d(Adi2d {
        space_points: 151,
        time_steps: 150,
        ..Default::default()
    }))
    .price(&m2, &minput)
    .expect("adi");
    let lsmc2 = Pricer::new(Method::Lsmc(LsmcConfig {
        paths: 50_000,
        steps: 50,
        degree: 3,
        ..Default::default()
    }))
    .price(&m2, &minput)
    .expect("lsmc2");

    println!("American min-put on two assets, K=110, ρ=0.3\n");
    println!("  BEG lattice (N=150) : {:.4}", lattice.price);
    println!("  ADI (151² × 150)    : {:.4}", adi.price);
    println!(
        "  LSMC (50k × 50)     : {:.4} ± {:.4}\n",
        lsmc2.price,
        lsmc2.std_error.unwrap()
    );

    // --- Parallel LSMC: the regression is the serial fraction -------------
    println!("Distributed LSMC on the modelled 2002 cluster (25k paths × 25 dates):");
    let cfg = LsmcConfig {
        paths: 25_000,
        steps: 25,
        block_size: 500,
        ..Default::default()
    };
    let mut t1 = None;
    for ranks in [1usize, 2, 4, 8, 16] {
        let r = Pricer::new(Method::Lsmc(cfg))
            .backend(Backend::cluster(ranks, Machine::cluster2002()))
            .price(&m2, &minput)
            .expect("cluster lsmc");
        let tm = r.time.unwrap();
        let t_first = *t1.get_or_insert(tm.makespan);
        println!(
            "  p={ranks:>2}: price {:.4}, modelled {:>7.1} ms, speedup {:>5.2}, comm {:>4.1}%",
            r.price,
            tm.makespan * 1e3,
            t_first / tm.makespan,
            tm.comm_fraction() * 100.0
        );
    }
    println!("\nThe per-date allreduce of the regression caps the speedup — Amdahl in action.");
}
