//! In-tree shim for the subset of [rayon](https://docs.rs/rayon) this
//! workspace uses (see `shims/README.md`).
//!
//! Fork-join is implemented with `std::thread::scope`: an index range or
//! a set of mutable chunk slabs is split into one contiguous span per
//! available core, each span runs on its own OS thread, and results are
//! stitched back together **in input order** — so `collect()` returns
//! exactly what the sequential iterator would, which is what the
//! parallel-equals-sequential tests of this repository rely on.

use std::ops::Range;

/// Number of worker threads a parallel call fans out to.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `len` work items into at most `workers` contiguous spans.
fn spans(len: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut lo = 0;
    for w in 0..workers {
        let hi = lo + base + usize::from(w < extra);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Integer index types a parallel range can be built over.
pub trait ParIndex: Copy + Send + Sync + 'static {
    /// Convert to a usize offset.
    fn to_usize(self) -> usize;
    /// Convert back from a usize offset.
    fn from_usize(u: usize) -> Self;
}

macro_rules! par_index {
    ($($t:ty),*) => {$(
        impl ParIndex for $t {
            #[inline]
            fn to_usize(self) -> usize {
                self as usize
            }
            #[inline]
            fn from_usize(u: usize) -> Self {
                u as $t
            }
        }
    )*};
}
par_index!(usize, u64, u32, i64, i32);

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: ParIndex> IntoParallelIterator for Range<T> {
    type Iter = ParRange<T>;
    fn into_par_iter(self) -> ParRange<T> {
        ParRange { range: self }
    }
}

/// A parallel iterator over an integer range.
pub struct ParRange<T> {
    range: Range<T>,
}

impl<T: ParIndex> ParRange<T> {
    /// Map each index through `f` (evaluated lazily at the sink).
    pub fn map<R, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            range: self.range,
            f,
        }
    }

    /// Run `f` on every index, in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        self.map(f).run();
    }
}

/// The result of [`ParRange::map`]: a mapped parallel range.
pub struct ParMap<T, F> {
    range: Range<T>,
    f: F,
}

impl<T: ParIndex, F> ParMap<T, F> {
    fn run_vec<R: Send>(self) -> Vec<R>
    where
        F: Fn(T) -> R + Sync,
    {
        let lo = self.range.start.to_usize();
        let len = self.range.end.to_usize().saturating_sub(lo);
        if len == 0 {
            return Vec::new();
        }
        let spans = spans(len, current_num_threads());
        if spans.len() == 1 {
            return (0..len).map(|i| (self.f)(T::from_usize(lo + i))).collect();
        }
        let f = &self.f;
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(spans.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = spans
                .into_iter()
                .map(|span| {
                    s.spawn(move || span.map(|i| f(T::from_usize(lo + i))).collect::<Vec<R>>())
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(len);
        for p in parts {
            out.extend(p);
        }
        out
    }

    fn run(self)
    where
        F: Fn(T) + Sync,
    {
        let _: Vec<()> = self.run_vec();
    }

    /// Evaluate in parallel, collecting results **in index order**.
    pub fn collect<C>(self) -> C
    where
        F: Fn(T) -> <C as FromParVec>::Item + Sync,
        C: FromParVec,
        <C as FromParVec>::Item: Send,
    {
        C::from_par_vec(self.run_vec())
    }
}

/// Collection types a parallel map can collect into.
pub trait FromParVec {
    /// Element type.
    type Item;
    /// Build from the in-order vector of results.
    fn from_par_vec(v: Vec<Self::Item>) -> Self;
}

impl<R> FromParVec for Vec<R> {
    type Item = R;
    fn from_par_vec(v: Vec<R>) -> Self {
        v
    }
}

impl<R, E> FromParVec for Result<Vec<R>, E> {
    type Item = Result<R, E>;
    fn from_par_vec(v: Vec<Result<R, E>>) -> Self {
        v.into_iter().collect()
    }
}

/// Parallel mutable chunking of slices (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `size`, processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
        EnumeratedChunksMut(self)
    }

    /// Run `f` on every chunk, in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated parallel chunk iterator.
pub struct EnumeratedChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> EnumeratedChunksMut<'_, T> {
    /// Run `f` on every `(index, chunk)` pair, in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let chunks: Vec<&mut [T]> = self.0.slice.chunks_mut(self.0.size).collect();
        let n = chunks.len();
        if n == 0 {
            return;
        }
        let spans = spans(n, current_num_threads());
        if spans.len() == 1 {
            for (i, c) in chunks.into_iter().enumerate() {
                f((i, c));
            }
            return;
        }
        let f = &f;
        // Hand each worker a contiguous run of chunks.
        let mut rest = chunks;
        std::thread::scope(|s| {
            let mut offset = 0usize;
            for span in spans {
                let take = span.end - span.start;
                let mine: Vec<&mut [T]> = rest.drain(..take).collect();
                let base = offset;
                offset += take;
                s.spawn(move || {
                    for (i, c) in mine.into_iter().enumerate() {
                        f((base + i, c));
                    }
                });
            }
        });
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, (i * i) as u64);
        }
    }

    #[test]
    fn empty_range_collects_empty() {
        let v: Vec<usize> = (5usize..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn chunks_mut_touch_every_element() {
        let mut data = vec![0usize; 997];
        data.par_chunks_mut(64).enumerate().for_each(|(j, chunk)| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = j * 64 + k;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }
}
