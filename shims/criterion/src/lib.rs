//! In-tree shim for the subset of [criterion](https://docs.rs/criterion)
//! this workspace uses (see `shims/README.md`).
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples
//! of the closure, and reports mean / min / max wall time plus ns per
//! element when a [`Throughput`] is set. Arguments after `--`:
//!
//! * `--quick` — 3 samples, 1 warm-up iteration (CI smoke mode);
//! * any bare string — substring filter on `group/id` names.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work attributed to one benchmark iteration, for ns/element reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements.
    Elements(u64),
    /// The iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    warmup: usize,
    /// Collected per-sample durations of the last `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    /// Time `f`: warm-up iterations, then one timed call per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        self.last.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.last.push(t.elapsed());
        }
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    warmup: usize,
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warmup: 2,
            filter: None,
            quick: false,
        }
    }
}

impl Criterion {
    /// Harness configured from the process arguments (see module docs).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" | "-q" => {
                    c.quick = true;
                    c.sample_size = 3;
                    c.warmup = 1;
                }
                // Flags cargo/criterion conventionally pass; ignore.
                s if s.starts_with('-') => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Print the closing line.
    pub fn final_summary(&self) {
        println!(
            "benchmarks complete{}",
            if self.quick { " (quick mode)" } else { "" }
        );
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.criterion.quick {
            self.criterion.sample_size
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let mut b = Bencher {
            samples,
            warmup: self.criterion.warmup,
            last: Vec::new(),
        };
        f(&mut b);
        report(&full, &b.last, self.throughput);
    }

    /// Benchmark `f` under `id` with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<44} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    let mut line = format!(
        "{name:<44} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(t) = throughput {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if n > 0 {
            let per = mean.as_nanos() as f64 / n as f64;
            let _ = write!(line, "  thrpt: {per:.1} ns/{unit}");
        }
    }
    println!("{line}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            warmup: 1,
            filter: None,
            quick: false,
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 3,
            warmup: 1,
            filter: Some("other".into()),
            quick: false,
        };
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u32;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 0);
    }
}
