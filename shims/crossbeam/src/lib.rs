//! In-tree shim for the subset of [crossbeam](https://docs.rs/crossbeam)
//! this workspace uses (see `shims/README.md`): unbounded MPSC channels.
//!
//! `std::sync::mpsc` provides the same semantics the SPMD runtime needs —
//! unbounded buffering, per-sender FIFO ordering, `recv_timeout`, and
//! clonable `Sender`s — so the shim is a plain re-export plus the
//! `unbounded` constructor name.

/// Multi-producer channels (crossbeam-channel API subset).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_per_sender_and_timeout() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        ));
        drop(tx);
        drop(tx2);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }
}
