//! In-tree shim for the subset of [proptest](https://docs.rs/proptest)
//! this workspace uses (see `shims/README.md`).
//!
//! The `proptest!` macro expands each property into an ordinary `#[test]`
//! that draws `cases` input tuples from a deterministic per-test RNG
//! (seeded from the test name, so failures reproduce run-to-run) and
//! executes the body once per tuple. `prop_assert*` failures abort the
//! case with the offending inputs printed. There is **no shrinking** —
//! the reported counterexample is the raw failing draw.

use std::fmt;
use std::ops::Range;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 case RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn new(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values for one property input.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty strategy range");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32);

/// Strategy combinators namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy producing `Vec`s with element strategy `S` and a
        /// uniformly drawn length in `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Vector of values from `elem`, length drawn from `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = Strategy::generate(&self.len, rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property, failing the case (not the whole
/// process) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `if cond {} else { .. }` rather than `if !cond`: a negated
        // partial-ord comparison in `cond` would trip clippy's
        // `neg_cmp_op_on_partial_ord` at every call site.
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            va,
            vb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "assertion failed: {} == {} ({:?} vs {:?}): {}",
            stringify!($a),
            stringify!($b),
            va,
            vb,
            format!($($fmt)*)
        );
    }};
}

/// Define seeded random-case property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop_name(x in 0.0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng = $crate::TestRng::new(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!("{} = {:?}, ", stringify!($arg), $arg));)*
                    s
                };
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in -2.0f64..3.0, n in 1usize..10, s in 5u64..9) {
            prop_assert!((-2.0..3.0).contains(&x), "x = {x}");
            prop_assert!((1..10).contains(&n));
            prop_assert!((5..9).contains(&s));
        }

        /// Vec strategy respects the length range.
        #[test]
        fn vec_lengths(data in prop::collection::vec(0.0f64..1.0, 2..20)) {
            prop_assert!(data.len() >= 2 && data.len() < 20, "len {}", data.len());
            prop_assert!(data.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = TestRng::new("x", 3).next_u64();
        let b = TestRng::new("x", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::new("x", 4).next_u64());
        assert_ne!(a, TestRng::new("y", 3).next_u64());
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        always_fails();
    }
}
