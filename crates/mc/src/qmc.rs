//! Randomised quasi-Monte Carlo pricing.
//!
//! Sobol' points are mapped to Gaussian path increments through the
//! inverse normal cdf (the only monotone choice) with **Brownian-bridge**
//! dimension ordering: Sobol' coordinate 0 drives each asset's terminal
//! value, later coordinates fill midpoints, so the best-distributed
//! coordinates carry the most variance. The error bar comes from
//! digital-shift replicates — `replicates` independent randomisations of
//! the same net — because a single QMC estimate has no internal variance
//! estimate.

use crate::panel::{eval_panel, PanelScratch};
use crate::path::{GbmStepper, SoaPanel, PANEL};
use crate::McError;
use mdp_math::brownian::BrownianBridge;
use mdp_math::halton::HaltonSequence;
use mdp_math::rng::{NormalInverse, Rng64, SplitMix64};
use mdp_math::sobol::SobolSequence;
use mdp_model::{ExerciseStyle, GbmMarket, Product};

/// Which low-discrepancy family drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QmcSequence {
    /// Sobol' digital nets with digital-shift randomisation (default).
    #[default]
    Sobol,
    /// Halton with Cranley–Patterson rotation. Kept for cross-checks;
    /// degrades in high dimension (see `mdp_math::halton`).
    Halton,
}

/// Configuration of a randomised QMC run.
#[derive(Debug, Clone, Copy)]
pub struct QmcConfig {
    /// Sobol' points per replicate.
    pub points: u64,
    /// Monitoring steps (Sobol' dimension = steps × assets ≤ 64).
    pub steps: usize,
    /// Independent digital-shift replicates (≥ 2 for an error bar).
    pub replicates: u32,
    /// Seed for the digital shifts.
    pub seed: u64,
    /// Use Brownian-bridge ordering (false = incremental ordering, for
    /// the ablation that shows why the bridge matters).
    pub brownian_bridge: bool,
    /// Low-discrepancy family.
    pub sequence: QmcSequence,
}

impl Default for QmcConfig {
    fn default() -> Self {
        QmcConfig {
            points: 16_384,
            steps: 1,
            replicates: 8,
            seed: 0x50B0,
            brownian_bridge: true,
            sequence: QmcSequence::Sobol,
        }
    }
}

/// A randomised low-discrepancy point source: one replicate's stream.
enum PointSource {
    Sobol(SobolSequence),
    /// Halton with a Cranley–Patterson rotation vector.
    Halton(HaltonSequence, Vec<f64>),
}

impl PointSource {
    fn new(seq: QmcSequence, dim: usize, seed: u64) -> Result<Self, McError> {
        match seq {
            QmcSequence::Sobol => {
                let mut s = SobolSequence::scrambled(dim, seed)
                    .map_err(|e| McError::Unsupported(e.to_string()))?;
                s.skip(1); // skip the (shifted) origin uniformly across replicates
                Ok(PointSource::Sobol(s))
            }
            QmcSequence::Halton => {
                let h =
                    HaltonSequence::new(dim).map_err(|e| McError::Unsupported(e.to_string()))?;
                let mut rng = SplitMix64::new(seed ^ 0x4A17);
                let shift = (0..dim).map(|_| rng.next_f64()).collect();
                Ok(PointSource::Halton(h, shift))
            }
        }
    }

    fn next_point(&mut self, out: &mut [f64]) {
        match self {
            PointSource::Sobol(s) => s.next_point(out),
            PointSource::Halton(h, shift) => {
                h.next_point(out);
                for (x, sh) in out.iter_mut().zip(shift.iter()) {
                    *x = (*x + sh).fract();
                }
            }
        }
    }
}

/// Result of a randomised QMC run.
#[derive(Debug, Clone, Copy)]
pub struct QmcResult {
    /// Price estimate (mean over replicates).
    pub price: f64,
    /// Standard error across replicates.
    pub std_error: f64,
    /// Points per replicate.
    pub points: u64,
    /// Replicates used.
    pub replicates: u32,
}

/// Price a European product with randomised QMC.
pub fn price_qmc(
    market: &GbmMarket,
    product: &Product,
    cfg: QmcConfig,
) -> Result<QmcResult, McError> {
    product.validate_for(market)?;
    if product.exercise != ExerciseStyle::European {
        return Err(McError::Unsupported("QMC engine is European-only".into()));
    }
    if cfg.points == 0 {
        return Err(McError::ZeroPaths);
    }
    if cfg.steps == 0 {
        return Err(McError::ZeroSteps);
    }
    if cfg.replicates == 0 {
        return Err(McError::Unsupported("need at least one replicate".into()));
    }
    let d = market.dim();
    let sobol_dim = d * cfg.steps;
    if sobol_dim > mdp_math::sobol::MAX_DIMENSION {
        return Err(McError::Unsupported(format!(
            "Sobol' dimension {sobol_dim} exceeds {}",
            mdp_math::sobol::MAX_DIMENSION
        )));
    }

    let stepper = GbmStepper::new(market, product.maturity, cfg.steps);
    let log0: Vec<f64> = market.spots().iter().map(|s| s.ln()).collect();
    let disc = market.discount(product.maturity);
    let bridge = BrownianBridge::uniform(product.maturity, cfg.steps);
    let dt = product.maturity / cfg.steps as f64;
    let sq_dt = dt.sqrt();
    let payoff = &product.payoff;
    let s0_first = market.spots()[0];

    let mut estimates = Vec::with_capacity(cfg.replicates as usize);
    let mut point = vec![0.0; sobol_dim];
    let mut normals = vec![0.0; sobol_dim];
    // Per-asset scratch for the bridge construction.
    let mut zcol = vec![0.0; cfg.steps];
    let mut wcol = vec![0.0; cfg.steps];
    // Points ride the batched SoA kernel: each point's normal vector
    // becomes one panel lane, walked and evaluated by the same fused
    // panel pass as the pseudo-random engine. Lane order is point order,
    // so the replicate sum associates exactly as the per-point loop did.
    let mut panel = SoaPanel::new(&stepper, PANEL);
    let mut scratch = PanelScratch::new(d, PANEL);

    for rep in 0..cfg.replicates {
        let mut seq = PointSource::new(cfg.sequence, sobol_dim, cfg.seed ^ ((rep as u64) << 32))?;
        let mut sum = 0.0;
        let mut remaining = cfg.points;
        while remaining > 0 {
            let n = remaining.min(PANEL as u64) as usize;
            for lane in 0..n {
                seq.next_point(&mut point);
                // Coordinate layout: index (level ℓ, asset i) ↦ ℓ·d + i so
                // the leading Sobol' dimensions cover every asset's coarse
                // levels.
                if cfg.brownian_bridge {
                    for asset in 0..d {
                        for (l, z) in zcol.iter_mut().enumerate() {
                            *z = NormalInverse::transform(clamp_open(point[l * d + asset]));
                        }
                        bridge.build_path(&zcol, &mut wcol);
                        // Convert the Brownian path to per-step standardised
                        // increments for the exact stepper.
                        let mut prev = 0.0;
                        for (s, w) in wcol.iter().enumerate() {
                            normals[s * d + asset] = (w - prev) / sq_dt;
                            prev = *w;
                        }
                    }
                } else {
                    for (k, z) in normals.iter_mut().enumerate() {
                        *z = NormalInverse::transform(clamp_open(point[k]));
                    }
                }
                panel.set_lane_normals(lane, &normals);
            }
            eval_panel(
                &stepper,
                &log0,
                payoff,
                s0_first,
                None,
                &mut panel,
                &mut scratch,
                n,
            );
            for lane in 0..n {
                sum += disc * scratch.ys[lane];
            }
            remaining -= n as u64;
        }
        estimates.push(sum / cfg.points as f64);
    }

    let r = estimates.len() as f64;
    let mean = estimates.iter().sum::<f64>() / r;
    let std_error = if estimates.len() > 1 {
        let var = estimates
            .iter()
            .map(|e| (e - mean) * (e - mean))
            .sum::<f64>()
            / (r - 1.0);
        (var / r).sqrt()
    } else {
        0.0
    };
    Ok(QmcResult {
        price: mean,
        std_error,
        points: cfg.points,
        replicates: cfg.replicates,
    })
}

/// Keep a uniform strictly inside (0, 1) so `Φ⁻¹` stays finite.
#[inline]
fn clamp_open(u: f64) -> f64 {
    u.clamp(1e-16, 1.0 - 1e-16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_model::{analytic, Payoff};

    fn basket5() -> (GbmMarket, Product) {
        (
            GbmMarket::symmetric(5, 100.0, 0.3, 0.0, 0.05, 0.4).unwrap(),
            Product::european(Payoff::GeometricCall { strike: 100.0 }, 1.0),
        )
    }

    #[test]
    fn qmc_matches_closed_form_tightly() {
        let (m, p) = basket5();
        let exact = analytic::geometric_basket_call(&m, &Product::equal_weights(5), 100.0, 1.0);
        let r = price_qmc(
            &m,
            &p,
            QmcConfig {
                points: 8192,
                replicates: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (r.price - exact).abs() < 5e-3,
            "{} vs {exact} (se {})",
            r.price,
            r.std_error
        );
    }

    #[test]
    fn qmc_beats_plain_mc_at_equal_budget() {
        use crate::engine::{McConfig, McEngine};
        let (m, p) = basket5();
        let exact = analytic::geometric_basket_call(&m, &Product::equal_weights(5), 100.0, 1.0);
        let budget = 16_384u64;
        let q = price_qmc(
            &m,
            &p,
            QmcConfig {
                points: budget / 4,
                replicates: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let mc = McEngine::new(McConfig {
            paths: budget,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        let err_q = (q.price - exact).abs();
        let err_mc = (mc.price - exact).abs();
        // QMC should be decisively tighter for this smooth 5-dim integrand.
        assert!(err_q < err_mc || err_q < 2e-3, "qmc {err_q} vs mc {err_mc}");
        assert!(
            q.std_error < mc.std_error,
            "{} vs {}",
            q.std_error,
            mc.std_error
        );
    }

    #[test]
    fn bridge_ordering_helps_path_dependent_payoffs() {
        // Asian option with 16 monitoring dates in 1 asset: effective
        // dimension is low under the bridge, high without it.
        let m = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let p = Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0);
        // Reference from a big bridged run.
        let reference = price_qmc(
            &m,
            &p,
            QmcConfig {
                points: 32_768,
                steps: 16,
                replicates: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let with = price_qmc(
            &m,
            &p,
            QmcConfig {
                points: 2048,
                steps: 16,
                replicates: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let without = price_qmc(
            &m,
            &p,
            QmcConfig {
                points: 2048,
                steps: 16,
                replicates: 6,
                brownian_bridge: false,
                ..Default::default()
            },
        )
        .unwrap();
        // Both unbiased; the bridge should have the smaller replicate
        // scatter.
        assert!((with.price - reference.price).abs() < 0.05);
        assert!((without.price - reference.price).abs() < 0.2);
        assert!(
            with.std_error <= without.std_error * 1.2,
            "bridge {} vs raw {}",
            with.std_error,
            without.std_error
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (m, p) = basket5();
        let cfg = QmcConfig {
            points: 1024,
            replicates: 2,
            ..Default::default()
        };
        let a = price_qmc(&m, &p, cfg).unwrap();
        let b = price_qmc(&m, &p, cfg).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
    }

    #[test]
    fn rejects_bad_configs() {
        let (m, p) = basket5();
        assert!(price_qmc(
            &m,
            &p,
            QmcConfig {
                points: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(price_qmc(
            &m,
            &p,
            QmcConfig {
                steps: 20, // 5 assets × 20 steps = 100 > 64 dims
                ..Default::default()
            }
        )
        .is_err());
        let am = Product::american(Payoff::MaxCall { strike: 1.0 }, 1.0);
        assert!(price_qmc(&m, &am, QmcConfig::default()).is_err());
    }
}

#[cfg(test)]
mod halton_tests {
    use super::*;
    use mdp_model::{analytic, Payoff, Product};

    #[test]
    fn halton_matches_sobol_and_closed_form_in_low_dim() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::GeometricCall { strike: 100.0 }, 1.0);
        let exact = analytic::geometric_basket_call(&m, &Product::equal_weights(3), 100.0, 1.0);
        let halton = price_qmc(
            &m,
            &p,
            QmcConfig {
                points: 8192,
                replicates: 4,
                sequence: QmcSequence::Halton,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (halton.price - exact).abs() < 4.0 * halton.std_error + 5e-3,
            "halton {} vs {exact} (se {})",
            halton.price,
            halton.std_error
        );
        let sobol = price_qmc(
            &m,
            &p,
            QmcConfig {
                points: 8192,
                replicates: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((halton.price - sobol.price).abs() < 0.02);
    }

    #[test]
    fn halton_deterministic_per_seed() {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let p = Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        let cfg = QmcConfig {
            points: 1024,
            replicates: 2,
            sequence: QmcSequence::Halton,
            ..Default::default()
        };
        let a = price_qmc(&m, &p, cfg).unwrap();
        let b = price_qmc(&m, &p, cfg).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
    }
}
