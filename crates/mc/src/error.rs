//! Monte Carlo engine errors.

use mdp_model::ModelError;
use std::fmt;

/// Failures of the Monte Carlo engines.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// Zero paths requested.
    ZeroPaths,
    /// Zero monitoring steps requested.
    ZeroSteps,
    /// The chosen configuration cannot price the product (e.g. the
    /// European engine handed an American product, a control variate
    /// without a closed form, Sobol' dimension overflow).
    Unsupported(String),
    /// Model-layer validation failed.
    Model(ModelError),
    /// The run's cooperative cancel token tripped (deadline expired or
    /// the caller abandoned the request) before all path blocks ran.
    Cancelled,
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::ZeroPaths => write!(f, "Monte Carlo needs at least one path"),
            McError::ZeroSteps => write!(f, "Monte Carlo needs at least one monitoring step"),
            McError::Unsupported(why) => write!(f, "unsupported configuration: {why}"),
            McError::Model(e) => write!(f, "{e}"),
            McError::Cancelled => write!(f, "Monte Carlo run cancelled before completion"),
        }
    }
}

impl std::error::Error for McError {}

impl From<ModelError> for McError {
    fn from(e: ModelError) -> Self {
        McError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(McError::ZeroPaths.to_string().contains("path"));
        let e: McError = ModelError::InvalidParameter {
            what: "spot",
            value: -1.0,
        }
        .into();
        assert!(matches!(e, McError::Model(_)));
    }
}
