//! Longstaff–Schwartz least-squares Monte Carlo for American products.
//!
//! The American exercise decision needs the conditional expectation of
//! continuing, which LSMC approximates by regressing realised discounted
//! cashflows on basis functions of the current (normalised) asset
//! prices, using only in-the-money paths (Longstaff & Schwartz 2001).
//!
//! The regression is solved through the **normal equations**
//! `(XᵀX)β = Xᵀy` with a tiny ridge for safety. That choice is
//! deliberate: the normal-equation sums are small `k×k` matrices that
//! merge by addition, so the distributed driver
//! ([`crate::cluster_driver::price_lsmc_cluster`]) computes local sums,
//! allreduces them, and solves the same tiny system on every rank — the
//! classic parallel-LSMC structure in which the regression is the
//! *serial* fraction that Amdahl's law punishes (experiment T7).

use crate::path::GbmStepper;
use crate::McError;
use mdp_math::linalg::{Cholesky, Matrix};
use mdp_math::poly::{BasisKind, TensorBasis};
use mdp_math::rng::{NormalPolar, NormalSampler, Substreams, Xoshiro256StarStar};
use mdp_model::{ExerciseStyle, GbmMarket, Product};

/// Configuration of an LSMC run.
#[derive(Debug, Clone, Copy)]
pub struct LsmcConfig {
    /// Number of simulated paths.
    pub paths: u64,
    /// Exercise dates (uniform grid; the Bermudan approximation of the
    /// American right).
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
    /// Scalar basis degree per asset.
    pub degree: usize,
    /// Basis family.
    pub basis: BasisKind,
    /// Ridge added to the normal-equation diagonal.
    pub ridge: f64,
    /// Paths per substream block (same invariance story as the European
    /// engine).
    pub block_size: u64,
}

impl Default for LsmcConfig {
    fn default() -> Self {
        LsmcConfig {
            paths: 20_000,
            steps: 50,
            seed: 0x1005E,
            degree: 2,
            basis: BasisKind::Monomial,
            ridge: 1e-10,
            block_size: 4096,
        }
    }
}

/// Result of an LSMC run.
#[derive(Debug, Clone, Copy)]
pub struct LsmcResult {
    /// Price estimate (a low-biased exercise-policy estimate, as usual
    /// for plain LSMC).
    pub price: f64,
    /// Standard error of the cashflow mean.
    pub std_error: f64,
    /// Paths used.
    pub paths: u64,
}

/// The path panel LSMC regresses over: `spots[t][path·d..(path+1)·d]`
/// for `t ∈ 1..=steps`.
pub struct PathPanel {
    /// Asset count.
    pub dim: usize,
    /// Exercise dates.
    pub steps: usize,
    /// Paths.
    pub paths: usize,
    /// `steps` layers, each `paths·dim` values.
    pub spots: Vec<Vec<f64>>,
}

/// Simulate the full path panel (block-substream design, identical
/// panels across drivers for the same `(seed, block_size)`); `blocks`
/// selects which substream blocks to simulate — the sequential engine
/// passes all of them, a rank passes its share.
pub fn simulate_panel(
    market: &GbmMarket,
    product: &Product,
    cfg: &LsmcConfig,
    blocks: std::ops::Range<u64>,
) -> PathPanel {
    let d = market.dim();
    let stepper = GbmStepper::new(market, product.maturity, cfg.steps);
    let log0: Vec<f64> = market.spots().iter().map(|s| s.ln()).collect();
    let base = Xoshiro256StarStar::seed_from(cfg.seed);
    let num_paths: u64 = blocks.clone().map(|b| block_paths(cfg, b)).sum();
    let mut spots = vec![vec![0.0; num_paths as usize * d]; cfg.steps];
    let mut sampler = NormalPolar::new();
    let mut z = vec![0.0; d];
    let mut log_buf = vec![0.0; d];
    let mut path_idx = 0usize;
    for b in blocks {
        let mut rng = base.substream(b);
        sampler.reset();
        for _ in 0..block_paths(cfg, b) {
            log_buf.copy_from_slice(&log0);
            for (t, layer) in spots.iter_mut().enumerate() {
                let _ = t;
                sampler.fill(&mut rng, &mut z);
                stepper.step(&mut log_buf, &z);
                for (i, l) in log_buf.iter().enumerate() {
                    layer[path_idx * d + i] = l.exp();
                }
            }
            path_idx += 1;
        }
    }
    PathPanel {
        dim: d,
        steps: cfg.steps,
        paths: num_paths as usize,
        spots,
    }
}

/// Paths in substream block `b`.
pub fn block_paths(cfg: &LsmcConfig, b: u64) -> u64 {
    let lo = b * cfg.block_size;
    let hi = (lo + cfg.block_size).min(cfg.paths);
    hi.saturating_sub(lo)
}

/// Number of substream blocks.
pub fn num_blocks(cfg: &LsmcConfig) -> u64 {
    cfg.paths.div_ceil(cfg.block_size)
}

/// Normal-equation sums for one exercise date: `XᵀX` (packed
/// row-major `k×k`) and `Xᵀy` (`k`), plus the ITM count. Merge by
/// addition — this is exactly what the cluster driver allreduces.
pub struct RegressionSums {
    /// Basis size k.
    pub k: usize,
    /// Packed `XᵀX`.
    pub xtx: Vec<f64>,
    /// `Xᵀy`.
    pub xty: Vec<f64>,
    /// In-the-money path count.
    pub count: f64,
}

impl RegressionSums {
    /// Zeroed sums for basis size `k`.
    pub fn new(k: usize) -> Self {
        RegressionSums {
            k,
            xtx: vec![0.0; k * k],
            xty: vec![0.0; k],
            count: 0.0,
        }
    }

    /// Rank-1 update with basis row `phi` and target `y`.
    #[inline]
    pub fn push(&mut self, phi: &[f64], y: f64) {
        debug_assert_eq!(phi.len(), self.k);
        for (i, &pi) in phi.iter().enumerate() {
            let row = &mut self.xtx[i * self.k..(i + 1) * self.k];
            for (cell, &pj) in row.iter_mut().zip(phi) {
                *cell += pi * pj;
            }
            self.xty[i] += pi * y;
        }
        self.count += 1.0;
    }

    /// Flatten to `k·k + k + 1` values for message passing.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.k * self.k + self.k + 1);
        v.extend_from_slice(&self.xtx);
        v.extend_from_slice(&self.xty);
        v.push(self.count);
        v
    }

    /// Rebuild from the flattened representation.
    pub fn from_slice(k: usize, v: &[f64]) -> Self {
        assert_eq!(v.len(), k * k + k + 1);
        RegressionSums {
            k,
            xtx: v[..k * k].to_vec(),
            xty: v[k * k..k * k + k].to_vec(),
            count: v[k * k + k],
        }
    }

    /// Solve `(XᵀX + ridge·I)β = Xᵀy`; `None` when there are too few
    /// ITM paths or the system is degenerate.
    pub fn solve(&self, ridge: f64) -> Option<Vec<f64>> {
        if self.count < 2.0 * self.k as f64 {
            return None;
        }
        let k = self.k;
        let mut a = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                a[(i, j)] = self.xtx[i * k + j];
            }
            a[(i, i)] += ridge * (1.0 + self.xtx[i * k + i]);
        }
        let ch = Cholesky::factor(&a).ok()?;
        Some(ch.solve(&self.xty))
    }
}

/// Run the backward LSMC sweep over a simulated panel, returning the
/// final per-path discounted cashflows (valued at time 0).
///
/// `regress` abstracts the reduction: the sequential engine solves the
/// local sums directly; the cluster driver allreduces them first. It
/// receives the local sums and must return the regression coefficients
/// (or `None` to skip exercise at that date).
pub fn backward_sweep<F>(
    market: &GbmMarket,
    product: &Product,
    cfg: &LsmcConfig,
    panel: &PathPanel,
    mut regress: F,
) -> Vec<f64>
where
    F: FnMut(usize, &RegressionSums) -> Option<Vec<f64>>,
{
    let d = panel.dim;
    let n = panel.paths;
    let dt = product.maturity / cfg.steps as f64;
    let disc_dt = (-market.rate() * dt).exp();
    let basis = TensorBasis::new(d, cfg.degree, cfg.basis);
    let k = basis.size();
    let payoff = &product.payoff;
    let spots0 = market.spots();

    // Terminal cashflows (discount factor measured from time 0).
    let mut cashflow: Vec<f64> = (0..n)
        .map(|p| payoff.eval(&panel.spots[cfg.steps - 1][p * d..(p + 1) * d]))
        .collect();
    let mut cf_time: Vec<u32> = vec![cfg.steps as u32; n];

    let mut phi = vec![0.0; k];
    let mut x = vec![0.0; d];
    // Backward over exercise dates t = steps−1 .. 1.
    for t in (1..cfg.steps).rev() {
        let layer = &panel.spots[t - 1];
        // Local regression sums over ITM paths.
        let mut sums = RegressionSums::new(k);
        for p in 0..n {
            let s = &layer[p * d..(p + 1) * d];
            let intrinsic = payoff.eval(s);
            if intrinsic > 0.0 {
                for (xi, (si, s0)) in x.iter_mut().zip(s.iter().zip(spots0)) {
                    *xi = si / s0;
                }
                basis.eval(&x, &mut phi);
                let y = cashflow[p] * disc_dt.powi((cf_time[p] - t as u32) as i32);
                sums.push(&phi, y);
            }
        }
        let Some(beta) = regress(t, &sums) else {
            continue;
        };
        // Exercise where intrinsic beats the fitted continuation.
        for p in 0..n {
            let s = &layer[p * d..(p + 1) * d];
            let intrinsic = payoff.eval(s);
            if intrinsic > 0.0 {
                for (xi, (si, s0)) in x.iter_mut().zip(s.iter().zip(spots0)) {
                    *xi = si / s0;
                }
                basis.eval(&x, &mut phi);
                let continuation: f64 = beta.iter().zip(&phi).map(|(b, f)| b * f).sum();
                if intrinsic >= continuation {
                    cashflow[p] = intrinsic;
                    cf_time[p] = t as u32;
                }
            }
        }
    }
    // Discount every cashflow to time 0.
    cashflow
        .iter()
        .zip(&cf_time)
        .map(|(cf, t)| cf * disc_dt.powi(*t as i32))
        .collect()
}

/// Sequential LSMC pricing.
pub fn price_lsmc(
    market: &GbmMarket,
    product: &Product,
    cfg: LsmcConfig,
) -> Result<LsmcResult, McError> {
    validate(market, product, &cfg)?;
    let panel = simulate_panel(market, product, &cfg, 0..num_blocks(&cfg));
    let discounted = backward_sweep(market, product, &cfg, &panel, |_, sums| {
        sums.solve(cfg.ridge)
    });
    Ok(summarise(&discounted, product, market))
}

/// LSMC with the path panel simulated in parallel over substream blocks
/// (rayon). The panel — and therefore the price — is bit-identical to
/// [`price_lsmc`]: blocks are independent substreams spliced back in
/// block order; the backward sweep stays sequential (it is the
/// regression-coupled serial fraction either way).
pub fn price_lsmc_rayon(
    market: &GbmMarket,
    product: &Product,
    cfg: LsmcConfig,
) -> Result<LsmcResult, McError> {
    use rayon::prelude::*;
    validate(market, product, &cfg)?;
    let blocks = num_blocks(&cfg);
    let panels: Vec<PathPanel> = (0..blocks)
        .into_par_iter()
        .map(|b| simulate_panel(market, product, &cfg, b..b + 1))
        .collect();
    // Splice the per-block panels in block order.
    let d = market.dim();
    let total: usize = panels.iter().map(|p| p.paths).sum();
    let mut spots = vec![vec![0.0; total * d]; cfg.steps];
    let mut offset = 0usize;
    for panel in &panels {
        for (t, layer) in spots.iter_mut().enumerate() {
            layer[offset * d..(offset + panel.paths) * d].copy_from_slice(&panel.spots[t]);
        }
        offset += panel.paths;
    }
    let panel = PathPanel {
        dim: d,
        steps: cfg.steps,
        paths: total,
        spots,
    };
    let discounted = backward_sweep(market, product, &cfg, &panel, |_, sums| {
        sums.solve(cfg.ridge)
    });
    Ok(summarise(&discounted, product, market))
}

/// Shared validation.
pub fn validate(market: &GbmMarket, product: &Product, cfg: &LsmcConfig) -> Result<(), McError> {
    product.validate_for(market)?;
    if product.exercise != ExerciseStyle::American {
        return Err(McError::Unsupported(
            "LSMC prices American products; use the European engine otherwise".into(),
        ));
    }
    if product.payoff.is_path_dependent() {
        return Err(McError::Unsupported(
            "path-dependent American payoffs are out of scope".into(),
        ));
    }
    if cfg.paths == 0 {
        return Err(McError::ZeroPaths);
    }
    if cfg.steps < 2 {
        return Err(McError::Unsupported(
            "LSMC needs at least two exercise dates".into(),
        ));
    }
    if cfg.degree == 0 {
        return Err(McError::Unsupported("basis degree must be ≥ 1".into()));
    }
    Ok(())
}

/// Mean/SE over the discounted cashflows, floored by immediate exercise.
pub fn summarise(discounted: &[f64], product: &Product, market: &GbmMarket) -> LsmcResult {
    let n = discounted.len() as f64;
    let mean = discounted.iter().sum::<f64>() / n;
    let var = discounted
        .iter()
        .map(|c| (c - mean) * (c - mean))
        .sum::<f64>()
        / (n - 1.0);
    // An American option is worth at least immediate exercise.
    let intrinsic = product.payoff.eval(market.spots());
    LsmcResult {
        price: mean.max(intrinsic),
        std_error: (var / n).sqrt(),
        paths: discounted.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_lattice::BinomialLattice;
    use mdp_model::analytic::black_scholes_put;
    use mdp_model::Payoff;

    fn american_put_1d() -> (GbmMarket, Product) {
        (
            GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap(),
            Product::american(
                Payoff::BasketPut {
                    weights: vec![1.0],
                    strike: 110.0,
                },
                1.0,
            ),
        )
    }

    #[test]
    fn american_put_matches_binomial_reference() {
        let (m, p) = american_put_1d();
        let reference = BinomialLattice::crr(1000).price(&m, &p).unwrap().price;
        let r = price_lsmc(
            &m,
            &p,
            LsmcConfig {
                paths: 40_000,
                steps: 50,
                degree: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // LSMC is low-biased; allow a one-sided band plus noise.
        assert!(
            r.price > reference - 0.25 && r.price < reference + 4.0 * r.std_error + 0.05,
            "lsmc {} vs binomial {reference} (se {})",
            r.price,
            r.std_error
        );
    }

    #[test]
    fn american_above_european_put() {
        let (m, p) = american_put_1d();
        let eu = black_scholes_put(100.0, 110.0, 0.05, 0.0, 0.2, 1.0);
        let r = price_lsmc(&m, &p, LsmcConfig::default()).unwrap();
        assert!(
            r.price > eu + 2.0 * r.std_error - 0.15,
            "american {} vs european {eu}",
            r.price
        );
        assert!(r.price >= 10.0, "at least intrinsic: {}", r.price);
    }

    #[test]
    fn two_asset_american_max_call_matches_lattice() {
        // Broadie–Glasserman-style 2-asset American max-call
        // (S=100, K=100, r=5%, q=10%, σ=20%, ρ=0, T=1); reference from
        // the BEG lattice with matching (Bermudan, 9-date) exercise is
        // impractical, so compare against the densely exercisable lattice
        // with a one-sided low-bias allowance for LSMC.
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.1, 0.05, 0.0).unwrap();
        let pay = Payoff::MaxCall { strike: 100.0 };
        let am = Product::american(pay.clone(), 1.0);
        let reference = mdp_lattice::MultiLattice::new(100)
            .price(&m, &am)
            .unwrap()
            .price;
        let r = price_lsmc(
            &m,
            &am,
            LsmcConfig {
                paths: 40_000,
                steps: 9,
                degree: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let eu = mdp_model::analytic::max_call_two_assets(
            100.0, 0.1, 0.2, 100.0, 0.1, 0.2, 0.0, 0.05, 100.0, 1.0,
        );
        assert!(r.price > eu, "american {} vs european {eu}", r.price);
        assert!(
            r.price > reference - 0.6 && r.price < reference + 4.0 * r.std_error + 0.05,
            "lsmc {} vs lattice {reference}",
            r.price
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (m, p) = american_put_1d();
        let cfg = LsmcConfig {
            paths: 5_000,
            steps: 10,
            ..Default::default()
        };
        let a = price_lsmc(&m, &p, cfg).unwrap();
        let b = price_lsmc(&m, &p, cfg).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
    }

    #[test]
    fn more_exercise_dates_worth_more() {
        let (m, p) = american_put_1d();
        let few = price_lsmc(
            &m,
            &p,
            LsmcConfig {
                paths: 60_000,
                steps: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let many = price_lsmc(
            &m,
            &p,
            LsmcConfig {
                paths: 60_000,
                steps: 25,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            many.price > few.price - 2.0 * (many.std_error + few.std_error),
            "{} vs {}",
            many.price,
            few.price
        );
    }

    #[test]
    fn regression_sums_roundtrip_and_merge() {
        let mut a = RegressionSums::new(3);
        a.push(&[1.0, 2.0, 3.0], 4.0);
        a.push(&[0.5, -1.0, 2.0], -1.0);
        let b = RegressionSums::from_slice(3, &a.to_vec());
        assert_eq!(a.xtx, b.xtx);
        assert_eq!(a.xty, b.xty);
        assert_eq!(a.count, b.count);
    }

    #[test]
    fn regression_solves_known_system() {
        // y = 2 + 3x fitted exactly.
        let mut s = RegressionSums::new(2);
        for i in 0..10 {
            let x = i as f64;
            s.push(&[1.0, x], 2.0 + 3.0 * x);
        }
        let beta = s.solve(0.0).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_itm_paths_skips_regression() {
        let s = RegressionSums::new(4);
        assert!(s.solve(1e-10).is_none());
    }

    #[test]
    fn validation_errors() {
        let (m, p) = american_put_1d();
        let eu = Product::european(p.payoff.clone(), 1.0);
        assert!(price_lsmc(&m, &eu, LsmcConfig::default()).is_err());
        assert!(price_lsmc(
            &m,
            &p,
            LsmcConfig {
                steps: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(price_lsmc(
            &m,
            &p,
            LsmcConfig {
                paths: 0,
                ..Default::default()
            }
        )
        .is_err());
    }
}

#[cfg(test)]
mod rayon_tests {
    use super::*;
    use mdp_model::Payoff;

    #[test]
    fn rayon_lsmc_bitwise_equals_sequential() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let p = Product::american(Payoff::MinPut { strike: 108.0 }, 1.0);
        let cfg = LsmcConfig {
            paths: 6_000,
            steps: 8,
            block_size: 500,
            ..Default::default()
        };
        let a = price_lsmc(&m, &p, cfg).unwrap();
        let b = price_lsmc_rayon(&m, &p, cfg).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
        assert_eq!(a.std_error.to_bits(), b.std_error.to_bits());
    }
}
