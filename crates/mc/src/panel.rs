//! Fused panel payoff evaluation over the batched SoA kernel.
//!
//! [`eval_panel`] walks one panel of paths ([`crate::path::SoaPanel`])
//! through the stepper and evaluates the payoff for every lane —
//! terminal, average and extremes families, with an optional geometric
//! control variate — producing the **identical per-path values, bit for
//! bit,** as the scalar `walk_path_with_normals` + per-path evaluation:
//!
//! * the panel correlate performs the same per-element operations in the
//!   same order as the scalar stepper (see
//!   [`crate::path::GbmStepper::step_panel`]);
//! * the average accumulates the basket sum over assets ascending from
//!   0.0, exactly like the scalar `s.iter().sum::<f64>() / d`;
//! * terminal payoffs are evaluated on each lane's gathered spot vector
//!   by the very same `Payoff` methods.
//!
//! The batched form wins time by (a) vectorizing the correlate and the
//! drift/diffusion update over contiguous lanes, (b) skipping the
//! per-step `exp` of values no payoff reads (terminal payoffs use only
//! the final spots; extremes use only asset 0), and (c) amortising the
//! per-path dispatch into one per-panel pass.

use crate::path::{walk_panel, GbmStepper, SoaPanel};
use mdp_model::{PathDependence, Payoff};

/// Geometric control-variate description for [`eval_panel`].
#[derive(Debug, Clone, Copy)]
pub struct CvSpec<'a> {
    /// Weights of the control's geometric payoff.
    pub weights: &'a [f64],
    /// Control strike.
    pub strike: f64,
    /// Call (true) or put (false) control.
    pub is_call: bool,
}

/// Per-lane state buffers reused across panels.
#[derive(Debug, Clone)]
pub struct PanelScratch {
    /// Undiscounted payoff per lane.
    pub ys: Vec<f64>,
    /// Undiscounted control payoff per lane (zeros without a CV).
    pub xs: Vec<f64>,
    avg: Vec<f64>,
    pmax: Vec<f64>,
    pmin: Vec<f64>,
    basket: Vec<f64>,
    term: Vec<f64>,
}

impl PanelScratch {
    /// Scratch for `lanes`-wide panels in dimension `dim`.
    pub fn new(dim: usize, lanes: usize) -> Self {
        PanelScratch {
            ys: vec![0.0; lanes],
            xs: vec![0.0; lanes],
            avg: vec![0.0; lanes],
            pmax: vec![0.0; lanes],
            pmin: vec![0.0; lanes],
            basket: vec![0.0; lanes],
            term: vec![0.0; dim],
        }
    }
}

/// Row-wise evaluation of the common terminal payoffs, vectorized over
/// lanes. Returns false for payoff families it does not cover (the
/// caller falls back to the per-lane gather + `Payoff::eval`).
///
/// Bitwise-identical to the per-lane path: the basket accumulates
/// `w·s` over assets ascending from 0.0 exactly like `Payoff::eval`'s
/// `weights.iter().zip(spots).map(|(w, s)| w * s).sum()`, and the
/// max/min families fold from ±∞ with `f64::max`/`f64::min` in the same
/// asset order as `max_of`/`min_of`.
fn fused_terminal(
    payoff: &Payoff,
    panel: &SoaPanel,
    scratch: &mut PanelScratch,
    d: usize,
    n: usize,
) -> bool {
    let acc = &mut scratch.basket;
    match payoff {
        Payoff::BasketCall { weights, strike } | Payoff::BasketPut { weights, strike } => {
            acc[..n].fill(0.0);
            for (i, &w) in weights.iter().enumerate() {
                let row = &panel.spot_row(i)[..n];
                for (a, &s) in acc[..n].iter_mut().zip(row) {
                    *a += w * s;
                }
            }
            let call = matches!(payoff, Payoff::BasketCall { .. });
            for (y, &b) in scratch.ys[..n].iter_mut().zip(acc[..n].iter()) {
                *y = if call {
                    (b - strike).max(0.0)
                } else {
                    (strike - b).max(0.0)
                };
            }
            true
        }
        Payoff::MaxCall { strike }
        | Payoff::MaxPut { strike }
        | Payoff::MinCall { strike }
        | Payoff::MinPut { strike } => {
            let is_max = matches!(payoff, Payoff::MaxCall { .. } | Payoff::MaxPut { .. });
            acc[..n].fill(if is_max {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            });
            for i in 0..d {
                let row = &panel.spot_row(i)[..n];
                if is_max {
                    for (a, &s) in acc[..n].iter_mut().zip(row) {
                        *a = a.max(s);
                    }
                } else {
                    for (a, &s) in acc[..n].iter_mut().zip(row) {
                        *a = a.min(s);
                    }
                }
            }
            let call = matches!(payoff, Payoff::MaxCall { .. } | Payoff::MinCall { .. });
            for (y, &m) in scratch.ys[..n].iter_mut().zip(acc[..n].iter()) {
                *y = if call {
                    (m - strike).max(0.0)
                } else {
                    (strike - m).max(0.0)
                };
            }
            true
        }
        _ => false,
    }
}

/// Walk the panel's first `n` lanes to maturity for terminal-only
/// payoffs (normals already in place): the path walk plus the final
/// `exp`, with no per-step work. One walk serves any number of
/// terminal payoff evaluations via [`eval_terminal_walked`] — the
/// shared-path fusion the portfolio batch API builds on.
pub fn walk_panel_terminal(stepper: &GbmStepper, log0: &[f64], panel: &mut SoaPanel, n: usize) {
    walk_panel(stepper, log0, panel, n, |_, _| {});
    panel.exp_all(n);
}

/// Evaluate one terminal (non-path-dependent) payoff on a panel already
/// walked by [`walk_panel_terminal`], into `scratch.ys` (undiscounted).
/// Per lane this performs exactly the arithmetic [`eval_panel`] performs
/// for the same payoff, so evaluating k payoffs over one shared walk is
/// bitwise-identical to k separate walks.
pub fn eval_terminal_walked(
    payoff: &Payoff,
    panel: &SoaPanel,
    scratch: &mut PanelScratch,
    d: usize,
    n: usize,
) {
    debug_assert_eq!(payoff.path_dependence(), PathDependence::None);
    if fused_terminal(payoff, panel, scratch, d, n) {
        return;
    }
    for lane in 0..n {
        panel.gather_spots(lane, &mut scratch.term);
        scratch.ys[lane] = payoff.eval(&scratch.term);
    }
}

/// Walk the panel's first `n` lanes (normals already in place) and
/// evaluate the payoff per lane into `scratch.ys` (and `scratch.xs` when
/// `cv` is given). Values are **undiscounted**; callers apply the
/// discount exactly where the scalar engine does.
#[allow(clippy::too_many_arguments)] // hot kernel entry: flat args over a one-off bundle struct
pub fn eval_panel(
    stepper: &GbmStepper,
    log0: &[f64],
    payoff: &Payoff,
    s0_first: f64,
    cv: Option<&CvSpec<'_>>,
    panel: &mut SoaPanel,
    scratch: &mut PanelScratch,
    n: usize,
) {
    let d = stepper.dim;
    let steps = stepper.steps;
    let dep = payoff.path_dependence();
    // The engine only pairs the geometric CV with arithmetic basket
    // payoffs, which are terminal-only.
    debug_assert!(cv.is_none() || dep == PathDependence::None);
    match dep {
        PathDependence::None => {
            if cv.is_none() {
                // Terminal payoff without a control: the shared-walk
                // split used by the multi-payoff batch path.
                walk_panel_terminal(stepper, log0, panel, n);
                eval_terminal_walked(payoff, panel, scratch, d, n);
                return;
            }
            // Terminal payoff: no intermediate exp needed at all.
            walk_panel(stepper, log0, panel, n, |_, _| {});
            panel.exp_all(n);
            for lane in 0..n {
                panel.gather_spots(lane, &mut scratch.term);
                scratch.ys[lane] = payoff.eval(&scratch.term);
                if let Some(cv) = cv {
                    let g: f64 = cv
                        .weights
                        .iter()
                        .zip(scratch.term.iter())
                        .map(|(w, si)| w * si.ln())
                        .sum::<f64>()
                        .exp();
                    scratch.xs[lane] = if cv.is_call {
                        (g - cv.strike).max(0.0)
                    } else {
                        (cv.strike - g).max(0.0)
                    };
                }
            }
        }
        PathDependence::Average => {
            scratch.avg[..n].fill(0.0);
            let (avg, basket) = (&mut scratch.avg, &mut scratch.basket);
            walk_panel(stepper, log0, panel, n, |_, p| {
                p.exp_all(n);
                // basket[lane] = Σᵢ spotᵢ — assets ascending from 0.0,
                // matching the scalar `s.iter().sum::<f64>()`.
                basket[..n].fill(0.0);
                for i in 0..d {
                    let row = &p.spot_row(i)[..n];
                    for (b, &s) in basket[..n].iter_mut().zip(row) {
                        *b += s;
                    }
                }
                for (a, &b) in avg[..n].iter_mut().zip(basket[..n].iter()) {
                    *a += b / d as f64;
                }
            });
            for lane in 0..n {
                scratch.ys[lane] = payoff.eval_average(scratch.avg[lane] / steps as f64);
            }
        }
        PathDependence::Extremes => {
            scratch.pmax[..n].fill(s0_first);
            scratch.pmin[..n].fill(s0_first);
            let (pmax, pmin) = (&mut scratch.pmax, &mut scratch.pmin);
            walk_panel(stepper, log0, panel, n, |_, p| {
                // Extremes payoffs read only asset 0.
                p.exp_row(0, n);
                let row = &p.spot_row(0)[..n];
                for (m, &s) in pmax[..n].iter_mut().zip(row) {
                    *m = m.max(s);
                }
                for (m, &s) in pmin[..n].iter_mut().zip(row) {
                    *m = m.min(s);
                }
            });
            let row = panel.spot_row(0);
            for (lane, y) in scratch.ys[..n].iter_mut().enumerate() {
                *y = payoff.eval_extremes(row[lane], scratch.pmax[lane], scratch.pmin[lane]);
            }
        }
    }
}
