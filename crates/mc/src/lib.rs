//! # mdp-mc — Monte Carlo pricing engines, sequential and parallel
//!
//! Monte Carlo is the method that survives the curse of dimensionality,
//! and — being embarrassingly parallel across paths — the method where
//! the paper's parallel speedups are closest to ideal. The crate
//! provides:
//!
//! * [`path`] — correlated GBM path/terminal generation (exact
//!   log-normal stepping, no discretisation bias), both per-path and in
//!   batched structure-of-arrays panels of [`path::PANEL`] lanes.
//! * [`panel`] — fused panel payoff evaluation: the batched kernel that
//!   the engines use by default, bit-identical to the scalar oracle
//!   (see DESIGN.md, "Batched MC kernel").
//! * [`engine`] — the European pricer: plain, antithetic and
//!   control-variate estimators over a **block-substream** design: paths
//!   are partitioned into fixed blocks, block `b` drawing from RNG
//!   substream `b`. The estimate is therefore *identical* no matter how
//!   blocks are distributed over threads or ranks — sequential, rayon
//!   and message-passing drivers all reproduce the same price bit for
//!   bit (plain/antithetic) and the experiments' speedups compare equal
//!   work.
//! * [`qmc`] — randomised quasi-Monte Carlo: Sobol' points through the
//!   inverse normal cdf with Brownian-bridge ordering, digital-shift
//!   replicates for an honest error bar.
//! * [`lsmc`] — Longstaff–Schwartz least-squares Monte Carlo for
//!   American/Bermudan products, with the distributed-regression variant
//!   (local normal equations + allreduce) used by the cluster driver.
//! * [`cluster_driver`] — the message-passing SPMD drivers for both
//!   European MC and LSMC with virtual-time accounting (experiments
//!   T3/F3/T7).

pub mod cluster_driver;
pub mod engine;
pub mod error;
pub mod lsmc;
pub mod panel;
pub mod path;
pub mod pathwise;
pub mod qmc;
pub mod stratified;
pub mod variance;

pub use engine::{McConfig, McEngine, McPlan, McResult, VarianceReduction};
pub use error::McError;
pub use lsmc::{LsmcConfig, LsmcResult};
pub use pathwise::{pathwise_delta, PathwiseResult};
pub use qmc::{QmcConfig, QmcResult};
pub use stratified::{price_stratified, StratifiedResult};
