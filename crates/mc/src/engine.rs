//! The European Monte Carlo pricer over block substreams.
//!
//! Paths are split into blocks of [`McConfig::block_size`]; block `b`
//! draws exclusively from RNG substream `b` of the seed. A driver — the
//! sequential loop here, the rayon loop, or the message-passing driver in
//! [`crate::cluster_driver`] — only decides *who computes which blocks*;
//! the sample set is fixed by `(seed, paths, block_size)` alone. Every
//! backend therefore returns the **same price to the last bit**, which
//! turns "the parallel code is correct" into an equality test.

use crate::panel::{eval_panel, eval_terminal_walked, walk_panel_terminal, CvSpec, PanelScratch};
use crate::path::{walk_path_with_normals, GbmStepper, SoaPanel, PANEL};
use crate::variance::{merge_in_chunks, try_merge_in_chunks, BlockAccum, MERGE_CHUNK};
use crate::McError;
use mdp_math::rng::{NormalPolar, NormalSampler, Substreams, Xoshiro256StarStar};
use mdp_math::CancelToken;
use mdp_model::{
    analytic, ExerciseStyle, GbmMarket, MarketDelta, PathDependence, Payoff, Product, TickOutcome,
};
use rayon::prelude::*;

/// Variance-reduction technique for the European engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarianceReduction {
    /// Plain Monte Carlo.
    #[default]
    None,
    /// Antithetic pairs `(z, −z)` — one sample per pair.
    Antithetic,
    /// Geometric-basket control variate (arithmetic basket payoffs only;
    /// the control's mean is the closed form from `mdp_model::analytic`).
    GeometricCv,
}

/// Configuration of a European Monte Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Total number of paths (antithetic pairs count as one path).
    pub paths: u64,
    /// Monitoring steps (1 unless the payoff needs a path, e.g. Asian).
    pub steps: usize,
    /// RNG seed; together with `paths`/`block_size` it pins the sample set.
    pub seed: u64,
    /// Variance-reduction technique.
    pub variance_reduction: VarianceReduction,
    /// Paths per substream block.
    pub block_size: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            paths: 100_000,
            steps: 1,
            seed: 0x5EED,
            variance_reduction: VarianceReduction::None,
            block_size: 4096,
        }
    }
}

impl McConfig {
    /// Number of substream blocks the run is partitioned into.
    pub fn num_blocks(&self) -> u64 {
        self.paths.div_ceil(self.block_size)
    }

    /// Paths simulated by block `b`.
    pub fn block_paths(&self, b: u64) -> u64 {
        let lo = b * self.block_size;
        let hi = (lo + self.block_size).min(self.paths);
        hi - lo
    }

    /// Modelled work units for one path (used by the virtual-time
    /// accounting of the cluster driver): per step a `d×d` triangular
    /// correlate, d exponentials and bookkeeping, plus the payoff.
    pub fn path_work_units(&self, d: usize) -> f64 {
        let per_step = (d * d) as f64 / 2.0 + 8.0 * d as f64 + 6.0;
        let factor = match self.variance_reduction {
            VarianceReduction::None => 1.0,
            // Antithetic re-walks the path; CV adds a geometric payoff.
            VarianceReduction::Antithetic => 1.8,
            VarianceReduction::GeometricCv => 1.2,
        };
        factor * (self.steps as f64 * per_step + 4.0 * d as f64)
    }
}

/// Result of a European Monte Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct McResult {
    /// Price estimate.
    pub price: f64,
    /// Standard error of the estimate.
    pub std_error: f64,
    /// Paths simulated.
    pub paths: u64,
    /// Variance-reduction factor vs plain MC on the same samples
    /// (1.0 when no control variate is active).
    pub variance_ratio: f64,
}

impl McResult {
    /// Symmetric 95% confidence half-width.
    pub fn ci95(&self) -> f64 {
        1.959_963_984_540_054 * self.std_error
    }
}

/// The European Monte Carlo engine.
///
/// ```
/// use mdp_mc::{McConfig, McEngine};
/// use mdp_model::{GbmMarket, Payoff, Product};
///
/// let market = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
/// let call = Product::european(
///     Payoff::BasketCall { weights: vec![1.0], strike: 100.0 },
///     1.0,
/// );
/// let r = McEngine::new(McConfig { paths: 20_000, ..Default::default() })
///     .price(&market, &call)
///     .unwrap();
/// let exact = mdp_model::analytic::black_scholes_call(100.0, 100.0, 0.05, 0.0, 0.2, 1.0);
/// assert!((r.price - exact).abs() < 4.0 * r.std_error);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct McEngine {
    /// Run configuration.
    pub config: McConfig,
}

/// Everything a block simulation needs, precomputed once per run.
pub struct RunContext<'a> {
    market: &'a GbmMarket,
    product: &'a Product,
    cfg: McConfig,
    stepper: GbmStepper,
    log0: Vec<f64>,
    /// Spot of the first asset at t=0 (seed for barrier extremes).
    s0_first: f64,
    disc: f64,
    /// Exact mean of the control variate, when active.
    pub cv_mean: Option<f64>,
    /// Weights for the control's geometric payoff.
    cv_weights: Vec<f64>,
    cv_strike: f64,
    cv_is_call: bool,
}

/// Product validation + control-variate setup shared by the one-shot
/// [`RunContext::new`] and the plan-based [`McPlan::context`].
#[allow(clippy::type_complexity)]
fn validate_and_cv(
    market: &GbmMarket,
    product: &Product,
    cfg: &McConfig,
) -> Result<(Option<f64>, Vec<f64>, f64, bool), McError> {
    product.validate_for(market)?;
    if product.exercise != ExerciseStyle::European {
        return Err(McError::Unsupported(
            "European engine; price American products with lsmc".into(),
        ));
    }
    if cfg.paths == 0 {
        return Err(McError::ZeroPaths);
    }
    if cfg.steps == 0 {
        return Err(McError::ZeroSteps);
    }
    if cfg.block_size == 0 {
        return Err(McError::Unsupported("block_size must be positive".into()));
    }
    if cfg.variance_reduction == VarianceReduction::GeometricCv {
        match &product.payoff {
            Payoff::BasketCall { weights, strike } => Ok((
                Some(analytic::geometric_basket_call(
                    market,
                    weights,
                    *strike,
                    product.maturity,
                )),
                weights.clone(),
                *strike,
                true,
            )),
            Payoff::BasketPut { weights, strike } => Ok((
                Some(analytic::geometric_basket_put(
                    market,
                    weights,
                    *strike,
                    product.maturity,
                )),
                weights.clone(),
                *strike,
                false,
            )),
            other => Err(McError::Unsupported(format!(
                "geometric control variate needs an arithmetic basket payoff, got {other:?}"
            ))),
        }
    } else {
        Ok((None, Vec::new(), 0.0, true))
    }
}

impl<'a> RunContext<'a> {
    /// Validate and precompute; shared by all drivers.
    pub fn new(
        market: &'a GbmMarket,
        product: &'a Product,
        cfg: McConfig,
    ) -> Result<Self, McError> {
        let (cv_mean, cv_weights, cv_strike, cv_is_call) =
            validate_and_cv(market, product, &cfg)?;
        let stepper = GbmStepper::new(market, product.maturity, cfg.steps);
        let log0 = market.spots().iter().map(|s| s.ln()).collect();
        Ok(RunContext {
            market,
            product,
            cfg,
            stepper,
            log0,
            s0_first: market.spots()[0],
            disc: market.discount(product.maturity),
            cv_mean,
            cv_weights,
            cv_strike,
            cv_is_call,
        })
    }

    /// Discounted payoff (and control, when active) of one path given its
    /// normal vector.
    #[inline]
    fn eval_path(&self, normals: &[f64], log_buf: &mut [f64], spot_buf: &mut [f64]) -> (f64, f64) {
        let d = self.stepper.dim;
        let steps = self.stepper.steps;
        let payoff = &self.product.payoff;
        let dep = payoff.path_dependence();
        let mut avg = 0.0;
        let mut pmax = self.s0_first;
        let mut pmin = self.s0_first;
        let mut y = 0.0;
        let mut x = 0.0;
        walk_path_with_normals(
            &self.stepper,
            &self.log0,
            normals,
            log_buf,
            spot_buf,
            |step, s| {
                match dep {
                    PathDependence::Average => avg += s.iter().sum::<f64>() / d as f64,
                    PathDependence::Extremes => {
                        pmax = pmax.max(s[0]);
                        pmin = pmin.min(s[0]);
                    }
                    PathDependence::None => {}
                }
                if step == steps - 1 {
                    y = match dep {
                        PathDependence::Average => payoff.eval_average(avg / steps as f64),
                        PathDependence::Extremes => payoff.eval_extremes(s[0], pmax, pmin),
                        PathDependence::None => payoff.eval(s),
                    };
                    if self.cv_mean.is_some() {
                        let g: f64 = self
                            .cv_weights
                            .iter()
                            .zip(s)
                            .map(|(w, si)| w * si.ln())
                            .sum::<f64>()
                            .exp();
                        x = if self.cv_is_call {
                            (g - self.cv_strike).max(0.0)
                        } else {
                            (self.cv_strike - g).max(0.0)
                        };
                    }
                }
            },
        );
        (self.disc * y, self.disc * x)
    }

    /// Simulate one substream block with the default kernel.
    ///
    /// The batched SoA kernel ([`RunContext::simulate_block_batched`]) is
    /// the default; build with `--features scalar-kernel` to switch every
    /// driver back to the scalar oracle. Both produce bitwise-identical
    /// accumulators, so the switch is purely about speed.
    pub fn simulate_block(&self, block: u64) -> BlockAccum {
        if cfg!(feature = "scalar-kernel") {
            self.simulate_block_scalar(block)
        } else {
            self.simulate_block_batched(block)
        }
    }

    /// Simulate one substream block path-by-path (the scalar oracle).
    pub fn simulate_block_scalar(&self, block: u64) -> BlockAccum {
        let d = self.stepper.dim;
        let npath = self.stepper.normals_per_path();
        let base = Xoshiro256StarStar::seed_from(self.cfg.seed);
        let mut rng = base.substream(block);
        let mut sampler = NormalPolar::new();
        let mut normals = vec![0.0; npath];
        let mut log_buf = vec![0.0; d];
        let mut spot_buf = vec![0.0; d];
        let mut acc = BlockAccum::new();
        let antithetic = self.cfg.variance_reduction == VarianceReduction::Antithetic;
        for _ in 0..self.cfg.block_paths(block) {
            sampler.fill(&mut rng, &mut normals);
            let (y, x) = self.eval_path(&normals, &mut log_buf, &mut spot_buf);
            if antithetic {
                for z in normals.iter_mut() {
                    *z = -*z;
                }
                let (y2, _) = self.eval_path(&normals, &mut log_buf, &mut spot_buf);
                acc.push(0.5 * (y + y2));
            } else if self.cv_mean.is_some() {
                acc.push_cv(y, x);
            } else {
                acc.push(y);
            }
        }
        acc
    }

    /// Simulate one substream block with the batched SoA kernel: paths in
    /// panels of [`PANEL`] lanes, normals filled path-major (same draw
    /// order as the scalar kernel), the correlate as a blocked triangular
    /// panel multiply, and the payoff fused per lane.
    ///
    /// Bitwise-identical to [`RunContext::simulate_block_scalar`]: every
    /// per-path f64 operation happens in the same order, and lanes push
    /// into the accumulator in path order.
    pub fn simulate_block_batched(&self, block: u64) -> BlockAccum {
        let base = Xoshiro256StarStar::seed_from(self.cfg.seed);
        let mut rng = base.substream(block);
        let mut sampler = NormalPolar::new();
        let mut panel = SoaPanel::new(&self.stepper, PANEL);
        let mut scratch = PanelScratch::new(self.stepper.dim, PANEL);
        let mut ys1 = vec![0.0; PANEL];
        let mut acc = BlockAccum::new();
        let antithetic = self.cfg.variance_reduction == VarianceReduction::Antithetic;
        let cv = self.cv_mean.is_some().then_some(CvSpec {
            weights: &self.cv_weights,
            strike: self.cv_strike,
            is_call: self.cv_is_call,
        });
        let payoff = &self.product.payoff;
        let total = self.cfg.block_paths(block);
        let mut done = 0u64;
        while done < total {
            let n = (total - done).min(PANEL as u64) as usize;
            panel.fill_normals(&mut sampler, &mut rng, n);
            eval_panel(
                &self.stepper,
                &self.log0,
                payoff,
                self.s0_first,
                cv.as_ref(),
                &mut panel,
                &mut scratch,
                n,
            );
            if antithetic {
                ys1[..n].copy_from_slice(&scratch.ys[..n]);
                panel.negate_normals(n);
                eval_panel(
                    &self.stepper,
                    &self.log0,
                    payoff,
                    self.s0_first,
                    None,
                    &mut panel,
                    &mut scratch,
                    n,
                );
                for (y1, y2) in ys1[..n].iter().zip(&scratch.ys[..n]) {
                    // Same association as the scalar kernel: each leg is
                    // discounted before the pair average.
                    acc.push(0.5 * (self.disc * y1 + self.disc * y2));
                }
            } else if cv.is_some() {
                for lane in 0..n {
                    acc.push_cv(self.disc * scratch.ys[lane], self.disc * scratch.xs[lane]);
                }
            } else {
                for lane in 0..n {
                    acc.push(self.disc * scratch.ys[lane]);
                }
            }
            done += n as u64;
        }
        acc
    }

    /// Turn a merged accumulator into a result.
    pub fn finish(&self, acc: &BlockAccum) -> McResult {
        let (price, std_error) = match self.cv_mean {
            Some(mu) => acc.cv_estimate(mu),
            None => acc.plain_estimate(),
        };
        McResult {
            price,
            std_error,
            paths: acc.n as u64,
            variance_ratio: if self.cv_mean.is_some() {
                acc.cv_variance_ratio()
            } else {
                1.0
            },
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u64 {
        self.cfg.num_blocks()
    }

    /// Market dimension.
    pub fn dim(&self) -> usize {
        self.market.dim()
    }

    /// The run configuration.
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }
}

/// Payoff-independent planned state of a European Monte Carlo run: the
/// correlated stepper (Cholesky factor), log-spots and discount factor
/// for one `(market, maturity, config)` triple. The sample set is fixed
/// by `(seed, paths, block_size)` alone, so one plan prices any number
/// of payoffs — either per product ([`McPlan::execute`], bitwise-equal
/// to [`McEngine::price`]) or fused over **shared paths**
/// ([`McPlan::execute_multi`]): each panel of paths is walked once and
/// every payoff is evaluated on it, which is bitwise-identical to
/// walking the paths once per product because the paths never depend on
/// the payoff.
#[derive(Debug, Clone)]
pub struct McPlan {
    market: GbmMarket,
    cfg: McConfig,
    maturity: f64,
    stepper: GbmStepper,
    log0: Vec<f64>,
    s0_first: f64,
    disc: f64,
    /// Cooperative cancellation, polled once per path block. Inert by
    /// default; the serving layer installs a live token per request.
    cancel: CancelToken,
}

impl McPlan {
    /// Horizon the plan was built for.
    pub fn maturity(&self) -> f64 {
        self.maturity
    }

    /// Install a cooperative cancel token. The drivers poll it once per
    /// path block; a tripped token aborts the run with
    /// [`McError::Cancelled`]. Runs that complete are bitwise-identical
    /// to runs without a token.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Poll the plan's cancel token at a block boundary.
    #[inline]
    fn check_cancel(&self) -> Result<(), McError> {
        if self.cancel.is_cancelled() {
            Err(McError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    /// Build the per-product [`RunContext`] from the planned state —
    /// the same validation as [`RunContext::new`], reusing the plan's
    /// stepper instead of re-deriving the Cholesky factor.
    pub fn context<'a>(&'a self, product: &'a Product) -> Result<RunContext<'a>, McError> {
        if product.maturity != self.maturity {
            return Err(McError::Unsupported(format!(
                "plan built for maturity {}, product has {}",
                self.maturity, product.maturity
            )));
        }
        let (cv_mean, cv_weights, cv_strike, cv_is_call) =
            validate_and_cv(&self.market, product, &self.cfg)?;
        Ok(RunContext {
            market: &self.market,
            product,
            cfg: self.cfg,
            stepper: self.stepper.clone(),
            log0: self.log0.clone(),
            s0_first: self.s0_first,
            disc: self.disc,
            cv_mean,
            cv_weights,
            cv_strike,
            cv_is_call,
        })
    }

    /// Price one product over the planned paths, sequentially.
    /// Bitwise-identical to [`McEngine::price`] on the same inputs.
    pub fn execute(&self, product: &Product) -> Result<McResult, McError> {
        let ctx = self.context(product)?;
        // `try_merge_in_chunks` folds exactly like `merge_in_chunks`, so
        // an uncancelled run matches the one-shot path bit for bit.
        let acc = try_merge_in_chunks((0..ctx.num_blocks()).map(|b| -> Result<_, McError> {
            self.check_cancel()?;
            Ok(ctx.simulate_block(b))
        }))?;
        Ok(ctx.finish(&acc))
    }

    /// Price one product over the planned paths with rayon-parallel
    /// blocks. Bitwise-identical to [`McEngine::price_rayon`] (and hence
    /// to [`McPlan::execute`]).
    pub fn execute_rayon(&self, product: &Product) -> Result<McResult, McError> {
        let ctx = self.context(product)?;
        Ok(ctx.finish(&price_rayon_accum(&ctx, &self.cancel)?))
    }

    /// A product is fusable when the paths fully determine its payoff
    /// inputs: European, terminal-only (no path dependence), no variance
    /// reduction, and the plan's maturity.
    pub fn check_fusable(&self, product: &Product) -> Result<(), McError> {
        product.validate_for(&self.market)?;
        if product.exercise != ExerciseStyle::European {
            return Err(McError::Unsupported(
                "European engine; price American products with lsmc".into(),
            ));
        }
        if product.maturity != self.maturity {
            return Err(McError::Unsupported(format!(
                "plan built for maturity {}, product has {}",
                self.maturity, product.maturity
            )));
        }
        if product.payoff.path_dependence() != PathDependence::None {
            return Err(McError::Unsupported(
                "shared-path fusion needs terminal-only payoffs".into(),
            ));
        }
        if self.cfg.variance_reduction != VarianceReduction::None {
            return Err(McError::Unsupported(
                "shared-path fusion runs plain Monte Carlo only".into(),
            ));
        }
        Ok(())
    }

    /// Simulate one substream block once and evaluate every payoff on
    /// its panels, pushing each payoff's discounted values into its own
    /// accumulator in lane order — per payoff exactly the stream
    /// [`RunContext::simulate_block_batched`] produces.
    fn simulate_block_multi(&self, block: u64, payoffs: &[&Payoff], accs: &mut [BlockAccum]) {
        let base = Xoshiro256StarStar::seed_from(self.cfg.seed);
        let mut rng = base.substream(block);
        let mut sampler = NormalPolar::new();
        let mut panel = SoaPanel::new(&self.stepper, PANEL);
        let mut scratch = PanelScratch::new(self.stepper.dim, PANEL);
        let d = self.stepper.dim;
        let total = self.cfg.block_paths(block);
        let mut done = 0u64;
        while done < total {
            let n = (total - done).min(PANEL as u64) as usize;
            panel.fill_normals(&mut sampler, &mut rng, n);
            walk_panel_terminal(&self.stepper, &self.log0, &mut panel, n);
            for (payoff, acc) in payoffs.iter().zip(accs.iter_mut()) {
                eval_terminal_walked(payoff, &panel, &mut scratch, d, n);
                for lane in 0..n {
                    acc.push(self.disc * scratch.ys[lane]);
                }
            }
            done += n as u64;
        }
    }

    /// Price a book of products over **one shared path sweep**: every
    /// block's panels are walked once and all payoffs are evaluated on
    /// them. Each product's result is bitwise-identical to its own
    /// [`McPlan::execute`] / [`McEngine::price`] run, sequential or
    /// parallel.
    pub fn execute_multi(
        &self,
        products: &[Product],
        parallel: bool,
    ) -> Result<Vec<McResult>, McError> {
        for product in products {
            self.check_fusable(product)?;
        }
        let k = products.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        let payoffs: Vec<&Payoff> = products.iter().map(|p| &p.payoff).collect();
        let blocks = self.cfg.num_blocks();
        // Reproduce the canonical chunked merge of `merge_in_chunks` /
        // `price_rayon` per payoff: blocks fold into MERGE_CHUNK-sized
        // chunk totals in block order, chunk totals fold in chunk order.
        let chunks = blocks.div_ceil(MERGE_CHUNK as u64);
        let run_chunk = |c: u64| -> Result<Vec<BlockAccum>, McError> {
            let lo = c * MERGE_CHUNK as u64;
            let hi = (lo + MERGE_CHUNK as u64).min(blocks);
            let mut chunk: Vec<BlockAccum> = (0..k).map(|_| BlockAccum::new()).collect();
            let mut per_block: Vec<BlockAccum> = (0..k).map(|_| BlockAccum::new()).collect();
            for b in lo..hi {
                self.check_cancel()?;
                for a in per_block.iter_mut() {
                    *a = BlockAccum::new();
                }
                self.simulate_block_multi(b, &payoffs, &mut per_block);
                for (t, a) in chunk.iter_mut().zip(&per_block) {
                    t.merge(a);
                }
            }
            Ok(chunk)
        };
        let chunk_accs: Vec<Vec<BlockAccum>> = if parallel {
            (0..chunks)
                .into_par_iter()
                .map(run_chunk)
                .collect::<Result<_, _>>()?
        } else {
            (0..chunks).map(run_chunk).collect::<Result<_, _>>()?
        };
        let mut totals: Vec<BlockAccum> = (0..k).map(|_| BlockAccum::new()).collect();
        for chunk in &chunk_accs {
            for (t, a) in totals.iter_mut().zip(chunk) {
                t.merge(a);
            }
        }
        Ok(totals
            .iter()
            .map(|acc| {
                let (price, std_error) = acc.plain_estimate();
                McResult {
                    price,
                    std_error,
                    paths: acc.n as u64,
                    variance_ratio: 1.0,
                }
            })
            .collect())
    }

    /// The market the plan was built for (after any applied ticks).
    pub fn market(&self) -> &GbmMarket {
        &self.market
    }

    /// Patch the plan in place for a one-field market tick.
    ///
    /// Every Monte Carlo plan component depends on at most one market
    /// field, so each tick is a pure patch (never a rebuild):
    ///
    /// * spot — `log0[asset]` and the control-variate anchor `s0_first`;
    /// * vol / rate — the stepper's drift/diffusion scalars (and, for
    ///   rate, the discount factor), via [`GbmStepper::retune`];
    /// * correlation — the packed Cholesky factor, via
    ///   [`GbmStepper::repack_cholesky`].
    ///
    /// Each patch evaluates exactly the expressions of
    /// [`McEngine::plan`], so the ticked plan is bitwise-identical to a
    /// plan freshly built for the ticked market.
    pub fn apply_tick(&mut self, delta: &MarketDelta) -> Result<TickOutcome, McError> {
        let market = self.market.apply_delta(delta)?;
        match delta {
            MarketDelta::Spot { asset, .. } => {
                self.log0[*asset] = market.spots()[*asset].ln();
                self.s0_first = market.spots()[0];
            }
            MarketDelta::Vol { .. } => self.stepper.retune(&market, self.maturity),
            MarketDelta::Rate { .. } => {
                self.stepper.retune(&market, self.maturity);
                self.disc = market.discount(self.maturity);
            }
            MarketDelta::Correlation { .. } => self.stepper.repack_cholesky(&market),
        }
        self.market = market;
        Ok(TickOutcome::Patched)
    }

    /// Simulate one substream block once, correlate its normals once,
    /// and walk the panel once **per scenario**, evaluating every payoff
    /// on each walk. `accs` is scenario-major: `accs[s·k + p]` receives
    /// payoff `p` under scenario `s`, in the exact lane order
    /// [`McPlan::simulate_block_multi`] would produce for a plan ticked
    /// to that scenario.
    fn simulate_block_cube(
        &self,
        block: u64,
        scens: &[CubeScenario],
        payoffs: &[&Payoff],
        accs: &mut [BlockAccum],
    ) {
        let base = Xoshiro256StarStar::seed_from(self.cfg.seed);
        let mut rng = base.substream(block);
        let mut sampler = NormalPolar::new();
        let mut panel = SoaPanel::new(&self.stepper, PANEL);
        let mut scratch = PanelScratch::new(self.stepper.dim, PANEL);
        let mut tmp = Vec::new();
        let d = self.stepper.dim;
        let k = payoffs.len();
        let total = self.cfg.block_paths(block);
        let mut done = 0u64;
        while done < total {
            let n = (total - done).min(PANEL as u64) as usize;
            panel.fill_normals(&mut sampler, &mut rng, n);
            // Pay the triangular correlate once; every scenario walk
            // below reuses the same w rows (sound because the scenario
            // Cholesky factors were checked bitwise-equal to the base).
            self.stepper.correlate_panel_in_place(&mut panel, n, &mut tmp);
            for (si, scen) in scens.iter().enumerate() {
                scen.stepper
                    .walk_correlated_terminal(&scen.log0, &mut panel, n);
                for (pi, payoff) in payoffs.iter().enumerate() {
                    eval_terminal_walked(payoff, &panel, &mut scratch, d, n);
                    let acc = &mut accs[si * k + pi];
                    for lane in 0..n {
                        acc.push(scen.disc * scratch.ys[lane]);
                    }
                }
            }
            done += n as u64;
        }
    }

    /// Price a book of products under **K market scenarios over one
    /// shared path sweep**: each block's normals are drawn and
    /// correlated once, then every scenario re-walks the panel with its
    /// own drift/diffusion scalars and log-spots and evaluates every
    /// payoff on it.
    ///
    /// Results are scenario-major: `out[s][p]` is product `p` under
    /// `scenarios[s]`, **bitwise-identical** to
    /// [`McPlan::execute_multi`] on a plan built (or ticked) for that
    /// scenario market, sequential or parallel.
    ///
    /// Scenario markets must share the base plan's dimension, and their
    /// Cholesky factors must match the base factor bit for bit (spot,
    /// vol and rate scenarios qualify; correlation scenarios need their
    /// own sweep) — otherwise the shared correlate would not reproduce
    /// the per-scenario walks and the call fails with
    /// [`McError::Unsupported`].
    pub fn execute_cube(
        &self,
        products: &[Product],
        scenarios: &[GbmMarket],
        parallel: bool,
    ) -> Result<Vec<Vec<McResult>>, McError> {
        for product in products {
            self.check_fusable(product)?;
        }
        let k = products.len();
        if k == 0 || scenarios.is_empty() {
            return Ok(scenarios.iter().map(|_| Vec::new()).collect());
        }
        let scens: Vec<CubeScenario> = scenarios
            .iter()
            .map(|scen| {
                if scen.dim() != self.market.dim() {
                    return Err(McError::Unsupported(format!(
                        "scenario dimension {} differs from plan dimension {}",
                        scen.dim(),
                        self.market.dim()
                    )));
                }
                let stepper = GbmStepper::new(scen, self.maturity, self.cfg.steps);
                if !stepper.chol_matches(&self.stepper) {
                    return Err(McError::Unsupported(
                        "scenario changes the correlation factor; \
                         correlation scenarios cannot share the path sweep"
                            .into(),
                    ));
                }
                Ok(CubeScenario {
                    stepper,
                    log0: scen.spots().iter().map(|s| s.ln()).collect(),
                    disc: scen.discount(self.maturity),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let payoffs: Vec<&Payoff> = products.iter().map(|p| &p.payoff).collect();
        let m = scens.len() * k;
        let blocks = self.cfg.num_blocks();
        // Same canonical chunked merge as `execute_multi`, per
        // (scenario, payoff) accumulator.
        let chunks = blocks.div_ceil(MERGE_CHUNK as u64);
        let run_chunk = |c: u64| -> Result<Vec<BlockAccum>, McError> {
            let lo = c * MERGE_CHUNK as u64;
            let hi = (lo + MERGE_CHUNK as u64).min(blocks);
            let mut chunk: Vec<BlockAccum> = (0..m).map(|_| BlockAccum::new()).collect();
            let mut per_block: Vec<BlockAccum> = (0..m).map(|_| BlockAccum::new()).collect();
            for b in lo..hi {
                self.check_cancel()?;
                for a in per_block.iter_mut() {
                    *a = BlockAccum::new();
                }
                self.simulate_block_cube(b, &scens, &payoffs, &mut per_block);
                for (t, a) in chunk.iter_mut().zip(&per_block) {
                    t.merge(a);
                }
            }
            Ok(chunk)
        };
        let chunk_accs: Vec<Vec<BlockAccum>> = if parallel {
            (0..chunks)
                .into_par_iter()
                .map(run_chunk)
                .collect::<Result<_, _>>()?
        } else {
            (0..chunks).map(run_chunk).collect::<Result<_, _>>()?
        };
        let mut totals: Vec<BlockAccum> = (0..m).map(|_| BlockAccum::new()).collect();
        for chunk in &chunk_accs {
            for (t, a) in totals.iter_mut().zip(chunk) {
                t.merge(a);
            }
        }
        Ok(totals
            .chunks(k)
            .map(|row| {
                row.iter()
                    .map(|acc| {
                        let (price, std_error) = acc.plain_estimate();
                        McResult {
                            price,
                            std_error,
                            paths: acc.n as u64,
                            variance_ratio: 1.0,
                        }
                    })
                    .collect()
            })
            .collect())
    }
}

/// Per-scenario planned state of one lane of a scenario cube: the
/// retuned stepper (sharing the base Cholesky bits), log-spots and
/// discount factor for one scenario market.
#[derive(Debug, Clone)]
struct CubeScenario {
    stepper: GbmStepper,
    log0: Vec<f64>,
    disc: f64,
}

/// The chunk-parallel accumulator fold shared by [`McEngine::price_rayon`]
/// and [`McPlan::execute_rayon`].
fn price_rayon_accum(ctx: &RunContext<'_>, cancel: &CancelToken) -> Result<BlockAccum, McError> {
    // Parallelise over merge chunks, not blocks: each worker folds its
    // run of MERGE_CHUNK consecutive blocks into one accumulator, so
    // only ⌈blocks/64⌉ accumulators are materialised (the old driver
    // collected one per block). Rayon's own reduce order is
    // nondeterministic; folding chunk totals in chunk order reproduces
    // the canonical association of `merge_in_chunks` exactly, keeping
    // the result bitwise equal to the sequential driver.
    let blocks = ctx.num_blocks();
    let chunks = blocks.div_ceil(MERGE_CHUNK as u64);
    let chunk_accs: Vec<BlockAccum> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * MERGE_CHUNK as u64;
            let hi = (lo + MERGE_CHUNK as u64).min(blocks);
            let mut chunk = BlockAccum::new();
            for b in lo..hi {
                if cancel.is_cancelled() {
                    return Err(McError::Cancelled);
                }
                chunk.merge(&ctx.simulate_block(b));
            }
            Ok(chunk)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut total = BlockAccum::new();
    for a in &chunk_accs {
        total.merge(a);
    }
    Ok(total)
}

impl McEngine {
    /// Engine with the given configuration.
    pub fn new(config: McConfig) -> Self {
        McEngine { config }
    }

    /// Build the payoff-independent plan for this configuration on a
    /// market with horizon `maturity`.
    pub fn plan(&self, market: &GbmMarket, maturity: f64) -> Result<McPlan, McError> {
        let cfg = self.config;
        if cfg.paths == 0 {
            return Err(McError::ZeroPaths);
        }
        if cfg.steps == 0 {
            return Err(McError::ZeroSteps);
        }
        if cfg.block_size == 0 {
            return Err(McError::Unsupported("block_size must be positive".into()));
        }
        if !maturity.is_finite() || maturity <= 0.0 {
            return Err(McError::Unsupported(format!(
                "maturity must be positive and finite, got {maturity}"
            )));
        }
        let stepper = GbmStepper::new(market, maturity, cfg.steps);
        Ok(McPlan {
            market: market.clone(),
            cfg,
            maturity,
            stepper,
            log0: market.spots().iter().map(|s| s.ln()).collect(),
            s0_first: market.spots()[0],
            disc: market.discount(maturity),
            cancel: CancelToken::never(),
        })
    }

    /// Sequential pricing: all blocks in order, merged in the canonical
    /// chunked order ([`merge_in_chunks`]).
    pub fn price(&self, market: &GbmMarket, product: &Product) -> Result<McResult, McError> {
        let ctx = RunContext::new(market, product, self.config)?;
        let acc = merge_in_chunks((0..ctx.num_blocks()).map(|b| ctx.simulate_block(b)));
        Ok(ctx.finish(&acc))
    }

    /// Sequential pricing with the batched SoA kernel explicitly —
    /// bitwise-identical to [`McEngine::price`] and
    /// [`McEngine::price_rayon`].
    pub fn price_batched(
        &self,
        market: &GbmMarket,
        product: &Product,
    ) -> Result<McResult, McError> {
        let ctx = RunContext::new(market, product, self.config)?;
        let acc = merge_in_chunks((0..ctx.num_blocks()).map(|b| ctx.simulate_block_batched(b)));
        Ok(ctx.finish(&acc))
    }

    /// Shared-memory parallel pricing over blocks (rayon). Identical
    /// result to [`McEngine::price`].
    pub fn price_rayon(&self, market: &GbmMarket, product: &Product) -> Result<McResult, McError> {
        let ctx = RunContext::new(market, product, self.config)?;
        Ok(ctx.finish(&price_rayon_accum(&ctx, &CancelToken::never())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call1() -> (GbmMarket, Product) {
        (
            GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap(),
            Product::european(
                Payoff::BasketCall {
                    weights: vec![1.0],
                    strike: 100.0,
                },
                1.0,
            ),
        )
    }

    #[test]
    fn converges_to_black_scholes_within_ci() {
        let (m, p) = call1();
        let exact = analytic::black_scholes_call(100.0, 100.0, 0.05, 0.0, 0.2, 1.0);
        let r = McEngine::new(McConfig {
            paths: 200_000,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        assert!(
            (r.price - exact).abs() < 3.0 * r.std_error,
            "{} vs {exact} (se {})",
            r.price,
            r.std_error
        );
        assert!(r.std_error < 0.1);
    }

    #[test]
    fn antithetic_reduces_error_for_monotone_payoff() {
        let (m, p) = call1();
        let plain = McEngine::new(McConfig {
            paths: 50_000,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        let anti = McEngine::new(McConfig {
            paths: 50_000,
            variance_reduction: VarianceReduction::Antithetic,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        assert!(
            anti.std_error < plain.std_error * 0.8,
            "antithetic {} vs plain {}",
            anti.std_error,
            plain.std_error
        );
    }

    #[test]
    fn control_variate_slashes_error_for_baskets() {
        let m = GbmMarket::symmetric(5, 100.0, 0.3, 0.0, 0.05, 0.4).unwrap();
        let p = Product::european(
            Payoff::BasketCall {
                weights: Product::equal_weights(5),
                strike: 100.0,
            },
            1.0,
        );
        let plain = McEngine::new(McConfig {
            paths: 40_000,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        let cv = McEngine::new(McConfig {
            paths: 40_000,
            variance_reduction: VarianceReduction::GeometricCv,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        assert!(
            cv.std_error < plain.std_error / 5.0,
            "cv {} vs plain {}",
            cv.std_error,
            plain.std_error
        );
        assert!(cv.variance_ratio > 25.0, "{}", cv.variance_ratio);
        // Both agree within errors.
        assert!((cv.price - plain.price).abs() < 4.0 * plain.std_error);
    }

    #[test]
    fn rayon_bitwise_equals_sequential() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0);
        let eng = McEngine::new(McConfig {
            paths: 20_000,
            block_size: 1000,
            ..Default::default()
        });
        let a = eng.price(&m, &p).unwrap();
        let b = eng.price_rayon(&m, &p).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
        assert_eq!(a.std_error.to_bits(), b.std_error.to_bits());
    }

    #[test]
    fn batched_block_bitwise_equals_scalar_across_payoff_families() {
        // One market/payoff per path-dependence family, plus CV and
        // antithetic variants; block sizes chosen so the last panel is a
        // remainder (block_paths % PANEL ≠ 0).
        let m3 = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let m1 = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let cases: Vec<(GbmMarket, Product, VarianceReduction, usize)> = vec![
            (
                m3.clone(),
                Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0),
                VarianceReduction::None,
                1,
            ),
            (
                m3.clone(),
                Product::european(
                    Payoff::BasketCall {
                        weights: Product::equal_weights(3),
                        strike: 100.0,
                    },
                    1.0,
                ),
                VarianceReduction::GeometricCv,
                1,
            ),
            (
                m3,
                Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0),
                VarianceReduction::Antithetic,
                4,
            ),
            (
                m1.clone(),
                Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0),
                VarianceReduction::None,
                8,
            ),
            (
                m1,
                Product::european(Payoff::LookbackCallFloating, 1.0),
                VarianceReduction::None,
                8,
            ),
        ];
        for (m, p, vr, steps) in cases {
            let cfg = McConfig {
                paths: 1000,
                steps,
                block_size: 300, // 300 % 64 ≠ 0 ⇒ remainder panels
                variance_reduction: vr,
                ..Default::default()
            };
            let ctx = RunContext::new(&m, &p, cfg).unwrap();
            for b in 0..ctx.num_blocks() {
                let scalar = ctx.simulate_block_scalar(b);
                let batched = ctx.simulate_block_batched(b);
                assert_eq!(
                    scalar.sum_y.to_bits(),
                    batched.sum_y.to_bits(),
                    "{vr:?} {:?} block {b}",
                    p.payoff
                );
                assert_eq!(scalar.sum_yy.to_bits(), batched.sum_yy.to_bits());
                assert_eq!(scalar.sum_xy.to_bits(), batched.sum_xy.to_bits());
                assert_eq!(scalar.n, batched.n);
            }
        }
    }

    #[test]
    fn price_batched_bitwise_equals_price_and_rayon() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0);
        let eng = McEngine::new(McConfig {
            paths: 20_000,
            block_size: 300,
            ..Default::default()
        });
        let a = eng.price(&m, &p).unwrap();
        let b = eng.price_batched(&m, &p).unwrap();
        let c = eng.price_rayon(&m, &p).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
        assert_eq!(a.price.to_bits(), c.price.to_bits());
        assert_eq!(a.std_error.to_bits(), b.std_error.to_bits());
        assert_eq!(a.std_error.to_bits(), c.std_error.to_bits());
    }

    #[test]
    fn plan_execute_bitwise_matches_one_shot() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let eng = McEngine::new(McConfig {
            paths: 10_000,
            block_size: 300,
            ..Default::default()
        });
        let plan = eng.plan(&m, 1.0).unwrap();
        for p in [
            Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0),
            Product::european(
                Payoff::BasketPut {
                    weights: Product::equal_weights(3),
                    strike: 100.0,
                },
                1.0,
            ),
        ] {
            let one_shot = eng.price(&m, &p).unwrap();
            let a = plan.execute(&p).unwrap();
            let b = plan.execute(&p).unwrap();
            let r = plan.execute_rayon(&p).unwrap();
            assert_eq!(a.price.to_bits(), one_shot.price.to_bits());
            assert_eq!(b.price.to_bits(), one_shot.price.to_bits());
            assert_eq!(r.price.to_bits(), one_shot.price.to_bits());
            assert_eq!(a.std_error.to_bits(), one_shot.std_error.to_bits());
        }
        let short = Product::european(Payoff::MaxCall { strike: 105.0 }, 0.5);
        assert!(plan.execute(&short).is_err());
    }

    #[test]
    fn tripped_cancel_token_aborts_all_drivers() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0);
        let eng = McEngine::new(McConfig {
            paths: 10_000,
            block_size: 500,
            ..Default::default()
        });
        let mut plan = eng.plan(&m, 1.0).unwrap();
        let token = CancelToken::new();
        token.cancel();
        plan.set_cancel(token);
        assert!(matches!(plan.execute(&p), Err(McError::Cancelled)));
        assert!(matches!(plan.execute_rayon(&p), Err(McError::Cancelled)));
        assert!(matches!(
            plan.execute_multi(std::slice::from_ref(&p), false),
            Err(McError::Cancelled)
        ));
        // A fresh (inert) token restores normal, bitwise-stable pricing.
        plan.set_cancel(CancelToken::never());
        let a = plan.execute(&p).unwrap();
        let b = eng.price(&m, &p).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
    }

    #[test]
    fn execute_multi_bitwise_matches_per_product_runs() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let eng = McEngine::new(McConfig {
            paths: 20_000,
            block_size: 300,
            ..Default::default()
        });
        let plan = eng.plan(&m, 1.0).unwrap();
        let products: Vec<Product> = vec![
            Product::european(Payoff::MaxCall { strike: 95.0 }, 1.0),
            Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0),
            Product::european(Payoff::MinPut { strike: 110.0 }, 1.0),
            Product::european(
                Payoff::BasketCall {
                    weights: Product::equal_weights(3),
                    strike: 100.0,
                },
                1.0,
            ),
        ];
        let seq = plan.execute_multi(&products, false).unwrap();
        let par = plan.execute_multi(&products, true).unwrap();
        for (i, p) in products.iter().enumerate() {
            let one_shot = eng.price(&m, p).unwrap();
            assert_eq!(seq[i].price.to_bits(), one_shot.price.to_bits(), "{i}");
            assert_eq!(
                seq[i].std_error.to_bits(),
                one_shot.std_error.to_bits(),
                "{i}"
            );
            assert_eq!(par[i].price.to_bits(), one_shot.price.to_bits(), "{i}");
            assert_eq!(seq[i].paths, one_shot.paths);
        }
    }

    #[test]
    fn execute_multi_rejects_unfusable_products() {
        let m = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let eng = McEngine::new(McConfig {
            paths: 1000,
            steps: 4,
            ..Default::default()
        });
        let plan = eng.plan(&m, 1.0).unwrap();
        let asian = Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0);
        assert!(plan.execute_multi(&[asian], false).is_err());
        let short = Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike: 100.0,
            },
            0.5,
        );
        assert!(plan.execute_multi(&[short], false).is_err());
        let anti = McEngine::new(McConfig {
            paths: 1000,
            variance_reduction: VarianceReduction::Antithetic,
            ..Default::default()
        });
        let vanilla = Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        assert!(anti
            .plan(&m, 1.0)
            .unwrap()
            .execute_multi(&[vanilla], false)
            .is_err());
    }

    #[test]
    fn estimate_is_block_partition_invariant() {
        // Same seed/paths with different block sizes changes the sample
        // set; with the same block size the result is fixed.
        let (m, p) = call1();
        let a = McEngine::new(McConfig {
            paths: 10_000,
            block_size: 512,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        let b = McEngine::new(McConfig {
            paths: 10_000,
            block_size: 512,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
    }

    #[test]
    fn asian_call_below_european_call() {
        // Averaging reduces effective volatility.
        let m = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let asian = Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0);
        let euro = Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        let cfg = McConfig {
            paths: 60_000,
            steps: 12,
            ..Default::default()
        };
        let pa = McEngine::new(cfg).price(&m, &asian).unwrap();
        let pe = McEngine::new(cfg).price(&m, &euro).unwrap();
        assert!(
            pa.price < pe.price - 2.0 * (pa.std_error + pe.std_error),
            "asian {} vs euro {}",
            pa.price,
            pe.price
        );
    }

    #[test]
    fn geometric_basket_matches_closed_form() {
        let m = GbmMarket::symmetric(4, 100.0, 0.25, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::GeometricCall { strike: 100.0 }, 1.0);
        let exact = analytic::geometric_basket_call(&m, &Product::equal_weights(4), 100.0, 1.0);
        let r = McEngine::new(McConfig {
            paths: 150_000,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        assert!(
            (r.price - exact).abs() < 3.5 * r.std_error,
            "{} vs {exact}",
            r.price
        );
    }

    #[test]
    fn rejects_invalid_configs() {
        let (m, p) = call1();
        assert!(matches!(
            McEngine::new(McConfig {
                paths: 0,
                ..Default::default()
            })
            .price(&m, &p),
            Err(McError::ZeroPaths)
        ));
        assert!(matches!(
            McEngine::new(McConfig {
                steps: 0,
                ..Default::default()
            })
            .price(&m, &p),
            Err(McError::ZeroSteps)
        ));
        let am = Product::american(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        assert!(matches!(
            McEngine::new(McConfig::default()).price(&m, &am),
            Err(McError::Unsupported(_))
        ));
        let cv_on_rainbow = McConfig {
            variance_reduction: VarianceReduction::GeometricCv,
            ..Default::default()
        };
        let rainbow = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let m2 = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        assert!(matches!(
            McEngine::new(cv_on_rainbow).price(&m2, &rainbow),
            Err(McError::Unsupported(_))
        ));
    }

    #[test]
    fn block_bookkeeping() {
        let cfg = McConfig {
            paths: 10_001,
            block_size: 1000,
            ..Default::default()
        };
        assert_eq!(cfg.num_blocks(), 11);
        assert_eq!(cfg.block_paths(0), 1000);
        assert_eq!(cfg.block_paths(10), 1);
        let total: u64 = (0..cfg.num_blocks()).map(|b| cfg.block_paths(b)).sum();
        assert_eq!(total, 10_001);
    }

    #[test]
    fn work_units_scale_with_dimension_and_steps() {
        let a = McConfig {
            steps: 1,
            ..Default::default()
        }
        .path_work_units(2);
        let b = McConfig {
            steps: 10,
            ..Default::default()
        }
        .path_work_units(2);
        let c = McConfig {
            steps: 1,
            ..Default::default()
        }
        .path_work_units(10);
        assert!(b > 5.0 * a);
        assert!(c > 2.0 * a);
    }
}

#[cfg(test)]
mod lookback_engine_tests {
    use super::*;
    use mdp_model::analytic;

    #[test]
    fn lookback_call_converges_to_continuous_from_below() {
        let m = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let p = Product::european(Payoff::LookbackCallFloating, 1.0);
        let exact = analytic::lookback_call_floating(100.0, 0.05, 0.0, 0.3, 1.0);
        let run = |steps: usize| {
            McEngine::new(McConfig {
                paths: 60_000,
                steps,
                ..Default::default()
            })
            .price(&m, &p)
            .unwrap()
        };
        let coarse = run(16);
        let fine = run(128);
        // Discrete monitoring misses extremes ⇒ undershoot, shrinking
        // with the monitoring frequency.
        assert!(coarse.price < exact, "{} vs {exact}", coarse.price);
        assert!(fine.price < exact + 2.0 * fine.std_error);
        assert!(
            fine.price > coarse.price,
            "finer monitoring must close the gap: {} vs {}",
            fine.price,
            coarse.price
        );
        assert!(
            (fine.price - exact).abs() / exact < 0.06,
            "within 6% at 128 dates: {} vs {exact}",
            fine.price
        );
    }

    #[test]
    fn lookback_put_priced_by_engine() {
        let m = GbmMarket::single(100.0, 0.25, 0.02, 0.05).unwrap();
        let p = Product::european(Payoff::LookbackPutFloating, 1.0);
        let exact = analytic::lookback_put_floating(100.0, 0.05, 0.02, 0.25, 1.0);
        let r = McEngine::new(McConfig {
            paths: 60_000,
            steps: 128,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        assert!(
            r.price < exact,
            "discrete undershoots: {} vs {exact}",
            r.price
        );
        assert!(
            (r.price - exact).abs() / exact < 0.08,
            "{} vs {exact}",
            r.price
        );
    }

    #[test]
    fn apply_tick_bitwise_equals_fresh_plan() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0);
        let eng = McEngine::new(McConfig {
            paths: 8_000,
            block_size: 1000,
            ..Default::default()
        });
        let mut ticked = eng.plan(&m, 1.0).unwrap();
        let mut corr = mdp_math::linalg::Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    corr[(i, j)] = 0.45;
                }
            }
        }
        let deltas = [
            MarketDelta::Spot {
                asset: 1,
                spot: 112.0,
            },
            MarketDelta::Vol {
                asset: 0,
                vol: 0.32,
            },
            MarketDelta::Rate { rate: 0.055 },
            MarketDelta::Correlation { correlation: corr },
            MarketDelta::Spot {
                asset: 0,
                spot: 93.0,
            },
        ];
        for delta in &deltas {
            let outcome = ticked.apply_tick(delta).unwrap();
            assert!(!outcome.rebuilt(), "MC ticks are always patches");
            let fresh = eng.plan(ticked.market(), 1.0).unwrap();
            let a = ticked.execute(&p).unwrap();
            let b = fresh.execute(&p).unwrap();
            assert_eq!(a.price.to_bits(), b.price.to_bits(), "{delta:?}");
            assert_eq!(a.std_error.to_bits(), b.std_error.to_bits());
        }
    }

    #[test]
    fn cube_bitwise_equals_per_scenario_ticked_plans() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let products = vec![
            Product::european(Payoff::MaxCall { strike: 105.0 }, 1.0),
            Product::european(
                Payoff::BasketCall {
                    weights: Product::equal_weights(3),
                    strike: 100.0,
                },
                1.0,
            ),
            Product::european(Payoff::MinPut { strike: 95.0 }, 1.0),
        ];
        let eng = McEngine::new(McConfig {
            paths: 8_000,
            block_size: 1000,
            ..Default::default()
        });
        let plan = eng.plan(&m, 1.0).unwrap();
        let scenarios = vec![
            m.with_spot(0, 101.0).unwrap(),
            m.with_vol(1, 0.31).unwrap(),
            m.with_rate(0.05).unwrap(),
            m.clone(),
        ];
        for parallel in [false, true] {
            let cube = plan.execute_cube(&products, &scenarios, parallel).unwrap();
            assert_eq!(cube.len(), scenarios.len());
            for (scen, row) in scenarios.iter().zip(&cube) {
                let naive = eng.plan(scen, 1.0).unwrap().execute_multi(&products, false).unwrap();
                for (a, b) in row.iter().zip(&naive) {
                    assert_eq!(a.price.to_bits(), b.price.to_bits());
                    assert_eq!(a.std_error.to_bits(), b.std_error.to_bits());
                    assert_eq!(a.paths, b.paths);
                }
            }
        }
    }

    #[test]
    fn cube_rejects_correlation_scenarios() {
        let m = GbmMarket::symmetric(2, 100.0, 0.25, 0.0, 0.04, 0.3).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let plan = McEngine::new(McConfig {
            paths: 2_000,
            ..Default::default()
        })
        .plan(&m, 1.0)
        .unwrap();
        let twisted = GbmMarket::symmetric(2, 100.0, 0.25, 0.0, 0.04, 0.7).unwrap();
        let err = plan
            .execute_cube(std::slice::from_ref(&p), &[twisted], false)
            .unwrap_err();
        assert!(matches!(err, McError::Unsupported(_)), "{err}");
    }
}
