//! Message-passing Monte Carlo drivers with virtual-time accounting.
//!
//! **European** ([`price_mc_cluster`]): rank `r` simulates its block range
//! of the fixed block-substream partition, charges the machine model for
//! the path work, and the ranks allreduce one 6-wide accumulator. The
//! price equals the sequential engine's bit for bit; the virtual time
//! gives experiments T3/F3 their near-ideal speedup curves (a single
//! log₂p-deep reduction at the end of an arbitrarily large compute
//! phase).
//!
//! **LSMC** ([`price_lsmc_cluster`]): each rank owns a share of the path
//! panel; every exercise date requires an allreduce of the
//! normal-equation sums (`k² + k + 1` doubles) before any rank can make
//! its exercise decisions. That per-step synchronisation is the serial
//! fraction that separates the LSMC speedup curve from the European one
//! (experiment T7).

use crate::engine::{McConfig, McResult, RunContext};
use crate::lsmc::{self, LsmcConfig, LsmcResult, RegressionSums};
use crate::variance::{merge_in_chunks, BlockAccum, ACCUM_WIDTH};
use crate::McError;
use mdp_cluster::checkpoint::{broadcast_active, gather_active};
use mdp_cluster::{
    partition, run_spmd_ft, CheckpointMode, CheckpointStore, CollectiveEngine, Communicator,
    FaultPlan, Machine, Supervisor, TimeModel,
};
use mdp_model::{GbmMarket, Product};

/// Outcome of a distributed European Monte Carlo run.
#[derive(Debug, Clone)]
pub struct McClusterOutcome {
    /// The estimate (identical to the sequential engine's).
    pub result: McResult,
    /// Virtual-time model of the run.
    pub time: TimeModel,
}

/// Price a European product on `p` ranks under `machine`.
pub fn price_mc_cluster(
    market: &GbmMarket,
    product: &Product,
    cfg: McConfig,
    p: usize,
    machine: Machine,
) -> Result<McClusterOutcome, McError> {
    let ctx = RunContext::new(market, product, cfg)?;
    let work_per_path = cfg.path_work_units(market.dim());
    let engine = CollectiveEngine::for_machine(&machine, p);
    let results = mdp_cluster::run_spmd(p, machine, |comm| {
        let blocks = ctx.num_blocks() as usize;
        let (lo, hi) = partition::block_range(blocks, comm.size(), comm.rank());
        // Keep per-block accumulators separate: the root folds them in
        // global block order with the engine's canonical chunked
        // association, which makes the result bit-identical to the
        // sequential engine (floating-point addition is order-sensitive;
        // a tree allreduce would differ in the last couple of ULPs).
        let mut local = Vec::with_capacity((hi - lo) * ACCUM_WIDTH);
        let mut paths = 0u64;
        for b in lo..hi {
            local.extend_from_slice(&ctx.simulate_block(b as u64).to_vec());
            paths += ctx.config().block_paths(b as u64);
        }
        comm.compute_units(paths as f64 * work_per_path);
        let gathered = engine.gather_varied(comm, 0, &local);
        let mut merged = [0.0; ACCUM_WIDTH];
        if let Some(parts) = gathered {
            // Rank ranges are contiguous and ascending, so flattening the
            // gathered parts restores global block order; merging via
            // `merge_in_chunks` reproduces the sequential association.
            let total = merge_in_chunks(
                parts
                    .iter()
                    .flat_map(|part| part.chunks_exact(ACCUM_WIDTH))
                    .map(BlockAccum::from_slice),
            );
            merged = total.to_vec();
        }
        engine.broadcast(comm, 0, &mut merged);
        BlockAccum::from_slice(&merged)
    })
    .map_err(|e| McError::Unsupported(e.to_string()))?;

    let result = ctx.finish(&results[0].value);
    let time = TimeModel::from_results(&results);
    Ok(McClusterOutcome { result, time })
}

/// Outcome of a fault-tolerant distributed European Monte Carlo run.
#[derive(Debug, Clone)]
pub struct McClusterFtOutcome {
    /// The estimate — bit-identical to the fault-free run.
    pub result: McResult,
    /// Virtual-time model, crashed ranks' time included.
    pub time: TimeModel,
    /// Injected crashes that fired, as `(rank, boundary)` pairs.
    pub crashed: Vec<(usize, usize)>,
}

/// Fault-tolerant variant of [`price_mc_cluster`]: the global block
/// range is processed in `batches` contiguous batches with a
/// checkpoint/recovery boundary before each one. A checkpoint persists
/// this rank's per-block accumulators *tagged with their block ids*
/// (7 doubles per block), so recovery can repartition completed blocks
/// over the survivors without rerunning them, and the root can fold
/// the final accumulators in global block order — which is what keeps
/// the estimate bit-identical to the sequential engine through any
/// number of recoveries (block substreams make each block's accumulator
/// owner-independent).
#[allow(clippy::too_many_arguments)]
pub fn price_mc_cluster_ft(
    market: &GbmMarket,
    product: &Product,
    cfg: McConfig,
    p: usize,
    machine: Machine,
    plan: FaultPlan,
    batches: usize,
    ckpt_interval: usize,
) -> Result<McClusterFtOutcome, McError> {
    if batches == 0 {
        return Err(McError::Unsupported("batches must be >= 1".into()));
    }
    let ctx = RunContext::new(market, product, cfg)?;
    let work_per_path = cfg.path_work_units(market.dim());
    let store = CheckpointStore::new();

    let outcome = run_spmd_ft(p, machine, plan, |comm| {
        let blocks = ctx.num_blocks() as usize;
        let rank = comm.rank();
        let mut sup = Supervisor::new(comm, ckpt_interval, &store);
        // Completed blocks as (id, accum) pairs: [id, a0..a5] each.
        let mut local: Vec<f64> = Vec::new();

        let mut t = 0usize; // completed batches == boundary index
        while t < batches {
            if let Some(rec) = sup.boundary(comm, t, || (0, local.clone())) {
                // Roll back: pool every survivor's and the victim's
                // completed (id, accum) pairs and repartition them over
                // the active set by global block order.
                let t0 = rec.from_step.expect("boundary 0 always checkpoints");
                let mut entries: Vec<&[f64]> = rec
                    .records
                    .iter()
                    .flat_map(|(_, r)| r.data.chunks_exact(1 + ACCUM_WIDTH))
                    .collect();
                entries.sort_by_key(|e| e[0] as u64);
                let a = sup.active().len();
                let i = sup.dense_index(rank);
                let (elo, ehi) = partition::block_range(entries.len(), a, i);
                local.clear();
                for e in &entries[elo..ehi] {
                    local.extend_from_slice(e);
                }
                t = t0;
                continue; // re-enter boundary t0: fresh-era checkpoint
            }
            // Batch t's global block range, split over the active set.
            let (blo, bhi) = partition::block_range(blocks, batches, t);
            let a = sup.active().len();
            let i = sup.dense_index(rank);
            let (mlo, mhi) = partition::block_range(bhi - blo, a, i);
            let mut paths = 0u64;
            for b in blo + mlo..blo + mhi {
                local.push(b as f64);
                local.extend_from_slice(&ctx.simulate_block(b as u64).to_vec());
                paths += ctx.config().block_paths(b as u64);
            }
            comm.compute_units(paths as f64 * work_per_path);
            t += 1;
        }

        // Gather every (id, accum) pair to the first active rank, fold
        // in global block order, broadcast the total.
        let active = sup.active().to_vec();
        let root = active[0];
        let gathered = gather_active(comm, &active, root, &local);
        let mut merged = vec![0.0; ACCUM_WIDTH];
        if rank == root {
            let mut entries: Vec<&[f64]> = gathered
                .iter()
                .flat_map(|part| part.chunks_exact(1 + ACCUM_WIDTH))
                .collect();
            entries.sort_by_key(|e| e[0] as u64);
            debug_assert_eq!(entries.len(), blocks, "every block exactly once");
            let total = merge_in_chunks(entries.iter().map(|e| BlockAccum::from_slice(&e[1..])));
            merged = total.to_vec().to_vec();
        }
        let merged = broadcast_active(comm, &active, root, &merged);
        BlockAccum::from_slice(&merged)
    })
    .map_err(|e| McError::Unsupported(e.to_string()))?;

    let result = ctx.finish(&outcome.survivors[0].value);
    let mut time = TimeModel::from_results(&outcome.survivors);
    for c in &outcome.crashed {
        time.absorb_crashed(c.time, &c.stats);
    }
    Ok(McClusterFtOutcome {
        result,
        time,
        crashed: outcome.crashed.iter().map(|c| (c.rank, c.step)).collect(),
    })
}

/// Outcome of a distributed LSMC run.
#[derive(Debug, Clone)]
pub struct LsmcClusterOutcome {
    /// The estimate.
    pub result: LsmcResult,
    /// Virtual-time model of the run.
    pub time: TimeModel,
}

/// Price an American product with distributed LSMC on `p` ranks.
///
/// Work accounting: path simulation and the per-date regression scans
/// are charged per local path; the per-date allreduce of the
/// normal-equation sums is costed by the machine model through the
/// collective's real message structure.
pub fn price_lsmc_cluster(
    market: &GbmMarket,
    product: &Product,
    cfg: LsmcConfig,
    p: usize,
    machine: Machine,
) -> Result<LsmcClusterOutcome, McError> {
    lsmc::validate(market, product, &cfg)?;
    let d = market.dim();
    let basis = mdp_math::poly::TensorBasis::new(d, cfg.degree, cfg.basis);
    let k = basis.size();
    // Work units: simulation ~ steps·(d²/2 + 8d + 6); each date's scan is
    // ~ d + k² per path (basis eval + rank-1 update), twice (sum + apply).
    let sim_work = cfg.steps as f64 * ((d * d) as f64 / 2.0 + 8.0 * d as f64 + 6.0);
    let date_work = 2.0 * (d as f64 + (k * k) as f64);

    let engine = CollectiveEngine::for_machine(&machine, p);
    let results = mdp_cluster::run_spmd(p, machine, |comm| {
        let blocks = lsmc::num_blocks(&cfg) as usize;
        let (lo, hi) = partition::block_range(blocks, comm.size(), comm.rank());
        let panel = lsmc::simulate_panel(market, product, &cfg, lo as u64..hi as u64);
        comm.compute_units(panel.paths as f64 * sim_work);

        // The backward sweep needs a global regression at each date: we
        // thread the communicator through the `regress` hook.
        let comm_cell = std::cell::RefCell::new(comm);
        let discounted = lsmc::backward_sweep(market, product, &cfg, &panel, |_, sums| {
            let mut c = comm_cell.borrow_mut();
            c.compute_units(panel.paths as f64 * date_work);
            let merged = engine.allreduce_sum(&mut **c, &sums.to_vec());
            lsmc::RegressionSums::from_slice(k, &merged).solve(cfg.ridge)
        });
        // Global mean/SE via one final reduction of [n, Σ, Σ²].
        let local: [f64; 3] = [
            discounted.len() as f64,
            discounted.iter().sum(),
            discounted.iter().map(|c| c * c).sum(),
        ];
        let comm = comm_cell.into_inner();
        engine.allreduce_sum(comm, &local)
    })
    .map_err(|e| McError::Unsupported(e.to_string()))?;

    let g = &results[0].value;
    let n = g[0];
    let mean = g[1] / n;
    let var = (g[2] - n * mean * mean) / (n - 1.0);
    let intrinsic = product.payoff.eval(market.spots());
    let result = LsmcResult {
        price: mean.max(intrinsic),
        std_error: (var.max(0.0) / n).sqrt(),
        paths: n as u64,
    };
    let time = TimeModel::from_results(&results);
    Ok(LsmcClusterOutcome { result, time })
}

/// Outcome of a fault-tolerant distributed LSMC run.
#[derive(Debug, Clone)]
pub struct LsmcClusterFtOutcome {
    /// The estimate — bit-identical to the fault-free run of the same
    /// driver (see [`price_lsmc_cluster_ft`] on why it is *not* bitwise
    /// against [`price_lsmc_cluster`]).
    pub result: LsmcResult,
    /// Virtual-time model, crashed ranks' time included.
    pub time: TimeModel,
    /// Injected crashes that fired, as `(rank, boundary)` pairs.
    pub crashed: Vec<(usize, usize)>,
}

/// Fault-tolerant distributed LSMC: the backward sweep runs one
/// exercise date per [`Supervisor::boundary`], checkpointing every
/// rank's per-block `(cashflow, cf_time)` state each `ckpt_interval`
/// dates. On a crash, survivors restore the sweep state of every block
/// from the pooled era-keyed records, repartition the substream blocks
/// over the shrunken active set, re-simulate their newly owned path
/// panels (deterministic block substreams) and replay from the last
/// checkpoint.
///
/// To make the price independent of *which* ranks own which blocks,
/// all cross-rank reductions run over **per-block** partial results
/// folded in global block order at the first active rank: the per-date
/// normal-equation sums and the final `[n, Σ, Σ²]` statistics. A
/// faulted run is therefore bit-identical to a fault-free run of this
/// driver at any rank count. (It is *not* bitwise against
/// [`price_lsmc_cluster`], which reduces rank-local sums via the
/// canonical allreduce — a different, partition-dependent association.)
#[allow(clippy::too_many_arguments)]
pub fn price_lsmc_cluster_ft(
    market: &GbmMarket,
    product: &Product,
    cfg: LsmcConfig,
    p: usize,
    machine: Machine,
    plan: FaultPlan,
    ckpt_interval: usize,
    mode: CheckpointMode,
) -> Result<LsmcClusterFtOutcome, McError> {
    lsmc::validate(market, product, &cfg)?;
    let d = market.dim();
    let basis = mdp_math::poly::TensorBasis::new(d, cfg.degree, cfg.basis);
    let k = basis.size();
    let sums_width = k * k + k + 1;
    let sim_work = cfg.steps as f64 * ((d * d) as f64 / 2.0 + 8.0 * d as f64 + 6.0);
    let date_work = 2.0 * (d as f64 + (k * k) as f64);
    let store = CheckpointStore::new();

    let outcome = run_spmd_ft(p, machine, plan, |comm| {
        let blocks = lsmc::num_blocks(&cfg) as usize;
        let rank = comm.rank();
        let mut sup = Supervisor::new_with_mode(comm, ckpt_interval, &store, mode);
        let dt = product.maturity / cfg.steps as f64;
        let disc_dt = (-market.rate() * dt).exp();
        let payoff = &product.payoff;
        let spots0 = market.spots();

        // Initial partition: contiguous block range over the full set.
        let (lo0, hi0) =
            partition::block_range(blocks, sup.active().len(), sup.dense_index(rank));
        let (mut blo, mut bhi) = (lo0 as u64, hi0 as u64);
        let mut panel = lsmc::simulate_panel(market, product, &cfg, blo..bhi);
        comm.compute_units(panel.paths as f64 * sim_work);

        // Terminal sweep state (identical math to `lsmc::backward_sweep`).
        let mut cashflow: Vec<f64> = (0..panel.paths)
            .map(|q| payoff.eval(&panel.spots[cfg.steps - 1][q * d..(q + 1) * d]))
            .collect();
        let mut cf_time: Vec<u32> = vec![cfg.steps as u32; panel.paths];

        let mut phi = vec![0.0; k];
        let mut x = vec![0.0; d];
        let mut j = 0usize; // processed dates == boundary index
        while j < cfg.steps - 1 {
            if let Some(rec) = sup.boundary(comm, j, || {
                (blo as usize, encode_sweep_state(&cfg, blo, bhi, &cashflow, &cf_time))
            }) {
                // Roll back: restore every block's sweep state from the
                // pooled records, repartition over the survivors and
                // re-simulate the newly owned panels.
                let j0 = rec.from_step.expect("boundary 0 always checkpoints");
                let mut pool: std::collections::HashMap<u64, (Vec<f64>, Vec<u32>)> =
                    std::collections::HashMap::new();
                for (_, r) in &rec.records {
                    decode_sweep_state(&r.data, &mut pool);
                }
                let (nlo, nhi) =
                    partition::block_range(blocks, sup.active().len(), sup.dense_index(rank));
                (blo, bhi) = (nlo as u64, nhi as u64);
                panel = lsmc::simulate_panel(market, product, &cfg, blo..bhi);
                comm.compute_units(panel.paths as f64 * sim_work);
                cashflow.clear();
                cf_time.clear();
                for b in blo..bhi {
                    let (cf, ct) = pool.get(&b).expect("pool covers every block");
                    cashflow.extend_from_slice(cf);
                    cf_time.extend_from_slice(ct);
                }
                j = j0;
                continue; // re-enter boundary j0: fresh-era checkpoint
            }

            let t = cfg.steps - 1 - j; // exercise date, steps−1 .. 1
            let layer = &panel.spots[t - 1];
            // Per-block normal-equation sums (block-local path order is
            // fixed, so each block's sums are owner-independent).
            let mut payload: Vec<f64> = Vec::new();
            let mut off = 0usize;
            for b in blo..bhi {
                let nb = lsmc::block_paths(&cfg, b) as usize;
                let mut sums = RegressionSums::new(k);
                for q in off..off + nb {
                    let s = &layer[q * d..(q + 1) * d];
                    let intrinsic = payoff.eval(s);
                    if intrinsic > 0.0 {
                        for (xi, (si, s0)) in x.iter_mut().zip(s.iter().zip(spots0)) {
                            *xi = si / s0;
                        }
                        basis.eval(&x, &mut phi);
                        let y = cashflow[q] * disc_dt.powi((cf_time[q] - t as u32) as i32);
                        sums.push(&phi, y);
                    }
                }
                payload.push(b as f64);
                payload.extend(sums.to_vec());
                off += nb;
            }
            comm.compute_units(panel.paths as f64 * date_work);

            // Fold the per-block sums in global block order at the
            // first active rank — a partition-independent association.
            let active = sup.active().to_vec();
            let root = active[0];
            let gathered = gather_active(comm, &active, root, &payload);
            let mut merged = vec![0.0; sums_width];
            if rank == root {
                let mut entries: Vec<&[f64]> = gathered
                    .iter()
                    .flat_map(|part| part.chunks_exact(1 + sums_width))
                    .collect();
                entries.sort_by_key(|e| e[0] as u64);
                debug_assert_eq!(entries.len(), blocks, "every block exactly once");
                for e in &entries {
                    for (m, v) in merged.iter_mut().zip(&e[1..]) {
                        *m += v;
                    }
                }
            }
            let merged = broadcast_active(comm, &active, root, &merged);

            if let Some(beta) = RegressionSums::from_slice(k, &merged).solve(cfg.ridge) {
                // Exercise where intrinsic beats the fitted continuation.
                for q in 0..panel.paths {
                    let s = &layer[q * d..(q + 1) * d];
                    let intrinsic = payoff.eval(s);
                    if intrinsic > 0.0 {
                        for (xi, (si, s0)) in x.iter_mut().zip(s.iter().zip(spots0)) {
                            *xi = si / s0;
                        }
                        basis.eval(&x, &mut phi);
                        let continuation: f64 =
                            beta.iter().zip(&phi).map(|(b, f)| b * f).sum();
                        if intrinsic >= continuation {
                            cashflow[q] = intrinsic;
                            cf_time[q] = t as u32;
                        }
                    }
                }
            }
            j += 1;
        }
        sup.flush(comm);

        // Final per-block [count, Σ, Σ²] over time-0 discounted
        // cashflows, folded in block order — partition-independent.
        let discounted: Vec<f64> = cashflow
            .iter()
            .zip(&cf_time)
            .map(|(cf, tt)| cf * disc_dt.powi(*tt as i32))
            .collect();
        let mut payload: Vec<f64> = Vec::new();
        let mut off = 0usize;
        for b in blo..bhi {
            let nb = lsmc::block_paths(&cfg, b) as usize;
            let slice = &discounted[off..off + nb];
            payload.push(b as f64);
            payload.push(nb as f64);
            payload.push(slice.iter().sum());
            payload.push(slice.iter().map(|c| c * c).sum());
            off += nb;
        }
        let active = sup.active().to_vec();
        let root = active[0];
        let gathered = gather_active(comm, &active, root, &payload);
        let mut stats = vec![0.0; 3];
        if rank == root {
            let mut entries: Vec<&[f64]> = gathered
                .iter()
                .flat_map(|part| part.chunks_exact(4))
                .collect();
            entries.sort_by_key(|e| e[0] as u64);
            for e in &entries {
                stats[0] += e[1];
                stats[1] += e[2];
                stats[2] += e[3];
            }
        }
        broadcast_active(comm, &active, root, &stats)
    })
    .map_err(|e| McError::Unsupported(e.to_string()))?;

    let g = &outcome.survivors[0].value;
    let n = g[0];
    let mean = g[1] / n;
    let var = (g[2] - n * mean * mean) / (n - 1.0);
    let intrinsic = product.payoff.eval(market.spots());
    let result = LsmcResult {
        price: mean.max(intrinsic),
        std_error: (var.max(0.0) / n).sqrt(),
        paths: n as u64,
    };
    let mut time = TimeModel::from_results(&outcome.survivors);
    for c in &outcome.crashed {
        time.absorb_crashed(c.time, &c.stats);
    }
    Ok(LsmcClusterFtOutcome {
        result,
        time,
        crashed: outcome.crashed.iter().map(|c| (c.rank, c.step)).collect(),
    })
}

/// Flatten per-block `(id, paths, cashflow, cf_time)` sweep state for a
/// checkpoint record.
fn encode_sweep_state(
    cfg: &LsmcConfig,
    blo: u64,
    bhi: u64,
    cashflow: &[f64],
    cf_time: &[u32],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 * cashflow.len() + 2 * (bhi - blo) as usize);
    let mut off = 0usize;
    for b in blo..bhi {
        let nb = lsmc::block_paths(cfg, b) as usize;
        out.push(b as f64);
        out.push(nb as f64);
        out.extend_from_slice(&cashflow[off..off + nb]);
        out.extend(cf_time[off..off + nb].iter().map(|&t| t as f64));
        off += nb;
    }
    out
}

/// Inverse of [`encode_sweep_state`], merging into a per-block pool.
fn decode_sweep_state(data: &[f64], pool: &mut std::collections::HashMap<u64, (Vec<f64>, Vec<u32>)>) {
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i] as u64;
        let nb = data[i + 1] as usize;
        i += 2;
        let cf = data[i..i + nb].to_vec();
        i += nb;
        let ct = data[i..i + nb].iter().map(|&t| t as u32).collect();
        i += nb;
        pool.insert(b, (cf, ct));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{McEngine, VarianceReduction};
    use mdp_model::Payoff;

    fn basket3() -> (GbmMarket, Product) {
        (
            GbmMarket::symmetric(3, 100.0, 0.25, 0.0, 0.05, 0.4).unwrap(),
            Product::european(
                Payoff::BasketCall {
                    weights: Product::equal_weights(3),
                    strike: 100.0,
                },
                1.0,
            ),
        )
    }

    #[test]
    fn cluster_price_equals_sequential_bitwise() {
        let (m, p) = basket3();
        let cfg = McConfig {
            paths: 20_000,
            block_size: 1000,
            ..Default::default()
        };
        let seq = McEngine::new(cfg).price(&m, &p).unwrap();
        for ranks in [1usize, 2, 4, 5] {
            let par = price_mc_cluster(&m, &p, cfg, ranks, Machine::ideal()).unwrap();
            assert_eq!(
                par.result.price.to_bits(),
                seq.price.to_bits(),
                "ranks={ranks}"
            );
            assert_eq!(par.result.paths, seq.paths);
        }
    }

    #[test]
    fn cluster_price_invariant_across_rank_counts() {
        let (m, p) = basket3();
        let cfg = McConfig {
            paths: 10_000,
            block_size: 500,
            variance_reduction: VarianceReduction::Antithetic,
            ..Default::default()
        };
        let a = price_mc_cluster(&m, &p, cfg, 2, Machine::cluster2002()).unwrap();
        let b = price_mc_cluster(&m, &p, cfg, 7, Machine::cluster2002()).unwrap();
        assert_eq!(a.result.price.to_bits(), b.result.price.to_bits());
    }

    #[test]
    fn mc_speedup_is_near_ideal_for_large_runs() {
        let (m, p) = basket3();
        let cfg = McConfig {
            paths: 64_000,
            block_size: 1000,
            ..Default::default()
        };
        let t1 = price_mc_cluster(&m, &p, cfg, 1, Machine::cluster2002())
            .unwrap()
            .time
            .makespan;
        let t8 = price_mc_cluster(&m, &p, cfg, 8, Machine::cluster2002())
            .unwrap()
            .time
            .makespan;
        let s8 = t1 / t8;
        assert!(s8 > 7.0, "MC should scale near-ideally: {s8}");
        assert!(s8 <= 8.0 + 1e-9);
    }

    #[test]
    fn small_runs_scale_worse_than_large_runs() {
        let (m, p) = basket3();
        let small = McConfig {
            paths: 512,
            block_size: 16,
            ..Default::default()
        };
        let large = McConfig {
            paths: 64_000,
            block_size: 1000,
            ..Default::default()
        };
        let sp = |cfg: McConfig| {
            let t1 = price_mc_cluster(&m, &p, cfg, 1, Machine::cluster2002())
                .unwrap()
                .time
                .makespan;
            let t8 = price_mc_cluster(&m, &p, cfg, 8, Machine::cluster2002())
                .unwrap()
                .time
                .makespan;
            t1 / t8
        };
        let s_small = sp(small);
        let s_large = sp(large);
        assert!(
            s_small < s_large,
            "small {s_small} should trail large {s_large}"
        );
    }

    #[test]
    fn lsmc_cluster_matches_sequential_within_tolerance() {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let p = Product::american(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 110.0,
            },
            1.0,
        );
        let cfg = LsmcConfig {
            paths: 8_000,
            steps: 10,
            block_size: 500,
            ..Default::default()
        };
        let seq = lsmc::price_lsmc(&m, &p, cfg).unwrap();
        let par = price_lsmc_cluster(&m, &p, cfg, 4, Machine::ideal()).unwrap();
        // Same panel, same regression math; only the summation order of
        // the allreduce differs from the sequential fold.
        assert!(
            (par.result.price - seq.price).abs() < 1e-6,
            "{} vs {}",
            par.result.price,
            seq.price
        );
        assert_eq!(par.result.paths, seq.paths);
    }

    #[test]
    fn lsmc_scales_worse_than_european_mc() {
        // The per-date allreduce is LSMC's serial fraction.
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let am = Product::american(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 110.0,
            },
            1.0,
        );
        let eu = Product::european(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 110.0,
            },
            1.0,
        );
        let lsmc_cfg = LsmcConfig {
            paths: 4_000,
            steps: 25,
            block_size: 125,
            ..Default::default()
        };
        // Same paths and the same 25-step simulation work, so the only
        // structural difference is LSMC's per-date allreduce.
        let mc_cfg = McConfig {
            paths: 4_000,
            steps: 25,
            block_size: 125,
            ..Default::default()
        };
        let s_lsmc = {
            let t1 = price_lsmc_cluster(&m, &am, lsmc_cfg, 1, Machine::cluster2002())
                .unwrap()
                .time
                .makespan;
            let t8 = price_lsmc_cluster(&m, &am, lsmc_cfg, 8, Machine::cluster2002())
                .unwrap()
                .time
                .makespan;
            t1 / t8
        };
        let s_mc = {
            let t1 = price_mc_cluster(&m, &eu, mc_cfg, 1, Machine::cluster2002())
                .unwrap()
                .time
                .makespan;
            let t8 = price_mc_cluster(&m, &eu, mc_cfg, 8, Machine::cluster2002())
                .unwrap()
                .time
                .makespan;
            t1 / t8
        };
        assert!(
            s_lsmc < s_mc,
            "lsmc speedup {s_lsmc} should trail european {s_mc}"
        );
    }

    #[test]
    fn ft_without_faults_matches_sequential_bitwise() {
        let (m, p) = basket3();
        let cfg = McConfig {
            paths: 8_000,
            block_size: 500,
            ..Default::default()
        };
        let seq = McEngine::new(cfg).price(&m, &p).unwrap();
        let ft = price_mc_cluster_ft(
            &m,
            &p,
            cfg,
            4,
            Machine::cluster2002(),
            mdp_cluster::FaultPlan::new(5),
            8,
            2,
        )
        .unwrap();
        assert_eq!(ft.result.price.to_bits(), seq.price.to_bits());
        assert_eq!(ft.result.paths, seq.paths);
        assert!(ft.crashed.is_empty());
        assert!(ft.time.total_ckpt_time > 0.0);
    }

    #[test]
    fn ft_recovers_bit_identically_from_mid_run_crashes() {
        let (m, p) = basket3();
        let cfg = McConfig {
            paths: 8_000,
            block_size: 500,
            ..Default::default()
        };
        let seq = McEngine::new(cfg).price(&m, &p).unwrap();
        for crash_at in [1usize, 4, 7] {
            let plan = mdp_cluster::FaultPlan::new(11).with_crash(2, crash_at);
            let ft =
                price_mc_cluster_ft(&m, &p, cfg, 4, Machine::cluster2002(), plan, 8, 2).unwrap();
            assert_eq!(
                ft.result.price.to_bits(),
                seq.price.to_bits(),
                "crash at batch boundary {crash_at}"
            );
            assert_eq!(ft.result.paths, seq.paths);
            assert_eq!(ft.crashed, vec![(2, crash_at)]);
        }
    }

    #[test]
    fn ft_survives_down_to_a_single_rank() {
        let (m, p) = basket3();
        let cfg = McConfig {
            paths: 4_000,
            block_size: 250,
            ..Default::default()
        };
        let seq = McEngine::new(cfg).price(&m, &p).unwrap();
        let plan = mdp_cluster::FaultPlan::new(1)
            .with_crash(0, 2)
            .with_crash(1, 4)
            .with_crash(2, 4);
        let ft = price_mc_cluster_ft(&m, &p, cfg, 4, Machine::cluster2002(), plan, 6, 1).unwrap();
        assert_eq!(ft.result.price.to_bits(), seq.price.to_bits());
        assert_eq!(ft.crashed.len(), 3);
    }

    fn lsmc_ft_case() -> (GbmMarket, Product, LsmcConfig) {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let p = Product::american(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 110.0,
            },
            1.0,
        );
        let cfg = LsmcConfig {
            paths: 4_000,
            steps: 10,
            block_size: 250,
            ..Default::default()
        };
        (m, p, cfg)
    }

    #[test]
    fn lsmc_ft_matches_sequential_within_tolerance() {
        let (m, p, cfg) = lsmc_ft_case();
        let seq = lsmc::price_lsmc(&m, &p, cfg).unwrap();
        let ft = price_lsmc_cluster_ft(
            &m,
            &p,
            cfg,
            4,
            Machine::cluster2002(),
            mdp_cluster::FaultPlan::new(5),
            4,
            CheckpointMode::Sync,
        )
        .unwrap();
        // Per-block regression sums fold in a different order than the
        // sequential path-order accumulation, so this is tolerance, not
        // bitwise (the fitted betas differ in the last ulps).
        assert!(
            (ft.result.price - seq.price).abs() < 1e-6,
            "{} vs {}",
            ft.result.price,
            seq.price
        );
        assert_eq!(ft.result.paths, seq.paths);
        assert!(ft.crashed.is_empty());
        assert!(ft.time.total_ckpt_time > 0.0);
    }

    #[test]
    fn lsmc_ft_recovers_bit_identically_from_mid_sweep_crashes() {
        let (m, p, cfg) = lsmc_ft_case();
        for mode in [CheckpointMode::Sync, CheckpointMode::AsyncIncremental] {
            let clean = price_lsmc_cluster_ft(
                &m,
                &p,
                cfg,
                4,
                Machine::cluster2002(),
                mdp_cluster::FaultPlan::new(7),
                3,
                mode,
            )
            .unwrap();
            assert!(clean.crashed.is_empty());
            for crash_at in [1usize, 4, 8] {
                let plan = mdp_cluster::FaultPlan::new(13).with_crash(2, crash_at);
                let ft = price_lsmc_cluster_ft(
                    &m,
                    &p,
                    cfg,
                    4,
                    Machine::cluster2002(),
                    plan,
                    3,
                    mode,
                )
                .unwrap();
                assert_eq!(
                    ft.result.price.to_bits(),
                    clean.result.price.to_bits(),
                    "crash at date boundary {crash_at} ({mode:?})"
                );
                assert_eq!(ft.result.paths, clean.result.paths);
                assert_eq!(ft.crashed, vec![(2, crash_at)]);
            }
        }
    }

    #[test]
    fn lsmc_ft_async_checkpoints_cost_less_than_sync() {
        let (m, p, cfg) = lsmc_ft_case();
        let run = |mode| {
            price_lsmc_cluster_ft(
                &m,
                &p,
                cfg,
                4,
                Machine::cluster2002(),
                mdp_cluster::FaultPlan::new(3),
                2,
                mode,
            )
            .unwrap()
        };
        let sync = run(CheckpointMode::Sync);
        let async_inc = run(CheckpointMode::AsyncIncremental);
        // Same estimate either way — the mode moves cost, never data.
        assert_eq!(
            sync.result.price.to_bits(),
            async_inc.result.price.to_bits()
        );
        assert!(
            async_inc.time.total_ckpt_time < sync.time.total_ckpt_time,
            "async {} should undercut sync {}",
            async_inc.time.total_ckpt_time,
            sync.time.total_ckpt_time
        );
    }

    #[test]
    fn lsmc_ft_rejects_european_products() {
        let (m, _, cfg) = lsmc_ft_case();
        let eu = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        assert!(price_lsmc_cluster_ft(
            &m,
            &eu,
            cfg,
            2,
            Machine::ideal(),
            mdp_cluster::FaultPlan::new(1),
            2,
            CheckpointMode::Sync,
        )
        .is_err());
    }

    #[test]
    fn accum_width_matches() {
        // The allreduce payload and the accumulator must stay in sync.
        assert_eq!(BlockAccum::new().to_vec().len(), ACCUM_WIDTH);
    }

    #[test]
    fn errors_propagate() {
        let (m, _) = basket3();
        let am = Product::american(Payoff::MaxCall { strike: 100.0 }, 1.0);
        assert!(price_mc_cluster(&m, &am, McConfig::default(), 2, Machine::ideal()).is_err());
        let eu = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        assert!(price_lsmc_cluster(&m, &eu, LsmcConfig::default(), 2, Machine::ideal()).is_err());
    }
}
