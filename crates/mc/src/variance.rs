//! Mergeable accumulators for plain and control-variate estimation.
//!
//! Parallel drivers reduce accumulators, never samples. Everything here
//! merges by **element-wise addition**, so a distributed reduction is a
//! plain `allreduce_sum` over a fixed-width vector — exactly the
//! `MPI_Allreduce(MPI_SUM)` of the original codes.

/// Sums for an estimator with an optional control variate:
/// primary sample `y` (discounted payoff) and control `x` with known
/// mean. Without a control, the `x` fields stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockAccum {
    /// Sample count.
    pub n: f64,
    /// Σy.
    pub sum_y: f64,
    /// Σy².
    pub sum_yy: f64,
    /// Σx.
    pub sum_x: f64,
    /// Σx².
    pub sum_xx: f64,
    /// Σxy.
    pub sum_xy: f64,
}

/// Width of the flattened representation.
pub const ACCUM_WIDTH: usize = 6;

/// Blocks per merge chunk of the canonical reduction order (see
/// [`merge_in_chunks`]).
pub const MERGE_CHUNK: usize = 64;

/// Reduce per-block accumulators in the **canonical two-level order**:
/// left-fold each run of [`MERGE_CHUNK`] consecutive blocks, then
/// left-fold the chunk totals.
///
/// Floating-point addition is order-sensitive, so every driver —
/// sequential, rayon, message-passing — must associate the reduction the
/// same way to stay bitwise identical. Two levels (rather than one flat
/// fold) let the parallel drivers materialise only `⌈blocks/64⌉` chunk
/// accumulators instead of one per block.
pub fn merge_in_chunks<I: IntoIterator<Item = BlockAccum>>(accs: I) -> BlockAccum {
    let mut total = BlockAccum::new();
    let mut chunk = BlockAccum::new();
    let mut in_chunk = 0usize;
    for a in accs {
        chunk.merge(&a);
        in_chunk += 1;
        if in_chunk == MERGE_CHUNK {
            total.merge(&chunk);
            chunk = BlockAccum::new();
            in_chunk = 0;
        }
    }
    if in_chunk > 0 {
        total.merge(&chunk);
    }
    total
}

/// Fallible variant of [`merge_in_chunks`]: identical two-level fold
/// over the `Ok` payloads, short-circuiting on the first `Err`.
///
/// Because [`BlockAccum::merge`] is element-wise addition starting from
/// all-zero accumulators, a run in which every item is `Ok` produces a
/// result bitwise identical to `merge_in_chunks` over the same blocks —
/// cancellable drivers can therefore share the canonical reduction
/// order with the infallible ones.
pub fn try_merge_in_chunks<E, I>(accs: I) -> Result<BlockAccum, E>
where
    I: IntoIterator<Item = Result<BlockAccum, E>>,
{
    let mut total = BlockAccum::new();
    let mut chunk = BlockAccum::new();
    let mut in_chunk = 0usize;
    for a in accs {
        chunk.merge(&a?);
        in_chunk += 1;
        if in_chunk == MERGE_CHUNK {
            total.merge(&chunk);
            chunk = BlockAccum::new();
            in_chunk = 0;
        }
    }
    if in_chunk > 0 {
        total.merge(&chunk);
    }
    Ok(total)
}

impl BlockAccum {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a primary-only sample.
    #[inline]
    pub fn push(&mut self, y: f64) {
        self.n += 1.0;
        self.sum_y += y;
        self.sum_yy += y * y;
    }

    /// Add a (primary, control) pair.
    #[inline]
    pub fn push_cv(&mut self, y: f64, x: f64) {
        self.push(y);
        self.sum_x += x;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }

    /// Merge by summation (exact).
    pub fn merge(&mut self, o: &BlockAccum) {
        self.n += o.n;
        self.sum_y += o.sum_y;
        self.sum_yy += o.sum_yy;
        self.sum_x += o.sum_x;
        self.sum_xx += o.sum_xx;
        self.sum_xy += o.sum_xy;
    }

    /// Flatten for message passing.
    pub fn to_vec(&self) -> [f64; ACCUM_WIDTH] {
        [
            self.n,
            self.sum_y,
            self.sum_yy,
            self.sum_x,
            self.sum_xx,
            self.sum_xy,
        ]
    }

    /// Rebuild from the flattened representation.
    pub fn from_slice(v: &[f64]) -> Self {
        assert_eq!(v.len(), ACCUM_WIDTH);
        BlockAccum {
            n: v[0],
            sum_y: v[1],
            sum_yy: v[2],
            sum_x: v[3],
            sum_xx: v[4],
            sum_xy: v[5],
        }
    }

    /// Plain estimate: `(mean, standard error)` of `y`.
    pub fn plain_estimate(&self) -> (f64, f64) {
        if self.n < 1.0 {
            return (0.0, 0.0);
        }
        let mean = self.sum_y / self.n;
        if self.n < 2.0 {
            return (mean, 0.0);
        }
        let var = (self.sum_yy - self.n * mean * mean) / (self.n - 1.0);
        (mean, (var.max(0.0) / self.n).sqrt())
    }

    /// Control-variate estimate given the exact control mean `mu_x`:
    /// `mean_y − β(mean_x − μx)` with `β = Cov(y,x)/Var(x)` estimated
    /// from the same sample, and the asymptotic standard error
    /// `√((var_y − cov²/var_x)/n)`.
    pub fn cv_estimate(&self, mu_x: f64) -> (f64, f64) {
        if self.n < 2.0 {
            return self.plain_estimate();
        }
        let n = self.n;
        let mean_y = self.sum_y / n;
        let mean_x = self.sum_x / n;
        let var_y = (self.sum_yy - n * mean_y * mean_y) / (n - 1.0);
        let var_x = (self.sum_xx - n * mean_x * mean_x) / (n - 1.0);
        let cov = (self.sum_xy - n * mean_x * mean_y) / (n - 1.0);
        if var_x <= 0.0 {
            return self.plain_estimate();
        }
        let beta = cov / var_x;
        let est = mean_y - beta * (mean_x - mu_x);
        let resid_var = (var_y - cov * cov / var_x).max(0.0);
        (est, (resid_var / n).sqrt())
    }

    /// Variance-reduction factor achieved by the control
    /// (`Var_plain / Var_cv`; ≥ 1 when the control helps).
    pub fn cv_variance_ratio(&self) -> f64 {
        if self.n < 2.0 {
            return 1.0;
        }
        let n = self.n;
        let mean_y = self.sum_y / n;
        let mean_x = self.sum_x / n;
        let var_y = (self.sum_yy - n * mean_y * mean_y) / (n - 1.0);
        let var_x = (self.sum_xx - n * mean_x * mean_x) / (n - 1.0);
        let cov = (self.sum_xy - n * mean_x * mean_y) / (n - 1.0);
        if var_x <= 0.0 || var_y <= 0.0 {
            return 1.0;
        }
        let rho2 = (cov * cov) / (var_x * var_y);
        1.0 / (1.0 - rho2.min(0.999_999))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_math::approx_eq;

    #[test]
    fn plain_estimate_matches_hand_calc() {
        let mut a = BlockAccum::new();
        for y in [1.0, 2.0, 3.0, 4.0] {
            a.push(y);
        }
        let (m, se) = a.plain_estimate();
        assert!(approx_eq(m, 2.5, 1e-15));
        // var = 5/3; se = sqrt(5/12).
        assert!(approx_eq(se, (5.0f64 / 12.0).sqrt(), 1e-12));
    }

    #[test]
    fn merge_is_concatenation() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut whole = BlockAccum::new();
        for &y in &data {
            whole.push_cv(y, y * y);
        }
        let mut a = BlockAccum::new();
        let mut b = BlockAccum::new();
        for &y in &data[..20] {
            a.push_cv(y, y * y);
        }
        for &y in &data[20..] {
            b.push_cv(y, y * y);
        }
        a.merge(&b);
        assert!(approx_eq(a.sum_xy, whole.sum_xy, 1e-12));
        assert_eq!(a.n, whole.n);
    }

    #[test]
    fn chunked_merge_matches_explicit_two_level_fold() {
        let blocks: Vec<BlockAccum> = (0..200)
            .map(|i| {
                let mut a = BlockAccum::new();
                a.push_cv((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos());
                a
            })
            .collect();
        let got = merge_in_chunks(blocks.iter().copied());
        let mut want = BlockAccum::new();
        for group in blocks.chunks(MERGE_CHUNK) {
            let mut chunk = BlockAccum::new();
            for a in group {
                chunk.merge(a);
            }
            want.merge(&chunk);
        }
        assert_eq!(got.sum_y.to_bits(), want.sum_y.to_bits());
        assert_eq!(got.sum_xy.to_bits(), want.sum_xy.to_bits());
        assert_eq!(got.n, want.n);
    }

    #[test]
    fn try_merge_matches_infallible_merge_bitwise() {
        let blocks: Vec<BlockAccum> = (0..200)
            .map(|i| {
                let mut a = BlockAccum::new();
                a.push_cv((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos());
                a
            })
            .collect();
        let want = merge_in_chunks(blocks.iter().copied());
        let got: Result<BlockAccum, ()> = try_merge_in_chunks(blocks.iter().copied().map(Ok));
        let got = got.unwrap();
        assert_eq!(got.sum_y.to_bits(), want.sum_y.to_bits());
        assert_eq!(got.sum_yy.to_bits(), want.sum_yy.to_bits());
        assert_eq!(got.sum_xy.to_bits(), want.sum_xy.to_bits());
        assert_eq!(got.n, want.n);
    }

    #[test]
    fn try_merge_short_circuits_on_error() {
        let items = (0..10).map(|i| {
            if i == 3 {
                Err("stop")
            } else {
                let mut a = BlockAccum::new();
                a.push(i as f64);
                Ok(a)
            }
        });
        assert_eq!(try_merge_in_chunks(items), Err("stop"));
    }

    #[test]
    fn roundtrip_flattening() {
        let mut a = BlockAccum::new();
        a.push_cv(1.5, 2.5);
        a.push_cv(-0.5, 0.5);
        let b = BlockAccum::from_slice(&a.to_vec());
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_control_removes_all_variance() {
        // x == y with known mean ⇒ estimator is exact, SE → 0.
        let mut a = BlockAccum::new();
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let mu = data.iter().sum::<f64>() / 6.0;
        for &y in &data {
            a.push_cv(y, y);
        }
        let (est, se) = a.cv_estimate(mu);
        assert!(approx_eq(est, mu, 1e-12));
        assert!(se < 1e-9, "{se}");
        assert!(a.cv_variance_ratio() > 1e5);
    }

    #[test]
    fn uncorrelated_control_is_harmless() {
        let mut a = BlockAccum::new();
        // y alternates; x constant-ish uncorrelated pattern.
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let xs = [1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        for (y, x) in ys.iter().zip(&xs) {
            a.push_cv(*y, *x);
        }
        let (p_est, p_se) = a.plain_estimate();
        let (c_est, c_se) = a.cv_estimate(0.0);
        assert!(approx_eq(p_est, c_est, 1e-12));
        assert!((c_se - p_se).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_sample_safe() {
        let a = BlockAccum::new();
        assert_eq!(a.plain_estimate(), (0.0, 0.0));
        assert_eq!(a.cv_estimate(1.0), (0.0, 0.0));
        let mut b = BlockAccum::new();
        b.push(5.0);
        assert_eq!(b.plain_estimate(), (5.0, 0.0));
    }
}
