//! Correlated GBM path generation.
//!
//! Exact log-normal stepping — GBM has a closed transition density, so
//! there is no discretisation bias regardless of the number of
//! monitoring steps; steps exist only where the *payoff* needs them
//! (Asian averaging, American exercise dates).

use mdp_math::fastmath::exp64;
use mdp_math::rng::{NormalSampler, Rng64};
use mdp_model::GbmMarket;

/// Precomputed per-step constants for exact GBM stepping on a uniform
/// grid of `steps` intervals over `[0, maturity]`.
#[derive(Debug, Clone)]
pub struct GbmStepper {
    /// Number of assets.
    pub dim: usize,
    /// Number of time steps.
    pub steps: usize,
    /// Per-asset drift increment `(r − qᵢ − σᵢ²/2)Δt`.
    drift_dt: Vec<f64>,
    /// Per-asset diffusion scale `σᵢ√Δt`.
    vol_sqdt: Vec<f64>,
    /// Cholesky factor of the correlation matrix, packed row-major
    /// lower-triangular: row `i` occupies `chol[i(i+1)/2 .. i(i+1)/2+i+1]`.
    chol: Vec<f64>,
}

impl GbmStepper {
    /// Build a stepper for the market over `steps` uniform steps.
    pub fn new(market: &GbmMarket, maturity: f64, steps: usize) -> Self {
        assert!(steps > 0);
        let d = market.dim();
        let dt = maturity / steps as f64;
        let sqdt = dt.sqrt();
        let l = market.cholesky().l();
        let mut chol = Vec::with_capacity(d * (d + 1) / 2);
        for i in 0..d {
            chol.extend_from_slice(&l.row(i)[..=i]);
        }
        GbmStepper {
            dim: d,
            steps,
            drift_dt: (0..d).map(|i| market.log_drift(i) * dt).collect(),
            vol_sqdt: (0..d).map(|i| market.vols()[i] * sqdt).collect(),
            chol,
        }
    }

    /// Advance `log_spots` by one step using the i.i.d. normals `z`
    /// (length d). `z` is correlated internally — callers hand raw
    /// normals.
    #[inline]
    pub fn step(&self, log_spots: &mut [f64], z: &[f64]) {
        debug_assert_eq!(log_spots.len(), self.dim);
        debug_assert_eq!(z.len(), self.dim);
        let mut off = 0;
        for (i, ls) in log_spots.iter_mut().enumerate() {
            // (L·z)ᵢ inline: only the first i+1 entries contribute.
            let mut w = 0.0;
            for (l, zk) in self.chol[off..off + i + 1].iter().zip(z) {
                w += l * zk;
            }
            off += i + 1;
            *ls += self.drift_dt[i] + self.vol_sqdt[i] * w;
        }
    }

    /// Advance a whole panel's active lanes by one step: the blocked
    /// triangular multiply `L·Z` plus the drift/diffusion update, row by
    /// row over the packed Cholesky buffer.
    ///
    /// Per lane this performs the **same f64 operations in the same
    /// order** as [`GbmStepper::step`]: the correlate accumulates
    /// `w += Lᵢₖ·zₖ` for `k` ascending from 0.0, then
    /// `log += drift_dt + vol_sqdt·w` — which is what makes the batched
    /// kernel bitwise-identical to the scalar one while the inner loops
    /// run over contiguous lanes and autovectorize.
    pub fn step_panel(&self, panel: &mut SoaPanel, step: usize, n: usize) {
        let d = self.dim;
        let lanes = panel.lanes;
        debug_assert_eq!(panel.dim, d);
        debug_assert!(step < self.steps && n <= lanes);
        let zbase = step * d * lanes;
        let mut off = 0;
        for i in 0..d {
            let w = &mut panel.w[..n];
            w.fill(0.0);
            for (k, &l) in self.chol[off..off + i + 1].iter().enumerate() {
                let zrow = &panel.z[zbase + k * lanes..zbase + k * lanes + n];
                for (wl, &zv) in w.iter_mut().zip(zrow) {
                    *wl += l * zv;
                }
            }
            off += i + 1;
            let (dd, vs) = (self.drift_dt[i], self.vol_sqdt[i]);
            let lrow = &mut panel.log[i * lanes..i * lanes + n];
            for (ll, &wl) in lrow.iter_mut().zip(panel.w[..n].iter()) {
                *ll += dd + vs * wl;
            }
        }
    }

    /// Number of normals one full path consumes.
    pub fn normals_per_path(&self) -> usize {
        self.dim * self.steps
    }

    /// Recompute the drift/diffusion scalars for a ticked market,
    /// leaving the packed Cholesky factor untouched.
    ///
    /// Evaluates exactly the expressions of [`GbmStepper::new`]
    /// (`drift_dt[i] = log_drift(i)·Δt`, `vol_sqdt[i] = σᵢ·√Δt`), so a
    /// retuned stepper is bitwise-identical to one built from scratch
    /// for the same market — the invariant `McPlan::apply_tick` relies
    /// on for spot/vol/rate ticks.
    pub fn retune(&mut self, market: &GbmMarket, maturity: f64) {
        debug_assert_eq!(market.dim(), self.dim);
        let dt = maturity / self.steps as f64;
        let sqdt = dt.sqrt();
        self.drift_dt = (0..self.dim).map(|i| market.log_drift(i) * dt).collect();
        self.vol_sqdt = (0..self.dim)
            .map(|i| market.vols()[i] * sqdt)
            .collect();
    }

    /// Repack the Cholesky factor from the (re-factored) market after a
    /// correlation tick, using the same row-major lower-triangular
    /// packing as [`GbmStepper::new`]. Drift/diffusion scalars are
    /// untouched.
    pub fn repack_cholesky(&mut self, market: &GbmMarket) {
        debug_assert_eq!(market.dim(), self.dim);
        let l = market.cholesky().l();
        self.chol.clear();
        for i in 0..self.dim {
            self.chol.extend_from_slice(&l.row(i)[..=i]);
        }
    }

    /// Whether two steppers share a bitwise-identical Cholesky factor.
    ///
    /// The scenario-cube kernel shares one correlate pass across all
    /// scenarios; that is only sound when every scenario's `L` matches
    /// the base plan's bit for bit.
    pub fn chol_matches(&self, other: &GbmStepper) -> bool {
        self.chol.len() == other.chol.len()
            && self
                .chol
                .iter()
                .zip(&other.chol)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Replace the panel's normal rows with correlated increments
    /// `w = L·z`, step by step, staging each step's `dim` output rows in
    /// `tmp` (resized to `dim × lanes` here) before copying them back.
    ///
    /// Row `(step, i)` afterwards holds, bit for bit, the `w` values
    /// [`GbmStepper::step_panel`] would compute for that row: the
    /// accumulation starts from `0.0` and adds `Lᵢₖ·zₖ` for `k`
    /// ascending, exactly as the fused kernel does. Pairing this with
    /// [`GbmStepper::walk_correlated_terminal`] therefore reproduces
    /// [`crate::panel::walk_panel_terminal`] exactly while paying the
    /// triangular multiply once for any number of scenario walks.
    pub fn correlate_panel_in_place(&self, panel: &mut SoaPanel, n: usize, tmp: &mut Vec<f64>) {
        let d = self.dim;
        let lanes = panel.lanes;
        debug_assert_eq!(panel.dim, d);
        debug_assert!(n <= lanes);
        tmp.clear();
        tmp.resize(d * lanes, 0.0);
        for step in 0..self.steps {
            let zbase = step * d * lanes;
            let mut off = 0;
            for i in 0..d {
                let w = &mut tmp[i * lanes..i * lanes + n];
                w.fill(0.0);
                for (k, &l) in self.chol[off..off + i + 1].iter().enumerate() {
                    let zrow = &panel.z[zbase + k * lanes..zbase + k * lanes + n];
                    for (wl, &zv) in w.iter_mut().zip(zrow) {
                        *wl += l * zv;
                    }
                }
                off += i + 1;
            }
            for i in 0..d {
                panel.z[zbase + i * lanes..zbase + i * lanes + n]
                    .copy_from_slice(&tmp[i * lanes..i * lanes + n]);
            }
        }
    }

    /// Walk a panel whose normal rows were pre-correlated by
    /// [`GbmStepper::correlate_panel_in_place`] to maturity and
    /// exponentiate, using this stepper's drift/diffusion scalars.
    ///
    /// Per lane the update is `log += drift_dt[i] + vol_sqdt[i]·w` —
    /// the same final expression, in the same order, as
    /// [`GbmStepper::step_panel`] — so the terminal spots are bitwise
    /// those of [`crate::panel::walk_panel_terminal`] over the original
    /// normals with this stepper.
    pub fn walk_correlated_terminal(&self, log0: &[f64], panel: &mut SoaPanel, n: usize) {
        let d = self.dim;
        let lanes = panel.lanes;
        debug_assert_eq!(panel.dim, d);
        debug_assert!(n <= lanes);
        panel.reset_logs(log0, n);
        for step in 0..self.steps {
            let zbase = step * d * lanes;
            for i in 0..d {
                let (dd, vs) = (self.drift_dt[i], self.vol_sqdt[i]);
                let wrow = &panel.z[zbase + i * lanes..zbase + i * lanes + n];
                let lrow = &mut panel.log[i * lanes..i * lanes + n];
                for (ll, &wl) in lrow.iter_mut().zip(wrow) {
                    *ll += dd + vs * wl;
                }
            }
        }
        panel.exp_all(n);
    }
}

/// Lanes per panel of the batched structure-of-arrays kernel: paths are
/// processed `PANEL` at a time, one path per lane.
pub const PANEL: usize = 64;

/// Structure-of-arrays buffers for one panel of paths.
///
/// Layouts (all rows `lanes` wide, lane = path within the panel):
///
/// * `z` — normals, row `step·dim + asset`;
/// * `log` / `spot` — current log-spots and spots, row = asset.
///
/// Normals are written **path-major** (column `p` filled completely
/// before column `p+1`) so the panel consumes the RNG's variate stream
/// in exactly the per-path order of the scalar kernel.
#[derive(Debug, Clone)]
pub struct SoaPanel {
    dim: usize,
    steps: usize,
    lanes: usize,
    z: Vec<f64>,
    log: Vec<f64>,
    spot: Vec<f64>,
    /// Correlate scratch, one slot per lane.
    w: Vec<f64>,
}

impl SoaPanel {
    /// Panel buffers sized for `stepper` with `lanes` paths per panel.
    pub fn new(stepper: &GbmStepper, lanes: usize) -> Self {
        assert!(lanes > 0);
        let (d, steps) = (stepper.dim, stepper.steps);
        SoaPanel {
            dim: d,
            steps,
            lanes,
            z: vec![0.0; d * steps * lanes],
            log: vec![0.0; d * lanes],
            spot: vec![0.0; d * lanes],
            w: vec![0.0; lanes],
        }
    }

    /// Lanes per panel.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Fill lane `lane`'s normals (one whole path) from the sampler.
    pub fn fill_lane<R: Rng64, S: NormalSampler>(
        &mut self,
        sampler: &mut S,
        rng: &mut R,
        lane: usize,
    ) {
        let count = self.dim * self.steps;
        sampler.fill_strided(rng, &mut self.z, lane, self.lanes, count);
    }

    /// Fill the first `n` lanes path-major — the identical draw order to
    /// `n` consecutive scalar `fill` calls.
    ///
    /// Draws the whole panel's variates with **one** bulk
    /// [`NormalSampler::fill_transposed`] call (lane 0's path first, then
    /// lane 1's — the same global sequence as per-lane fills, so
    /// bitwise-neutral) which scatters each draw straight into its
    /// step-major `z` slot. The single bulk call lets samplers with a
    /// vectorized batch path (the polar method's three-phase fill)
    /// amortise their transform over `n·dim·steps` draws instead of
    /// `dim·steps`, with no staging pass.
    pub fn fill_normals<R: Rng64, S: NormalSampler>(
        &mut self,
        sampler: &mut S,
        rng: &mut R,
        n: usize,
    ) {
        let rows = self.dim * self.steps;
        sampler.fill_transposed(rng, &mut self.z, self.lanes, n, rows);
    }

    /// Copy a pre-drawn normal vector (layout `step·dim + asset`, as in
    /// [`walk_path_with_normals`]) into lane `lane` — the QMC entry point.
    pub fn set_lane_normals(&mut self, lane: usize, normals: &[f64]) {
        debug_assert_eq!(normals.len(), self.dim * self.steps);
        for (k, &v) in normals.iter().enumerate() {
            self.z[k * self.lanes + lane] = v;
        }
    }

    /// Overwrite a single normal slot (`k` = flat index `step·dim + asset`).
    pub fn set_normal(&mut self, k: usize, lane: usize, v: f64) {
        self.z[k * self.lanes + lane] = v;
    }

    /// Negate every normal of the first `n` lanes (antithetic re-walk).
    pub fn negate_normals(&mut self, n: usize) {
        let lanes = self.lanes;
        for row in self.z.chunks_exact_mut(lanes) {
            for zv in &mut row[..n] {
                *zv = -*zv;
            }
        }
    }

    /// Reset the log-spot rows to the initial log-spots.
    pub fn reset_logs(&mut self, log0: &[f64], n: usize) {
        debug_assert_eq!(log0.len(), self.dim);
        for (i, &l0) in log0.iter().enumerate() {
            self.log[i * self.lanes..i * self.lanes + n].fill(l0);
        }
    }

    /// Exponentiate asset `i`'s log row into its spot row.
    pub fn exp_row(&mut self, i: usize, n: usize) {
        let base = i * self.lanes;
        for (s, &l) in self.spot[base..base + n]
            .iter_mut()
            .zip(self.log[base..base + n].iter())
        {
            *s = exp64(l);
        }
    }

    /// Exponentiate all log rows into the spot rows.
    pub fn exp_all(&mut self, n: usize) {
        for i in 0..self.dim {
            self.exp_row(i, n);
        }
    }

    /// Asset `i`'s spot row (valid after the matching `exp_row`/`exp_all`).
    pub fn spot_row(&self, i: usize) -> &[f64] {
        &self.spot[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Gather lane `lane`'s spot vector into `out` (length dim).
    pub fn gather_spots(&self, lane: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dim);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.spot[i * self.lanes + lane];
        }
    }
}

/// Walk a panel's active lanes through all steps, handing the panel to
/// `visit` after each step's log-spot update.
///
/// The visitor decides which spot rows it needs exponentiated
/// ([`SoaPanel::exp_row`]/[`SoaPanel::exp_all`]) — terminal-only payoffs
/// skip the intermediate `exp`s entirely, which changes no result: the
/// log-spots are untouched and `exp` of the same input is deterministic.
pub fn walk_panel<F: FnMut(usize, &mut SoaPanel)>(
    stepper: &GbmStepper,
    log0: &[f64],
    panel: &mut SoaPanel,
    n: usize,
    mut visit: F,
) {
    panel.reset_logs(log0, n);
    for step in 0..stepper.steps {
        stepper.step_panel(panel, step, n);
        visit(step, panel);
    }
}

/// Simulate one path and hand each step's spot vector to `visit`.
///
/// `log0` are the initial log-spots; `z_buf`/`spot_buf` are caller
/// scratch of length d. The sampler draws `dim·steps` normals.
#[allow(clippy::too_many_arguments)]
pub fn walk_path<R: Rng64, S: NormalSampler, F: FnMut(usize, &[f64])>(
    stepper: &GbmStepper,
    log0: &[f64],
    rng: &mut R,
    sampler: &mut S,
    z_buf: &mut [f64],
    log_buf: &mut [f64],
    spot_buf: &mut [f64],
    mut visit: F,
) {
    log_buf.copy_from_slice(log0);
    for step in 0..stepper.steps {
        sampler.fill(rng, z_buf);
        stepper.step(log_buf, z_buf);
        for (s, l) in spot_buf.iter_mut().zip(log_buf.iter()) {
            *s = exp64(*l);
        }
        visit(step, spot_buf);
    }
}

/// Same as [`walk_path`] but driven by a pre-drawn normal vector of
/// length `dim·steps` — the QMC entry point (each Sobol' coordinate maps
/// to a fixed (step, asset) slot).
pub fn walk_path_with_normals<F: FnMut(usize, &[f64])>(
    stepper: &GbmStepper,
    log0: &[f64],
    normals: &[f64],
    log_buf: &mut [f64],
    spot_buf: &mut [f64],
    mut visit: F,
) {
    debug_assert_eq!(normals.len(), stepper.normals_per_path());
    log_buf.copy_from_slice(log0);
    for step in 0..stepper.steps {
        let z = &normals[step * stepper.dim..(step + 1) * stepper.dim];
        stepper.step(log_buf, z);
        for (s, l) in spot_buf.iter_mut().zip(log_buf.iter()) {
            *s = exp64(*l);
        }
        visit(step, spot_buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_math::rng::{NormalPolar, Xoshiro256StarStar};
    use mdp_math::stats::OnlineStats;

    fn market2(rho: f64) -> GbmMarket {
        GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, rho).unwrap()
    }

    #[test]
    fn terminal_distribution_moments() {
        // E[S(T)] = S e^{rT}; Var(ln S(T)) = σ²T.
        let m = market2(0.5);
        let stepper = GbmStepper::new(&m, 1.0, 4);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        let mut rng = Xoshiro256StarStar::seed_from(42);
        let mut ns = NormalPolar::new();
        let mut z = [0.0; 2];
        let mut lb = [0.0; 2];
        let mut sb = [0.0; 2];
        let mut term = OnlineStats::new();
        let mut log_term = OnlineStats::new();
        let n = 100_000;
        for _ in 0..n {
            let mut last = [0.0; 2];
            walk_path(
                &stepper,
                &log0,
                &mut rng,
                &mut ns,
                &mut z,
                &mut lb,
                &mut sb,
                |step, s| {
                    if step == 3 {
                        last.copy_from_slice(s);
                    }
                },
            );
            term.push(last[0]);
            log_term.push(last[0].ln());
        }
        let fwd = 100.0 * (0.05f64).exp();
        assert!(
            (term.mean() - fwd).abs() < 3.0 * term.std_error(),
            "mean {} vs {fwd}",
            term.mean()
        );
        assert!(
            (log_term.variance() - 0.04).abs() < 0.002,
            "{}",
            log_term.variance()
        );
    }

    #[test]
    fn correlation_is_respected() {
        let rho = 0.7;
        let m = market2(rho);
        let stepper = GbmStepper::new(&m, 1.0, 1);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        let mut rng = Xoshiro256StarStar::seed_from(7);
        let mut ns = NormalPolar::new();
        let (mut z, mut lb, mut sb) = ([0.0; 2], [0.0; 2], [0.0; 2]);
        let n = 200_000;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let mut r = [0.0; 2];
            walk_path(
                &stepper,
                &log0,
                &mut rng,
                &mut ns,
                &mut z,
                &mut lb,
                &mut sb,
                |_, s| {
                    r = [s[0].ln() - log0[0], s[1].ln() - log0[1]];
                },
            );
            // Centre by the known drift to estimate correlation.
            let mu = 0.05 - 0.02;
            let (x, y) = (r[0] - mu, r[1] - mu);
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let corr = sxy / (sxx.sqrt() * syy.sqrt());
        assert!((corr - rho).abs() < 0.01, "{corr}");
    }

    #[test]
    fn multi_step_equals_single_step_in_distribution() {
        // Exact stepping: terminal log-variance is σ²T for any step count.
        let m = market2(0.3);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        for steps in [1usize, 5, 20] {
            let stepper = GbmStepper::new(&m, 1.0, steps);
            let mut rng = Xoshiro256StarStar::seed_from(9);
            let mut ns = NormalPolar::new();
            let (mut z, mut lb, mut sb) = ([0.0; 2], [0.0; 2], [0.0; 2]);
            let mut stats = OnlineStats::new();
            for _ in 0..50_000 {
                let mut last = 0.0;
                walk_path(
                    &stepper,
                    &log0,
                    &mut rng,
                    &mut ns,
                    &mut z,
                    &mut lb,
                    &mut sb,
                    |s, v| {
                        if s == steps - 1 {
                            last = v[0].ln();
                        }
                    },
                );
                stats.push(last);
            }
            assert!(
                (stats.variance() - 0.04).abs() < 0.003,
                "steps={steps}: {}",
                stats.variance()
            );
        }
    }

    #[test]
    fn with_normals_matches_direct_stepping() {
        let m = market2(0.5);
        let stepper = GbmStepper::new(&m, 2.0, 3);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        let normals = [0.3, -0.5, 1.0, 0.1, -1.2, 0.8];
        let (mut lb, mut sb) = ([0.0; 2], [0.0; 2]);
        let mut path_a = Vec::new();
        walk_path_with_normals(&stepper, &log0, &normals, &mut lb, &mut sb, |_, s| {
            path_a.extend_from_slice(s)
        });
        // Manual re-computation.
        let mut lb2 = log0.clone();
        let mut path_b = Vec::new();
        for step in 0..3 {
            stepper.step(&mut lb2, &normals[step * 2..step * 2 + 2]);
            path_b.extend(lb2.iter().map(|l| exp64(*l)));
        }
        assert_eq!(path_a, path_b);
    }

    #[test]
    fn normals_per_path_accounting() {
        let m = market2(0.0);
        assert_eq!(GbmStepper::new(&m, 1.0, 7).normals_per_path(), 14);
    }

    #[test]
    fn panel_walk_is_bitwise_equal_to_scalar_walk() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.05, 0.4).unwrap();
        let stepper = GbmStepper::new(&m, 1.5, 4);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        let npath = stepper.normals_per_path();
        let n = 7; // deliberately a remainder panel (n < lanes)

        // Scalar reference: per-path contiguous fill + walk.
        let mut rng = Xoshiro256StarStar::seed_from(123);
        let mut sampler = NormalPolar::new();
        let mut normals = vec![0.0; npath];
        let (mut lb, mut sb) = (vec![0.0; 3], vec![0.0; 3]);
        let mut scalar_paths: Vec<Vec<f64>> = Vec::new();
        for _ in 0..n {
            sampler.fill(&mut rng, &mut normals);
            let mut trace = Vec::new();
            walk_path_with_normals(&stepper, &log0, &normals, &mut lb, &mut sb, |_, s| {
                trace.extend_from_slice(s)
            });
            scalar_paths.push(trace);
        }

        // Panel: path-major strided fill, panel stepping, per-step exp.
        let mut rng2 = Xoshiro256StarStar::seed_from(123);
        let mut sampler2 = NormalPolar::new();
        let mut panel = SoaPanel::new(&stepper, PANEL);
        panel.fill_normals(&mut sampler2, &mut rng2, n);
        let mut panel_paths: Vec<Vec<f64>> = vec![Vec::new(); n];
        walk_panel(&stepper, &log0, &mut panel, n, |_, p| {
            p.exp_all(n);
            let mut out = vec![0.0; 3];
            for (lane, trace) in panel_paths.iter_mut().enumerate() {
                p.gather_spots(lane, &mut out);
                trace.extend_from_slice(&out);
            }
        });

        for (lane, (a, b)) in scalar_paths.iter().zip(&panel_paths).enumerate() {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "lane {lane}");
            }
        }
    }

    #[test]
    fn panel_negate_matches_negated_scalar_normals() {
        let m = market2(0.6);
        let stepper = GbmStepper::new(&m, 1.0, 3);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        let normals = [0.3, -0.5, 1.0, 0.1, -1.2, 0.8];
        let neg: Vec<f64> = normals.iter().map(|z| -z).collect();
        let (mut lb, mut sb) = ([0.0; 2], [0.0; 2]);
        let mut want = Vec::new();
        walk_path_with_normals(&stepper, &log0, &neg, &mut lb, &mut sb, |_, s| {
            want.extend_from_slice(s)
        });

        let mut panel = SoaPanel::new(&stepper, PANEL);
        panel.set_lane_normals(0, &normals);
        panel.negate_normals(1);
        let mut got = Vec::new();
        let mut out = vec![0.0; 2];
        walk_panel(&stepper, &log0, &mut panel, 1, |_, p| {
            p.exp_all(1);
            p.gather_spots(0, &mut out);
            got.extend_from_slice(&out);
        });
        assert_eq!(want.len(), got.len());
        for (x, y) in want.iter().zip(&got) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
