//! Correlated GBM path generation.
//!
//! Exact log-normal stepping — GBM has a closed transition density, so
//! there is no discretisation bias regardless of the number of
//! monitoring steps; steps exist only where the *payoff* needs them
//! (Asian averaging, American exercise dates).

use mdp_math::rng::{NormalSampler, Rng64};
use mdp_model::GbmMarket;

/// Precomputed per-step constants for exact GBM stepping on a uniform
/// grid of `steps` intervals over `[0, maturity]`.
#[derive(Debug, Clone)]
pub struct GbmStepper {
    /// Number of assets.
    pub dim: usize,
    /// Number of time steps.
    pub steps: usize,
    /// Per-asset drift increment `(r − qᵢ − σᵢ²/2)Δt`.
    drift_dt: Vec<f64>,
    /// Per-asset diffusion scale `σᵢ√Δt`.
    vol_sqdt: Vec<f64>,
    /// Cholesky factor rows of the correlation matrix (owned copy).
    chol_rows: Vec<Vec<f64>>,
}

impl GbmStepper {
    /// Build a stepper for the market over `steps` uniform steps.
    pub fn new(market: &GbmMarket, maturity: f64, steps: usize) -> Self {
        assert!(steps > 0);
        let d = market.dim();
        let dt = maturity / steps as f64;
        let sqdt = dt.sqrt();
        let l = market.cholesky().l();
        let chol_rows = (0..d).map(|i| l.row(i)[..=i].to_vec()).collect();
        GbmStepper {
            dim: d,
            steps,
            drift_dt: (0..d).map(|i| market.log_drift(i) * dt).collect(),
            vol_sqdt: (0..d).map(|i| market.vols()[i] * sqdt).collect(),
            chol_rows,
        }
    }

    /// Advance `log_spots` by one step using the i.i.d. normals `z`
    /// (length d). `z` is correlated internally — callers hand raw
    /// normals.
    #[inline]
    pub fn step(&self, log_spots: &mut [f64], z: &[f64]) {
        debug_assert_eq!(log_spots.len(), self.dim);
        debug_assert_eq!(z.len(), self.dim);
        for (i, ls) in log_spots.iter_mut().enumerate() {
            // (L·z)ᵢ inline: only the first i+1 entries contribute.
            let mut w = 0.0;
            for (l, zk) in self.chol_rows[i].iter().zip(z) {
                w += l * zk;
            }
            *ls += self.drift_dt[i] + self.vol_sqdt[i] * w;
        }
    }

    /// Number of normals one full path consumes.
    pub fn normals_per_path(&self) -> usize {
        self.dim * self.steps
    }
}

/// Simulate one path and hand each step's spot vector to `visit`.
///
/// `log0` are the initial log-spots; `z_buf`/`spot_buf` are caller
/// scratch of length d. The sampler draws `dim·steps` normals.
#[allow(clippy::too_many_arguments)]
pub fn walk_path<R: Rng64, S: NormalSampler, F: FnMut(usize, &[f64])>(
    stepper: &GbmStepper,
    log0: &[f64],
    rng: &mut R,
    sampler: &mut S,
    z_buf: &mut [f64],
    log_buf: &mut [f64],
    spot_buf: &mut [f64],
    mut visit: F,
) {
    log_buf.copy_from_slice(log0);
    for step in 0..stepper.steps {
        sampler.fill(rng, z_buf);
        stepper.step(log_buf, z_buf);
        for (s, l) in spot_buf.iter_mut().zip(log_buf.iter()) {
            *s = l.exp();
        }
        visit(step, spot_buf);
    }
}

/// Same as [`walk_path`] but driven by a pre-drawn normal vector of
/// length `dim·steps` — the QMC entry point (each Sobol' coordinate maps
/// to a fixed (step, asset) slot).
pub fn walk_path_with_normals<F: FnMut(usize, &[f64])>(
    stepper: &GbmStepper,
    log0: &[f64],
    normals: &[f64],
    log_buf: &mut [f64],
    spot_buf: &mut [f64],
    mut visit: F,
) {
    debug_assert_eq!(normals.len(), stepper.normals_per_path());
    log_buf.copy_from_slice(log0);
    for step in 0..stepper.steps {
        let z = &normals[step * stepper.dim..(step + 1) * stepper.dim];
        stepper.step(log_buf, z);
        for (s, l) in spot_buf.iter_mut().zip(log_buf.iter()) {
            *s = l.exp();
        }
        visit(step, spot_buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_math::rng::{NormalPolar, Xoshiro256StarStar};
    use mdp_math::stats::OnlineStats;

    fn market2(rho: f64) -> GbmMarket {
        GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, rho).unwrap()
    }

    #[test]
    fn terminal_distribution_moments() {
        // E[S(T)] = S e^{rT}; Var(ln S(T)) = σ²T.
        let m = market2(0.5);
        let stepper = GbmStepper::new(&m, 1.0, 4);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        let mut rng = Xoshiro256StarStar::seed_from(42);
        let mut ns = NormalPolar::new();
        let mut z = [0.0; 2];
        let mut lb = [0.0; 2];
        let mut sb = [0.0; 2];
        let mut term = OnlineStats::new();
        let mut log_term = OnlineStats::new();
        let n = 100_000;
        for _ in 0..n {
            let mut last = [0.0; 2];
            walk_path(
                &stepper,
                &log0,
                &mut rng,
                &mut ns,
                &mut z,
                &mut lb,
                &mut sb,
                |step, s| {
                    if step == 3 {
                        last.copy_from_slice(s);
                    }
                },
            );
            term.push(last[0]);
            log_term.push(last[0].ln());
        }
        let fwd = 100.0 * (0.05f64).exp();
        assert!(
            (term.mean() - fwd).abs() < 3.0 * term.std_error(),
            "mean {} vs {fwd}",
            term.mean()
        );
        assert!(
            (log_term.variance() - 0.04).abs() < 0.002,
            "{}",
            log_term.variance()
        );
    }

    #[test]
    fn correlation_is_respected() {
        let rho = 0.7;
        let m = market2(rho);
        let stepper = GbmStepper::new(&m, 1.0, 1);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        let mut rng = Xoshiro256StarStar::seed_from(7);
        let mut ns = NormalPolar::new();
        let (mut z, mut lb, mut sb) = ([0.0; 2], [0.0; 2], [0.0; 2]);
        let n = 200_000;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let mut r = [0.0; 2];
            walk_path(
                &stepper,
                &log0,
                &mut rng,
                &mut ns,
                &mut z,
                &mut lb,
                &mut sb,
                |_, s| {
                    r = [s[0].ln() - log0[0], s[1].ln() - log0[1]];
                },
            );
            // Centre by the known drift to estimate correlation.
            let mu = 0.05 - 0.02;
            let (x, y) = (r[0] - mu, r[1] - mu);
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let corr = sxy / (sxx.sqrt() * syy.sqrt());
        assert!((corr - rho).abs() < 0.01, "{corr}");
    }

    #[test]
    fn multi_step_equals_single_step_in_distribution() {
        // Exact stepping: terminal log-variance is σ²T for any step count.
        let m = market2(0.3);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        for steps in [1usize, 5, 20] {
            let stepper = GbmStepper::new(&m, 1.0, steps);
            let mut rng = Xoshiro256StarStar::seed_from(9);
            let mut ns = NormalPolar::new();
            let (mut z, mut lb, mut sb) = ([0.0; 2], [0.0; 2], [0.0; 2]);
            let mut stats = OnlineStats::new();
            for _ in 0..50_000 {
                let mut last = 0.0;
                walk_path(
                    &stepper,
                    &log0,
                    &mut rng,
                    &mut ns,
                    &mut z,
                    &mut lb,
                    &mut sb,
                    |s, v| {
                        if s == steps - 1 {
                            last = v[0].ln();
                        }
                    },
                );
                stats.push(last);
            }
            assert!(
                (stats.variance() - 0.04).abs() < 0.003,
                "steps={steps}: {}",
                stats.variance()
            );
        }
    }

    #[test]
    fn with_normals_matches_direct_stepping() {
        let m = market2(0.5);
        let stepper = GbmStepper::new(&m, 2.0, 3);
        let log0: Vec<f64> = m.spots().iter().map(|s| s.ln()).collect();
        let normals = [0.3, -0.5, 1.0, 0.1, -1.2, 0.8];
        let (mut lb, mut sb) = ([0.0; 2], [0.0; 2]);
        let mut path_a = Vec::new();
        walk_path_with_normals(&stepper, &log0, &normals, &mut lb, &mut sb, |_, s| {
            path_a.extend_from_slice(s)
        });
        // Manual re-computation.
        let mut lb2 = log0.clone();
        let mut path_b = Vec::new();
        for step in 0..3 {
            stepper.step(&mut lb2, &normals[step * 2..step * 2 + 2]);
            path_b.extend(lb2.iter().map(|l| l.exp()));
        }
        assert_eq!(path_a, path_b);
    }

    #[test]
    fn normals_per_path_accounting() {
        let m = market2(0.0);
        assert_eq!(GbmStepper::new(&m, 1.0, 7).normals_per_path(), 14);
    }
}
