//! Pathwise (infinitesimal-perturbation) delta estimation.
//!
//! Under GBM the terminal price is pathwise linear in the initial spot,
//! `∂Sᵢ(T)/∂Sᵢ(0) = Sᵢ(T)/Sᵢ(0)`, so for Lipschitz payoffs the payoff
//! derivative can be moved inside the expectation and estimated on the
//! *same* paths as the price — one run gives price and all deltas with
//! MC noise far below bump-and-reprice. Discontinuous payoffs
//! (digitals) are rejected: their pathwise derivative misses the jump
//! term and would be silently biased.

use crate::path::{walk_panel, GbmStepper, SoaPanel, PANEL};
use crate::McConfig;
use crate::McError;
use mdp_math::rng::{NormalPolar, NormalSampler, Substreams, Xoshiro256StarStar};
use mdp_math::stats::OnlineStats;
use mdp_model::{ExerciseStyle, GbmMarket, Payoff, Product};

/// Price plus pathwise deltas.
#[derive(Debug, Clone)]
pub struct PathwiseResult {
    /// Price estimate.
    pub price: f64,
    /// Standard error of the price.
    pub price_se: f64,
    /// Per-asset pathwise delta.
    pub delta: Vec<f64>,
    /// Standard error of each delta component.
    pub delta_se: Vec<f64>,
    /// Paths used.
    pub paths: u64,
}

/// True when the payoff family supports the pathwise method
/// (almost-everywhere differentiable, no jumps).
pub fn supports_pathwise(payoff: &Payoff) -> bool {
    matches!(
        payoff,
        Payoff::BasketCall { .. }
            | Payoff::BasketPut { .. }
            | Payoff::GeometricCall { .. }
            | Payoff::GeometricPut { .. }
            | Payoff::MaxCall { .. }
            | Payoff::MinCall { .. }
            | Payoff::MaxPut { .. }
            | Payoff::MinPut { .. }
            | Payoff::Exchange
            | Payoff::SpreadCall { .. }
            | Payoff::AsianCall { .. }
            | Payoff::AsianPut { .. }
            | Payoff::LookbackCallFloating
            | Payoff::LookbackPutFloating
    )
}

/// Payoff value and gradient w.r.t. the *terminal* spot vector
/// (for Asians: w.r.t. the per-date spots folded through the average).
fn terminal_gradient(payoff: &Payoff, s: &[f64], grad: &mut [f64]) -> f64 {
    for g in grad.iter_mut() {
        *g = 0.0;
    }
    let d = s.len();
    match payoff {
        Payoff::BasketCall { weights, strike } => {
            let b: f64 = weights.iter().zip(s).map(|(w, x)| w * x).sum();
            if b > *strike {
                grad.copy_from_slice(weights);
            }
            (b - strike).max(0.0)
        }
        Payoff::BasketPut { weights, strike } => {
            let b: f64 = weights.iter().zip(s).map(|(w, x)| w * x).sum();
            if b < *strike {
                for (g, w) in grad.iter_mut().zip(weights) {
                    *g = -w;
                }
            }
            (strike - b).max(0.0)
        }
        Payoff::GeometricCall { strike } => {
            let g0 = (s.iter().map(|x| x.ln()).sum::<f64>() / d as f64).exp();
            if g0 > *strike {
                for (gi, &si) in grad.iter_mut().zip(s) {
                    *gi = g0 / (d as f64 * si);
                }
            }
            (g0 - strike).max(0.0)
        }
        Payoff::GeometricPut { strike } => {
            let g0 = (s.iter().map(|x| x.ln()).sum::<f64>() / d as f64).exp();
            if g0 < *strike {
                for (gi, &si) in grad.iter_mut().zip(s) {
                    *gi = -g0 / (d as f64 * si);
                }
            }
            (strike - g0).max(0.0)
        }
        Payoff::MaxCall { strike } => {
            let (arg, mx) = argmax(s);
            if mx > *strike {
                grad[arg] = 1.0;
            }
            (mx - strike).max(0.0)
        }
        Payoff::MinCall { strike } => {
            let (arg, mn) = argmin(s);
            if mn > *strike {
                grad[arg] = 1.0;
            }
            (mn - strike).max(0.0)
        }
        Payoff::MaxPut { strike } => {
            let (arg, mx) = argmax(s);
            if mx < *strike {
                grad[arg] = -1.0;
            }
            (strike - mx).max(0.0)
        }
        Payoff::MinPut { strike } => {
            let (arg, mn) = argmin(s);
            if mn < *strike {
                grad[arg] = -1.0;
            }
            (strike - mn).max(0.0)
        }
        Payoff::Exchange => {
            if s[0] > s[1] {
                grad[0] = 1.0;
                grad[1] = -1.0;
            }
            (s[0] - s[1]).max(0.0)
        }
        Payoff::SpreadCall { strike } => {
            if s[0] - s[1] > *strike {
                grad[0] = 1.0;
                grad[1] = -1.0;
            }
            (s[0] - s[1] - strike).max(0.0)
        }
        _ => unreachable!("gated by supports_pathwise"),
    }
}

fn argmax(s: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for i in 1..s.len() {
        if s[i] > s[best] {
            best = i;
        }
    }
    (best, s[best])
}

fn argmin(s: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for i in 1..s.len() {
        if s[i] < s[best] {
            best = i;
        }
    }
    (best, s[best])
}

/// Estimate price and pathwise deltas of a European product.
pub fn pathwise_delta(
    market: &GbmMarket,
    product: &Product,
    cfg: McConfig,
) -> Result<PathwiseResult, McError> {
    product.validate_for(market)?;
    if product.exercise != ExerciseStyle::European {
        return Err(McError::Unsupported(
            "pathwise deltas are European-only".into(),
        ));
    }
    if !supports_pathwise(&product.payoff) {
        return Err(McError::Unsupported(format!(
            "pathwise method invalid for discontinuous payoff {:?}",
            product.payoff
        )));
    }
    if cfg.paths == 0 {
        return Err(McError::ZeroPaths);
    }
    if cfg.steps == 0 {
        return Err(McError::ZeroSteps);
    }
    let d = market.dim();
    let stepper = GbmStepper::new(market, product.maturity, cfg.steps);
    let log0: Vec<f64> = market.spots().iter().map(|s| s.ln()).collect();
    let disc = market.discount(product.maturity);
    let payoff = &product.payoff;
    let path_dep = payoff.is_path_dependent();
    let spots0 = market.spots();

    let base = Xoshiro256StarStar::seed_from(cfg.seed);
    let mut sampler = NormalPolar::new();
    let mut grad = vec![0.0; d];
    let mut term = vec![0.0; d];
    let mut price_stats = OnlineStats::new();
    let mut delta_stats = vec![OnlineStats::new(); d];
    let s0_first = spots0[0];
    let lookback = matches!(
        payoff,
        Payoff::LookbackCallFloating | Payoff::LookbackPutFloating
    );

    // Paths ride the batched SoA kernel: fill a panel path-major (same
    // RNG draw order as the scalar per-path loop), walk all lanes
    // through the panel stepper, then run the per-lane gradient logic.
    // All per-lane state is hoisted out of the path loop — including the
    // old per-path `dvec` allocation.
    let mut panel = SoaPanel::new(&stepper, PANEL);
    let mut ys = vec![0.0; PANEL];
    let mut avg = vec![0.0; PANEL];
    let mut basket = vec![0.0; PANEL];
    let mut pmax = vec![0.0; PANEL];
    let mut pmin = vec![0.0; PANEL];
    // Row-major [asset][lane]: per-asset sums of Sᵢ(t)/S0ᵢ over dates,
    // and the per-lane pathwise delta vector.
    let mut asian_sum = vec![0.0; d * PANEL];
    let mut dvec = vec![0.0; d * PANEL];

    for b in 0..cfg.num_blocks() {
        let mut rng = base.substream(b);
        sampler.reset();
        let total = cfg.block_paths(b);
        let mut done = 0u64;
        while done < total {
            let n = (total - done).min(PANEL as u64) as usize;
            panel.fill_normals(&mut sampler, &mut rng, n);
            avg[..n].fill(0.0);
            asian_sum.fill(0.0);
            dvec.fill(0.0);
            pmax[..n].fill(s0_first);
            pmin[..n].fill(s0_first);
            walk_panel(&stepper, &log0, &mut panel, n, |_, p| {
                if lookback {
                    p.exp_row(0, n);
                    let row = &p.spot_row(0)[..n];
                    for (mx, &s) in pmax[..n].iter_mut().zip(row) {
                        *mx = mx.max(s);
                    }
                    for (mn, &s) in pmin[..n].iter_mut().zip(row) {
                        *mn = mn.min(s);
                    }
                } else if path_dep {
                    p.exp_all(n);
                    basket[..n].fill(0.0);
                    for i in 0..d {
                        let row = &p.spot_row(i)[..n];
                        for (bk, &s) in basket[..n].iter_mut().zip(row) {
                            *bk += s;
                        }
                        let s0 = spots0[i];
                        for (acc, &s) in asian_sum[i * PANEL..i * PANEL + n].iter_mut().zip(row) {
                            *acc += s / s0;
                        }
                    }
                    for (a, &bk) in avg[..n].iter_mut().zip(basket[..n].iter()) {
                        *a += bk / d as f64;
                    }
                }
            });
            if lookback {
                // Floating lookbacks are positively homogeneous of degree
                // 1 in S₀ (every path value scales with the spot), so the
                // pathwise delta is payoff/S₀ exactly.
                let row = panel.spot_row(0);
                for lane in 0..n {
                    let y = payoff.eval_extremes(row[lane], pmax[lane], pmin[lane]);
                    ys[lane] = y;
                    dvec[lane] = y / s0_first;
                }
            } else if path_dep {
                let m = cfg.steps as f64;
                for lane in 0..n {
                    let mean = avg[lane] / cfg.steps as f64;
                    match payoff {
                        Payoff::AsianCall { strike } => {
                            ys[lane] = (mean - strike).max(0.0);
                            if mean > *strike {
                                for i in 0..d {
                                    // ∂mean/∂S0ᵢ = (1/(m·d))·Σ_t Sᵢ(t)/S0ᵢ
                                    dvec[i * PANEL + lane] =
                                        asian_sum[i * PANEL + lane] / (m * d as f64);
                                }
                            }
                        }
                        Payoff::AsianPut { strike } => {
                            ys[lane] = (strike - mean).max(0.0);
                            if mean < *strike {
                                for i in 0..d {
                                    dvec[i * PANEL + lane] =
                                        -asian_sum[i * PANEL + lane] / (m * d as f64);
                                }
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            } else {
                panel.exp_all(n);
                for lane in 0..n {
                    panel.gather_spots(lane, &mut term);
                    ys[lane] = terminal_gradient(payoff, &term, &mut grad);
                    // Chain rule: ∂Sᵢ(T)/∂S0ᵢ = Sᵢ(T)/S0ᵢ.
                    for i in 0..d {
                        dvec[i * PANEL + lane] = grad[i] * term[i] / spots0[i];
                    }
                }
            }
            for lane in 0..n {
                price_stats.push(disc * ys[lane]);
                for (i, st) in delta_stats.iter_mut().enumerate() {
                    st.push(disc * dvec[i * PANEL + lane]);
                }
            }
            done += n as u64;
        }
    }
    Ok(PathwiseResult {
        price: price_stats.mean(),
        price_se: price_stats.std_error(),
        delta: delta_stats.iter().map(|s| s.mean()).collect(),
        delta_se: delta_stats.iter().map(|s| s.std_error()).collect(),
        paths: price_stats.count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_model::greeks::black_scholes_call_greeks;
    use mdp_model::Product;

    #[test]
    fn vanilla_delta_matches_black_scholes() {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let p = Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        let exact = black_scholes_call_greeks(100.0, 100.0, 0.05, 0.0, 0.2, 1.0);
        let r = pathwise_delta(
            &m,
            &p,
            McConfig {
                paths: 200_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (r.delta[0] - exact.delta[0]).abs() < 3.5 * r.delta_se[0],
            "{} vs {} (se {})",
            r.delta[0],
            exact.delta[0],
            r.delta_se[0]
        );
        assert!(r.delta_se[0] < 0.005, "pathwise SE should be tiny");
    }

    #[test]
    fn geometric_basket_delta_matches_bump() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::GeometricCall { strike: 100.0 }, 1.0);
        let r = pathwise_delta(
            &m,
            &p,
            McConfig {
                paths: 100_000,
                ..Default::default()
            },
        )
        .unwrap();
        // Analytic bump of the closed form.
        let h = 0.01;
        let up = {
            let mb = m.with_spot(0, 100.0 + h).unwrap();
            mdp_model::analytic::geometric_basket_call(&mb, &Product::equal_weights(3), 100.0, 1.0)
        };
        let dn = {
            let mb = m.with_spot(0, 100.0 - h).unwrap();
            mdp_model::analytic::geometric_basket_call(&mb, &Product::equal_weights(3), 100.0, 1.0)
        };
        let exact = (up - dn) / (2.0 * h);
        assert!(
            (r.delta[0] - exact).abs() < 4.0 * r.delta_se[0] + 1e-3,
            "{} vs {exact}",
            r.delta[0]
        );
    }

    #[test]
    fn exchange_deltas_have_opposite_signs() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::Exchange, 1.0);
        let r = pathwise_delta(
            &m,
            &p,
            McConfig {
                paths: 50_000,
                ..Default::default()
            },
        )
        .unwrap();
        // Exact Margrabe deltas: Δ₁ = Φ(d₁), Δ₂ = −Φ(d₂) with
        // σ_x = σ√(2(1−ρ)) and d₁ = σ_x√T/2 at equal spots.
        let sig_x = 0.2 * (2.0f64 * (1.0 - 0.3)).sqrt();
        let d1 = 0.5 * sig_x;
        let exact1 = mdp_math::special::norm_cdf(d1);
        let exact2 = -mdp_math::special::norm_cdf(d1 - sig_x);
        assert!(
            (r.delta[0] - exact1).abs() < 4.0 * r.delta_se[0] + 1e-3,
            "{} vs {exact1}",
            r.delta[0]
        );
        assert!(
            (r.delta[1] - exact2).abs() < 4.0 * r.delta_se[1] + 1e-3,
            "{} vs {exact2}",
            r.delta[1]
        );
    }

    #[test]
    fn max_call_deltas_sum_to_exercise_probability_scale() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.0).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let r = pathwise_delta(
            &m,
            &p,
            McConfig {
                paths: 50_000,
                ..Default::default()
            },
        )
        .unwrap();
        // Deltas positive, symmetric.
        assert!(r.delta[0] > 0.0 && r.delta[1] > 0.0);
        assert!((r.delta[0] - r.delta[1]).abs() < 0.03, "{:?}", r.delta);
    }

    #[test]
    fn asian_delta_below_european_delta() {
        let m = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let asian = Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0);
        let ra = pathwise_delta(
            &m,
            &asian,
            McConfig {
                paths: 60_000,
                steps: 12,
                ..Default::default()
            },
        )
        .unwrap();
        let euro = Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        let re = pathwise_delta(
            &m,
            &euro,
            McConfig {
                paths: 60_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ra.delta[0] > 0.0);
        assert!(
            ra.delta[0] < re.delta[0],
            "asian {} vs euro {}",
            ra.delta[0],
            re.delta[0]
        );
    }

    #[test]
    fn digitals_rejected() {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let digital = Product::european(
            Payoff::DigitalBasketCall {
                weights: vec![1.0],
                strike: 100.0,
                cash: 1.0,
            },
            1.0,
        );
        assert!(matches!(
            pathwise_delta(&m, &digital, McConfig::default()),
            Err(McError::Unsupported(_))
        ));
        assert!(!supports_pathwise(&digital.payoff));
    }

    #[test]
    fn american_rejected() {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let am = Product::american(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        assert!(pathwise_delta(&m, &am, McConfig::default()).is_err());
    }

    #[test]
    fn price_agrees_with_engine() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let cfg = McConfig {
            paths: 20_000,
            ..Default::default()
        };
        let pw = pathwise_delta(&m, &p, cfg).unwrap();
        let eng = crate::engine::McEngine::new(cfg).price(&m, &p).unwrap();
        // Same sample set, same estimator for the price.
        assert!((pw.price - eng.price).abs() < 1e-12);
    }
}

#[cfg(test)]
mod lookback_pathwise_tests {
    use super::*;
    use mdp_model::{analytic, Product};

    #[test]
    fn lookback_delta_equals_price_over_spot() {
        // Homogeneity: V(λS₀) = λV(S₀) ⇒ Δ = V/S₀ exactly for the
        // continuous contract; the discretely monitored estimator obeys
        // the same identity against its own (discrete) price.
        let m = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let p = Product::european(Payoff::LookbackCallFloating, 1.0);
        let cfg = McConfig {
            paths: 40_000,
            steps: 64,
            ..Default::default()
        };
        let r = pathwise_delta(&m, &p, cfg).unwrap();
        assert!(
            (r.delta[0] - r.price / 100.0).abs() < 1e-12,
            "pathwise identity: {} vs {}",
            r.delta[0],
            r.price / 100.0
        );
        // And close to the continuous closed form's delta.
        let exact_delta = analytic::lookback_call_floating(100.0, 0.05, 0.0, 0.3, 1.0) / 100.0;
        assert!(
            (r.delta[0] - exact_delta).abs() < 0.03,
            "{} vs {exact_delta}",
            r.delta[0]
        );
    }
}
