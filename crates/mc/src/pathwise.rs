//! Pathwise (infinitesimal-perturbation) delta estimation.
//!
//! Under GBM the terminal price is pathwise linear in the initial spot,
//! `∂Sᵢ(T)/∂Sᵢ(0) = Sᵢ(T)/Sᵢ(0)`, so for Lipschitz payoffs the payoff
//! derivative can be moved inside the expectation and estimated on the
//! *same* paths as the price — one run gives price and all deltas with
//! MC noise far below bump-and-reprice. Discontinuous payoffs
//! (digitals) are rejected: their pathwise derivative misses the jump
//! term and would be silently biased.

use crate::path::{walk_path_with_normals, GbmStepper};
use crate::McConfig;
use crate::McError;
use mdp_math::rng::{NormalPolar, NormalSampler, Substreams, Xoshiro256StarStar};
use mdp_math::stats::OnlineStats;
use mdp_model::{ExerciseStyle, GbmMarket, Payoff, Product};

/// Price plus pathwise deltas.
#[derive(Debug, Clone)]
pub struct PathwiseResult {
    /// Price estimate.
    pub price: f64,
    /// Standard error of the price.
    pub price_se: f64,
    /// Per-asset pathwise delta.
    pub delta: Vec<f64>,
    /// Standard error of each delta component.
    pub delta_se: Vec<f64>,
    /// Paths used.
    pub paths: u64,
}

/// True when the payoff family supports the pathwise method
/// (almost-everywhere differentiable, no jumps).
pub fn supports_pathwise(payoff: &Payoff) -> bool {
    matches!(
        payoff,
        Payoff::BasketCall { .. }
            | Payoff::BasketPut { .. }
            | Payoff::GeometricCall { .. }
            | Payoff::GeometricPut { .. }
            | Payoff::MaxCall { .. }
            | Payoff::MinCall { .. }
            | Payoff::MaxPut { .. }
            | Payoff::MinPut { .. }
            | Payoff::Exchange
            | Payoff::SpreadCall { .. }
            | Payoff::AsianCall { .. }
            | Payoff::AsianPut { .. }
            | Payoff::LookbackCallFloating
            | Payoff::LookbackPutFloating
    )
}

/// Payoff value and gradient w.r.t. the *terminal* spot vector
/// (for Asians: w.r.t. the per-date spots folded through the average).
fn terminal_gradient(payoff: &Payoff, s: &[f64], grad: &mut [f64]) -> f64 {
    for g in grad.iter_mut() {
        *g = 0.0;
    }
    let d = s.len();
    match payoff {
        Payoff::BasketCall { weights, strike } => {
            let b: f64 = weights.iter().zip(s).map(|(w, x)| w * x).sum();
            if b > *strike {
                grad.copy_from_slice(weights);
            }
            (b - strike).max(0.0)
        }
        Payoff::BasketPut { weights, strike } => {
            let b: f64 = weights.iter().zip(s).map(|(w, x)| w * x).sum();
            if b < *strike {
                for (g, w) in grad.iter_mut().zip(weights) {
                    *g = -w;
                }
            }
            (strike - b).max(0.0)
        }
        Payoff::GeometricCall { strike } => {
            let g0 = (s.iter().map(|x| x.ln()).sum::<f64>() / d as f64).exp();
            if g0 > *strike {
                for (gi, &si) in grad.iter_mut().zip(s) {
                    *gi = g0 / (d as f64 * si);
                }
            }
            (g0 - strike).max(0.0)
        }
        Payoff::GeometricPut { strike } => {
            let g0 = (s.iter().map(|x| x.ln()).sum::<f64>() / d as f64).exp();
            if g0 < *strike {
                for (gi, &si) in grad.iter_mut().zip(s) {
                    *gi = -g0 / (d as f64 * si);
                }
            }
            (strike - g0).max(0.0)
        }
        Payoff::MaxCall { strike } => {
            let (arg, mx) = argmax(s);
            if mx > *strike {
                grad[arg] = 1.0;
            }
            (mx - strike).max(0.0)
        }
        Payoff::MinCall { strike } => {
            let (arg, mn) = argmin(s);
            if mn > *strike {
                grad[arg] = 1.0;
            }
            (mn - strike).max(0.0)
        }
        Payoff::MaxPut { strike } => {
            let (arg, mx) = argmax(s);
            if mx < *strike {
                grad[arg] = -1.0;
            }
            (strike - mx).max(0.0)
        }
        Payoff::MinPut { strike } => {
            let (arg, mn) = argmin(s);
            if mn < *strike {
                grad[arg] = -1.0;
            }
            (strike - mn).max(0.0)
        }
        Payoff::Exchange => {
            if s[0] > s[1] {
                grad[0] = 1.0;
                grad[1] = -1.0;
            }
            (s[0] - s[1]).max(0.0)
        }
        Payoff::SpreadCall { strike } => {
            if s[0] - s[1] > *strike {
                grad[0] = 1.0;
                grad[1] = -1.0;
            }
            (s[0] - s[1] - strike).max(0.0)
        }
        _ => unreachable!("gated by supports_pathwise"),
    }
}

fn argmax(s: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for i in 1..s.len() {
        if s[i] > s[best] {
            best = i;
        }
    }
    (best, s[best])
}

fn argmin(s: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for i in 1..s.len() {
        if s[i] < s[best] {
            best = i;
        }
    }
    (best, s[best])
}

/// Estimate price and pathwise deltas of a European product.
pub fn pathwise_delta(
    market: &GbmMarket,
    product: &Product,
    cfg: McConfig,
) -> Result<PathwiseResult, McError> {
    product.validate_for(market)?;
    if product.exercise != ExerciseStyle::European {
        return Err(McError::Unsupported(
            "pathwise deltas are European-only".into(),
        ));
    }
    if !supports_pathwise(&product.payoff) {
        return Err(McError::Unsupported(format!(
            "pathwise method invalid for discontinuous payoff {:?}",
            product.payoff
        )));
    }
    if cfg.paths == 0 {
        return Err(McError::ZeroPaths);
    }
    if cfg.steps == 0 {
        return Err(McError::ZeroSteps);
    }
    let d = market.dim();
    let stepper = GbmStepper::new(market, product.maturity, cfg.steps);
    let log0: Vec<f64> = market.spots().iter().map(|s| s.ln()).collect();
    let disc = market.discount(product.maturity);
    let payoff = &product.payoff;
    let path_dep = payoff.is_path_dependent();
    let spots0 = market.spots();

    let base = Xoshiro256StarStar::seed_from(cfg.seed);
    let mut sampler = NormalPolar::new();
    let mut normals = vec![0.0; stepper.normals_per_path()];
    let mut log_buf = vec![0.0; d];
    let mut spot_buf = vec![0.0; d];
    let mut grad = vec![0.0; d];
    let mut price_stats = OnlineStats::new();
    let mut delta_stats = vec![OnlineStats::new(); d];
    // For Asians: running per-asset sums of S_i(t)/S0_i over dates.
    let mut asian_sum = vec![0.0; d];
    let mut avg;
    let s0_first = spots0[0];
    let lookback = matches!(
        payoff,
        Payoff::LookbackCallFloating | Payoff::LookbackPutFloating
    );

    for b in 0..cfg.num_blocks() {
        let mut rng = base.substream(b);
        sampler.reset();
        for _ in 0..cfg.block_paths(b) {
            sampler.fill(&mut rng, &mut normals);
            avg = 0.0;
            asian_sum.iter_mut().for_each(|x| *x = 0.0);
            let mut pmax = s0_first;
            let mut pmin = s0_first;
            let mut y = 0.0;
            let mut dvec = vec![0.0; d];
            walk_path_with_normals(
                &stepper,
                &log0,
                &normals,
                &mut log_buf,
                &mut spot_buf,
                |step, s| {
                    if lookback {
                        pmax = pmax.max(s[0]);
                        pmin = pmin.min(s[0]);
                    } else if path_dep {
                        avg += s.iter().sum::<f64>() / d as f64;
                        for (acc, (&si, &s0)) in asian_sum.iter_mut().zip(s.iter().zip(spots0)) {
                            *acc += si / s0;
                        }
                    }
                    if step == cfg.steps - 1 {
                        if lookback {
                            // Floating lookbacks are positively homogeneous
                            // of degree 1 in S₀ (every path value scales
                            // with the spot), so the pathwise delta is
                            // payoff/S₀ exactly.
                            y = payoff.eval_extremes(s[0], pmax, pmin);
                            dvec[0] = y / s0_first;
                        } else if path_dep {
                            let mean = avg / cfg.steps as f64;
                            let m = cfg.steps as f64;
                            match payoff {
                                Payoff::AsianCall { strike } => {
                                    y = (mean - strike).max(0.0);
                                    if mean > *strike {
                                        for (dv, &acc) in dvec.iter_mut().zip(&asian_sum) {
                                            // ∂mean/∂S0ᵢ = (1/(m·d))·Σ_t Sᵢ(t)/S0ᵢ
                                            *dv = acc / (m * d as f64);
                                        }
                                    }
                                }
                                Payoff::AsianPut { strike } => {
                                    y = (strike - mean).max(0.0);
                                    if mean < *strike {
                                        for (dv, &acc) in dvec.iter_mut().zip(&asian_sum) {
                                            *dv = -acc / (m * d as f64);
                                        }
                                    }
                                }
                                _ => unreachable!(),
                            }
                        } else {
                            y = terminal_gradient(payoff, s, &mut grad);
                            // Chain rule: ∂Sᵢ(T)/∂S0ᵢ = Sᵢ(T)/S0ᵢ.
                            for ((dv, &g), (&si, &s0)) in
                                dvec.iter_mut().zip(grad.iter()).zip(s.iter().zip(spots0))
                            {
                                *dv = g * si / s0;
                            }
                        }
                    }
                },
            );
            price_stats.push(disc * y);
            for (st, dv) in delta_stats.iter_mut().zip(&dvec) {
                st.push(disc * dv);
            }
        }
    }
    Ok(PathwiseResult {
        price: price_stats.mean(),
        price_se: price_stats.std_error(),
        delta: delta_stats.iter().map(|s| s.mean()).collect(),
        delta_se: delta_stats.iter().map(|s| s.std_error()).collect(),
        paths: price_stats.count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_model::greeks::black_scholes_call_greeks;
    use mdp_model::Product;

    #[test]
    fn vanilla_delta_matches_black_scholes() {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let p = Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        let exact = black_scholes_call_greeks(100.0, 100.0, 0.05, 0.0, 0.2, 1.0);
        let r = pathwise_delta(
            &m,
            &p,
            McConfig {
                paths: 200_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (r.delta[0] - exact.delta[0]).abs() < 3.5 * r.delta_se[0],
            "{} vs {} (se {})",
            r.delta[0],
            exact.delta[0],
            r.delta_se[0]
        );
        assert!(r.delta_se[0] < 0.005, "pathwise SE should be tiny");
    }

    #[test]
    fn geometric_basket_delta_matches_bump() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::GeometricCall { strike: 100.0 }, 1.0);
        let r = pathwise_delta(
            &m,
            &p,
            McConfig {
                paths: 100_000,
                ..Default::default()
            },
        )
        .unwrap();
        // Analytic bump of the closed form.
        let h = 0.01;
        let up = {
            let mb = m.with_spot(0, 100.0 + h).unwrap();
            mdp_model::analytic::geometric_basket_call(&mb, &Product::equal_weights(3), 100.0, 1.0)
        };
        let dn = {
            let mb = m.with_spot(0, 100.0 - h).unwrap();
            mdp_model::analytic::geometric_basket_call(&mb, &Product::equal_weights(3), 100.0, 1.0)
        };
        let exact = (up - dn) / (2.0 * h);
        assert!(
            (r.delta[0] - exact).abs() < 4.0 * r.delta_se[0] + 1e-3,
            "{} vs {exact}",
            r.delta[0]
        );
    }

    #[test]
    fn exchange_deltas_have_opposite_signs() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::Exchange, 1.0);
        let r = pathwise_delta(
            &m,
            &p,
            McConfig {
                paths: 50_000,
                ..Default::default()
            },
        )
        .unwrap();
        // Exact Margrabe deltas: Δ₁ = Φ(d₁), Δ₂ = −Φ(d₂) with
        // σ_x = σ√(2(1−ρ)) and d₁ = σ_x√T/2 at equal spots.
        let sig_x = 0.2 * (2.0f64 * (1.0 - 0.3)).sqrt();
        let d1 = 0.5 * sig_x;
        let exact1 = mdp_math::special::norm_cdf(d1);
        let exact2 = -mdp_math::special::norm_cdf(d1 - sig_x);
        assert!(
            (r.delta[0] - exact1).abs() < 4.0 * r.delta_se[0] + 1e-3,
            "{} vs {exact1}",
            r.delta[0]
        );
        assert!(
            (r.delta[1] - exact2).abs() < 4.0 * r.delta_se[1] + 1e-3,
            "{} vs {exact2}",
            r.delta[1]
        );
    }

    #[test]
    fn max_call_deltas_sum_to_exercise_probability_scale() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.0).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let r = pathwise_delta(
            &m,
            &p,
            McConfig {
                paths: 50_000,
                ..Default::default()
            },
        )
        .unwrap();
        // Deltas positive, symmetric.
        assert!(r.delta[0] > 0.0 && r.delta[1] > 0.0);
        assert!((r.delta[0] - r.delta[1]).abs() < 0.03, "{:?}", r.delta);
    }

    #[test]
    fn asian_delta_below_european_delta() {
        let m = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let asian = Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0);
        let ra = pathwise_delta(
            &m,
            &asian,
            McConfig {
                paths: 60_000,
                steps: 12,
                ..Default::default()
            },
        )
        .unwrap();
        let euro = Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        let re = pathwise_delta(
            &m,
            &euro,
            McConfig {
                paths: 60_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ra.delta[0] > 0.0);
        assert!(
            ra.delta[0] < re.delta[0],
            "asian {} vs euro {}",
            ra.delta[0],
            re.delta[0]
        );
    }

    #[test]
    fn digitals_rejected() {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let digital = Product::european(
            Payoff::DigitalBasketCall {
                weights: vec![1.0],
                strike: 100.0,
                cash: 1.0,
            },
            1.0,
        );
        assert!(matches!(
            pathwise_delta(&m, &digital, McConfig::default()),
            Err(McError::Unsupported(_))
        ));
        assert!(!supports_pathwise(&digital.payoff));
    }

    #[test]
    fn american_rejected() {
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let am = Product::american(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 100.0,
            },
            1.0,
        );
        assert!(pathwise_delta(&m, &am, McConfig::default()).is_err());
    }

    #[test]
    fn price_agrees_with_engine() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let cfg = McConfig {
            paths: 20_000,
            ..Default::default()
        };
        let pw = pathwise_delta(&m, &p, cfg).unwrap();
        let eng = crate::engine::McEngine::new(cfg).price(&m, &p).unwrap();
        // Same sample set, same estimator for the price.
        assert!((pw.price - eng.price).abs() < 1e-12);
    }
}

#[cfg(test)]
mod lookback_pathwise_tests {
    use super::*;
    use mdp_model::{analytic, Product};

    #[test]
    fn lookback_delta_equals_price_over_spot() {
        // Homogeneity: V(λS₀) = λV(S₀) ⇒ Δ = V/S₀ exactly for the
        // continuous contract; the discretely monitored estimator obeys
        // the same identity against its own (discrete) price.
        let m = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let p = Product::european(Payoff::LookbackCallFloating, 1.0);
        let cfg = McConfig {
            paths: 40_000,
            steps: 64,
            ..Default::default()
        };
        let r = pathwise_delta(&m, &p, cfg).unwrap();
        assert!(
            (r.delta[0] - r.price / 100.0).abs() < 1e-12,
            "pathwise identity: {} vs {}",
            r.delta[0],
            r.price / 100.0
        );
        // And close to the continuous closed form's delta.
        let exact_delta = analytic::lookback_call_floating(100.0, 0.05, 0.0, 0.3, 1.0) / 100.0;
        assert!(
            (r.delta[0] - exact_delta).abs() < 0.03,
            "{} vs {exact_delta}",
            r.delta[0]
        );
    }
}
