//! Stratified sampling on the dominant Gaussian factor.
//!
//! The first normal draw (asset 1's first-step shock — the factor every
//! asset loads on through the Cholesky) is replaced by a stratified
//! sample: stratum `m` of `M` draws `z = Φ⁻¹((m + U)/M)`, so the factor's
//! between-strata variance — typically most of a basket payoff's
//! variance — is eliminated exactly. Proportional allocation keeps the
//! estimator unbiased; the standard error combines per-stratum variances
//! `SE² = Σₘ varₘ / (M²·nₘ)`.

use crate::panel::{eval_panel, PanelScratch};
use crate::path::{GbmStepper, SoaPanel, PANEL};
use crate::McConfig;
use crate::McError;
use mdp_math::rng::{
    NormalInverse, NormalPolar, NormalSampler, Rng64, Substreams, Xoshiro256StarStar,
};
use mdp_math::stats::OnlineStats;
use mdp_model::{ExerciseStyle, GbmMarket, Product};

/// Result of a stratified Monte Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct StratifiedResult {
    /// Price estimate.
    pub price: f64,
    /// Standard error (stratified combination).
    pub std_error: f64,
    /// Total paths.
    pub paths: u64,
    /// Strata used.
    pub strata: u32,
}

/// Price a European product with the first factor stratified into
/// `strata` equiprobable bins (proportional allocation).
pub fn price_stratified(
    market: &GbmMarket,
    product: &Product,
    cfg: McConfig,
    strata: u32,
) -> Result<StratifiedResult, McError> {
    product.validate_for(market)?;
    if product.exercise != ExerciseStyle::European {
        return Err(McError::Unsupported(
            "stratified engine is European-only".into(),
        ));
    }
    if strata == 0 {
        return Err(McError::Unsupported("need at least one stratum".into()));
    }
    if cfg.paths < strata as u64 {
        return Err(McError::Unsupported(format!(
            "need at least one path per stratum ({} paths, {strata} strata)",
            cfg.paths
        )));
    }
    if cfg.steps == 0 {
        return Err(McError::ZeroSteps);
    }
    let d = market.dim();
    let stepper = GbmStepper::new(market, product.maturity, cfg.steps);
    let log0: Vec<f64> = market.spots().iter().map(|s| s.ln()).collect();
    let disc = market.discount(product.maturity);
    let payoff = &product.payoff;
    let s0_first = market.spots()[0];

    let base = Xoshiro256StarStar::seed_from(cfg.seed);
    let mut per_stratum = vec![OnlineStats::new(); strata as usize];
    let mut sampler = NormalPolar::new();
    // Strata ride the batched SoA kernel. The per-path RNG interleave —
    // fill the path's normals, then draw the stratifying uniform — is
    // preserved by filling one panel lane at a time before overwriting
    // its first coordinate.
    let mut panel = SoaPanel::new(&stepper, PANEL);
    let mut scratch = PanelScratch::new(d, PANEL);

    // Paths per stratum (the remainder spreads over the first strata).
    let base_n = cfg.paths / strata as u64;
    let extra = (cfg.paths % strata as u64) as u32;

    for m in 0..strata {
        let mut rng = base.substream(m as u64);
        sampler.reset();
        let n_m = base_n + u64::from(m < extra);
        let mut done = 0u64;
        while done < n_m {
            let n = (n_m - done).min(PANEL as u64) as usize;
            for lane in 0..n {
                panel.fill_lane(&mut sampler, &mut rng, lane);
                // Stratify the first coordinate: u ∈ [(m)/M, (m+1)/M).
                let u = (m as f64 + rng.next_open_f64()) / strata as f64;
                panel.set_normal(
                    0,
                    lane,
                    NormalInverse::transform(u.clamp(1e-16, 1.0 - 1e-16)),
                );
            }
            eval_panel(
                &stepper,
                &log0,
                payoff,
                s0_first,
                None,
                &mut panel,
                &mut scratch,
                n,
            );
            for lane in 0..n {
                per_stratum[m as usize].push(disc * scratch.ys[lane]);
            }
            done += n as u64;
        }
    }

    // Proportional-allocation combination.
    let mm = strata as f64;
    let mut price = 0.0;
    let mut var = 0.0;
    let mut total = 0u64;
    for s in &per_stratum {
        price += s.mean() / mm;
        if s.count() > 1 {
            var += s.variance() / (mm * mm * s.count() as f64);
        }
        total += s.count();
    }
    Ok(StratifiedResult {
        price,
        std_error: var.sqrt(),
        paths: total,
        strata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::McEngine;
    use mdp_model::{analytic, Payoff};

    fn setup() -> (GbmMarket, Product) {
        (
            GbmMarket::symmetric(3, 100.0, 0.3, 0.0, 0.05, 0.5).unwrap(),
            Product::european(Payoff::GeometricCall { strike: 100.0 }, 1.0),
        )
    }

    #[test]
    fn unbiased_against_closed_form() {
        let (m, p) = setup();
        let exact = analytic::geometric_basket_call(&m, &Product::equal_weights(3), 100.0, 1.0);
        let r = price_stratified(
            &m,
            &p,
            McConfig {
                paths: 100_000,
                ..Default::default()
            },
            64,
        )
        .unwrap();
        assert!(
            (r.price - exact).abs() < 4.0 * r.std_error + 1e-3,
            "{} vs {exact} (se {})",
            r.price,
            r.std_error
        );
        assert_eq!(r.paths, 100_000);
    }

    #[test]
    fn stratification_reduces_error_at_equal_budget() {
        let (m, p) = setup();
        let plain = McEngine::new(McConfig {
            paths: 40_000,
            ..Default::default()
        })
        .price(&m, &p)
        .unwrap();
        let strat = price_stratified(
            &m,
            &p,
            McConfig {
                paths: 40_000,
                ..Default::default()
            },
            64,
        )
        .unwrap();
        assert!(
            strat.std_error < 0.7 * plain.std_error,
            "stratified {} vs plain {}",
            strat.std_error,
            plain.std_error
        );
    }

    #[test]
    fn more_strata_means_less_variance() {
        let (m, p) = setup();
        let cfg = McConfig {
            paths: 40_000,
            ..Default::default()
        };
        let few = price_stratified(&m, &p, cfg, 4).unwrap();
        let many = price_stratified(&m, &p, cfg, 256).unwrap();
        assert!(
            many.std_error < few.std_error,
            "{} vs {}",
            many.std_error,
            few.std_error
        );
    }

    #[test]
    fn uneven_allocation_covers_all_paths() {
        let (m, p) = setup();
        let r = price_stratified(
            &m,
            &p,
            McConfig {
                paths: 1001,
                ..Default::default()
            },
            10,
        )
        .unwrap();
        assert_eq!(r.paths, 1001);
    }

    #[test]
    fn validation_errors() {
        let (m, p) = setup();
        assert!(price_stratified(&m, &p, McConfig::default(), 0).is_err());
        assert!(price_stratified(
            &m,
            &p,
            McConfig {
                paths: 4,
                ..Default::default()
            },
            10
        )
        .is_err());
        let am = Product::american(Payoff::MaxCall { strike: 100.0 }, 1.0);
        assert!(price_stratified(&m, &am, McConfig::default(), 8).is_err());
    }

    #[test]
    fn works_for_asian_payoffs_too() {
        let m1 = GbmMarket::single(100.0, 0.3, 0.0, 0.05).unwrap();
        let asian = Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0);
        let cfg = McConfig {
            paths: 30_000,
            steps: 12,
            ..Default::default()
        };
        let plain = McEngine::new(cfg).price(&m1, &asian).unwrap();
        let strat = price_stratified(&m1, &asian, cfg, 32).unwrap();
        assert!(
            (plain.price - strat.price).abs() < 4.0 * (plain.std_error + strat.std_error),
            "{} vs {}",
            plain.price,
            strat.price
        );
        // First-step stratification helps Asians less (the average
        // spreads variance over the path) but must not hurt.
        assert!(strat.std_error <= plain.std_error * 1.05);
    }
}
