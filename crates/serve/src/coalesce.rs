//! Request coalescing: bit-exact plan keys and in-flight grouping.
//!
//! The coalescer drains whatever is in the admission queue and groups
//! it by [`PlanKey`] — the same bit-exact identity
//! [`mdp_core::Portfolio::price_batch`] groups a book by, extended with
//! the market fingerprint because independent requests need not share a
//! snapshot. Same key ⇒ the requests can share one compiled
//! [`mdp_core::GroupPlan`] and ride one fused kernel call
//! (multi-RHS Thomas lanes, shared-path MC sweep); different keys —
//! including the *same* maturity under two different engine
//! configurations — can never mix.

use crate::service::Job;
use mdp_core::Method;
use mdp_model::{GbmMarket, Product};

/// The bit-exact identity of a compiled group plan: a plan may be
/// shared between two requests iff their keys are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`GbmMarket::cache_key`] of the snapshot.
    pub market: u64,
    /// IEEE-754 bits of the product maturity.
    pub maturity: u64,
    /// [`Method::cache_key`] of the engine configuration.
    pub method: u64,
}

impl PlanKey {
    /// Key for a request's `(market, product, method)` triple.
    pub fn of(market: &GbmMarket, product: &Product, method: &Method) -> Self {
        PlanKey {
            market: market.cache_key(),
            maturity: product.maturity.to_bits(),
            method: method.cache_key(),
        }
    }
}

/// Group a drained batch of jobs by plan key, preserving arrival order
/// within each group and the order of first arrival across groups.
pub(crate) fn group_jobs(jobs: Vec<Job>) -> Vec<(PlanKey, Vec<Job>)> {
    let mut groups: Vec<(PlanKey, Vec<Job>)> = Vec::new();
    for job in jobs {
        match groups.iter_mut().find(|(k, _)| *k == job.key) {
            Some((_, v)) => v.push(job),
            None => groups.push((job.key, vec![job])),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_model::Payoff;

    fn call(strike: f64, maturity: f64) -> Product {
        Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike,
            },
            maturity,
        )
    }

    #[test]
    fn key_separates_market_maturity_and_method() {
        let m1 = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let m2 = GbmMarket::single(101.0, 0.2, 0.0, 0.05).unwrap();
        let fd = Method::Fd1d(mdp_core::pde::Fd1d::default());
        let fd_coarse = Method::Fd1d(mdp_core::pde::Fd1d {
            space_points: 201,
            ..mdp_core::pde::Fd1d::default()
        });
        let base = PlanKey::of(&m1, &call(100.0, 1.0), &fd);
        // Same snapshot/maturity/config, different strike: same key —
        // strikes ride the same plan.
        assert_eq!(base, PlanKey::of(&m1, &call(90.0, 1.0), &fd));
        // Any identity component flips the key.
        assert_ne!(base, PlanKey::of(&m2, &call(100.0, 1.0), &fd));
        assert_ne!(base, PlanKey::of(&m1, &call(100.0, 2.0), &fd));
        assert_ne!(base, PlanKey::of(&m1, &call(100.0, 1.0), &fd_coarse));
    }
}
