//! Typed service errors: admission-control sheds and lifecycle faults
//! are first-class outcomes, never panics or silent queue growth.

use mdp_core::PriceError;
use std::fmt;

/// Why the service could not take (or answer) a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control shed the request: the bounded queue was full.
    /// Callers retry, back off, or route elsewhere — latency never
    /// collapses into an unbounded backlog.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service is shut down (or shut down while the request was
    /// waiting for its response).
    Closed,
    /// The pricing engine rejected the request.
    Price(PriceError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "overloaded: admission queue at capacity {capacity}")
            }
            ServeError::Closed => write!(f, "service closed"),
            ServeError::Price(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PriceError> for ServeError {
    fn from(e: PriceError) -> Self {
        ServeError::Price(e)
    }
}
