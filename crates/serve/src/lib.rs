//! # mdp-serve — pricing as a service
//!
//! A request-driven front end over the `mdp-core` pricing engines,
//! built for the workload the one-option-at-a-time evaluation never
//! faced: a burst of thousands of *independent* user requests. Three
//! mechanisms make that burst price like one batched book instead of
//! thousands of plan builds:
//!
//! * **Coalescing** — workers drain everything in flight and group it
//!   by the bit-exact plan key ([`PlanKey`]: market fingerprint ×
//!   maturity bits × engine-config fingerprint), then route each group
//!   through the fused batch kernels ([`mdp_core::Portfolio`]'s
//!   multi-RHS Thomas lanes and shared-path MC sweeps).
//! * **Plan caching** — compiled [`mdp_core::GroupPlan`]s are kept in
//!   an LRU ([`PlanCache`]) keyed by the same bit-exact identity; a hit
//!   skips grid construction and factorization entirely
//!   (`plan_seconds ≈ 0`).
//! * **Admission control** — the queue is bounded; past capacity,
//!   submissions shed with a typed [`ServeError::Overloaded`] instead
//!   of collapsing into unbounded latency.
//!
//! On top of the throughput machinery sits a **resilience layer**:
//!
//! * **Deadlines + cancellation** — a per-request latency budget
//!   ([`PriceRequest::with_deadline`]) arms a cooperative cancel token
//!   threaded into every engine's hot loop; expired queued work is
//!   reclaimed with zero engine cost, in-flight work aborts at the
//!   engine's next poll, both typed
//!   [`mdp_core::PriceError::DeadlineExceeded`].
//! * **Retries + circuit breakers** — engine faults (worker panics,
//!   non-finite outputs) are retried under a budget with exponential
//!   backoff and deterministic jitter ([`RetryPolicy`]); per-engine
//!   [breakers](breaker) trip on sustained failure and the router
//!   answers from the `auto()` table's alternative engine instead.
//! * **Graceful degradation** — when no healthy engine fits (breaker
//!   open, or the deadline budget is smaller than the engine's observed
//!   latency), the service prices a cheaper variant
//!   ([`mdp_core::Method::degrade`]) and tags the response
//!   [`Fidelity::Degraded`] — never silently.
//! * **Fault injection** — a seeded, replayable [`ServeFaultPlan`]
//!   injects worker panics, stalls and poisoned results inside the
//!   `catch_unwind` isolation boundary, for chaos testing.
//!
//! All the throughput machinery is *scheduling* decisions: every `Ok`
//! response tagged [`Fidelity::Full`] is bitwise-identical to a direct
//! [`mdp_core::Pricer::price`] of the same request, whatever grouping,
//! caching, shedding or retrying happened on the way.
//!
//! ```
//! use mdp_serve::{PriceRequest, PricingService, ServeConfig};
//! use mdp_core::prelude::*;
//! use std::sync::Arc;
//!
//! let market = Arc::new(GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap());
//! let service = PricingService::start(
//!     Pricer::new(Method::Fd1d(Fd1d::default())),
//!     ServeConfig::default(),
//! );
//! // A burst of independent strike requests coalesces into one fused
//! // multi-RHS ladder behind the scenes.
//! let tickets: Vec<_> = (0..32)
//!     .map(|i| {
//!         let product = Product::european(
//!             Payoff::BasketCall { weights: vec![1.0], strike: 80.0 + i as f64 },
//!             1.0,
//!         );
//!         service.submit(PriceRequest::new(i, Arc::clone(&market), product)).unwrap()
//!     })
//!     .collect();
//! for t in tickets {
//!     assert!(t.wait().unwrap().outcome.is_ok());
//! }
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 32);
//! ```

pub mod breaker;
pub mod cache;
pub mod coalesce;
pub mod error;
pub mod fault;
pub mod request;
pub mod service;
pub mod stats;

pub use breaker::{transitions_legal, Admit, BreakerState, Transition};
pub use cache::{CacheStats, PlanCache};
pub use coalesce::PlanKey;
pub use error::ServeError;
pub use fault::{Fault, ServeFaultPlan};
pub use request::{
    BreakerConfig, Fidelity, PriceRequest, PriceResponse, Priority, RetryPolicy, ServeConfig,
    Ticket,
};
pub use service::PricingService;
pub use stats::ServiceStats;
