//! Deterministic worker-fault injection for the serving layer.
//!
//! [`ServeFaultPlan`] is the serve-side sibling of
//! `mdp_cluster::FaultPlan`: a *seeded schedule* of worker panics,
//! stalls and poisoned (non-finite) results. Every decision is a pure
//! function of `(seed, request id, attempt)` — no host randomness — so
//! a chaos run can be replayed bit-for-bit and the recovery behaviour
//! (retry counts, breaker trips, degradation decisions) asserted
//! exactly. Faults are injected inside the worker's `catch_unwind`
//! isolation boundary, so an injected panic is indistinguishable from a
//! real engine defect to everything above it.

use mdp_math::rng::SplitMix64;
use std::time::Duration;

/// What the plan injects into one `(request, attempt)` execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker panics mid-execute (caught at the isolation
    /// boundary, surfaced as [`mdp_core::PriceError::Panicked`]).
    Panic,
    /// The worker stalls for the plan's stall duration before pricing
    /// (models a wedged thread; deadlines keep ticking).
    Stall,
    /// The engine's result is replaced with NaN (caught by the
    /// post-condition check, surfaced as
    /// [`mdp_core::PriceError::Numerical`]).
    Poison,
}

/// A deterministic, replayable schedule of serve-layer worker faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeFaultPlan {
    /// Seed for every fault coin flip.
    pub seed: u64,
    /// Probability one `(request, attempt)` execution panics.
    pub panic_prob: f64,
    /// Probability one execution stalls for [`ServeFaultPlan::stall`].
    pub stall_prob: f64,
    /// Injected stall duration.
    pub stall: Duration,
    /// Probability one execution's result is poisoned to NaN.
    pub poison_prob: f64,
    /// Faults fire only for request ids below this bound
    /// (`u64::MAX` = always). Setting a finite bound creates a fault
    /// window followed by a clean phase — exactly what a breaker
    /// recovery timeline needs.
    pub until_id: u64,
}

impl ServeFaultPlan {
    /// A plan that injects nothing.
    pub fn new(seed: u64) -> Self {
        ServeFaultPlan {
            seed,
            panic_prob: 0.0,
            stall_prob: 0.0,
            stall: Duration::from_millis(1),
            poison_prob: 0.0,
            until_id: u64::MAX,
        }
    }

    /// Enable injected panics with the given per-execution probability.
    pub fn with_panics(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "panic probability in [0,1]");
        self.panic_prob = prob;
        self
    }

    /// Enable injected stalls of duration `stall`.
    pub fn with_stalls(mut self, prob: f64, stall: Duration) -> Self {
        assert!((0.0..=1.0).contains(&prob), "stall probability in [0,1]");
        self.stall_prob = prob;
        self.stall = stall;
        self
    }

    /// Enable poisoned (NaN) results.
    pub fn with_poison(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "poison probability in [0,1]");
        self.poison_prob = prob;
        self
    }

    /// Restrict faults to request ids below `id` (the fault window).
    pub fn until(mut self, id: u64) -> Self {
        self.until_id = id;
        self
    }

    /// Does this plan inject anything at all?
    pub fn has_chaos(&self) -> bool {
        self.panic_prob > 0.0 || self.stall_prob > 0.0 || self.poison_prob > 0.0
    }

    /// A uniform in `[0, 1)` from the plan's seed, the request id, the
    /// attempt and a per-fault-kind salt.
    fn coin(&self, id: u64, attempt: u32, salt: u64) -> f64 {
        let word = SplitMix64::mix(
            self.seed
                ^ SplitMix64::mix(id)
                ^ SplitMix64::mix(salt.wrapping_add(u64::from(attempt))),
        );
        // 53 high bits → the standard f64-in-[0,1) construction.
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The fault, if any, for one `(request, attempt)` execution. Pure:
    /// the same triple always rolls the same outcome. Panic wins over
    /// stall wins over poison when several coins fire.
    pub fn roll(&self, id: u64, attempt: u32) -> Option<Fault> {
        if id >= self.until_id {
            return None;
        }
        if self.coin(id, attempt, 0x9A11C) < self.panic_prob {
            return Some(Fault::Panic);
        }
        if self.coin(id, attempt, 0x57A11) < self.stall_prob {
            return Some(Fault::Stall);
        }
        if self.coin(id, attempt, 0x9015) < self.poison_prob {
            return Some(Fault::Poison);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_rolls_nothing() {
        let plan = ServeFaultPlan::new(42);
        assert!(!plan.has_chaos());
        assert!((0..1000).all(|id| plan.roll(id, 1).is_none()));
    }

    #[test]
    fn rolls_are_deterministic_and_attempt_sensitive() {
        let plan = ServeFaultPlan::new(7).with_panics(0.3);
        let a: Vec<_> = (0..256).map(|id| plan.roll(id, 1)).collect();
        let b: Vec<_> = (0..256).map(|id| plan.roll(id, 1)).collect();
        assert_eq!(a, b, "same (seed, id, attempt) must roll identically");
        let hits = a.iter().filter(|f| f.is_some()).count();
        assert!(hits > 0, "p=0.3 over 256 ids must fire");
        // A faulted first attempt does not doom the retry.
        let faulted = (0..256).find(|id| plan.roll(*id, 1).is_some()).unwrap();
        assert!((2..16).any(|att| plan.roll(faulted, att).is_none()));
    }

    #[test]
    fn until_bounds_the_fault_window() {
        let plan = ServeFaultPlan::new(7).with_panics(1.0).until(100);
        assert!(plan.roll(99, 1).is_some());
        assert!(plan.roll(100, 1).is_none());
        assert!(plan.roll(5000, 3).is_none());
    }
}
