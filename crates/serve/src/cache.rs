//! The plan cache: LRU over compiled [`GroupPlan`]s.
//!
//! Keys are bit-exact ([`PlanKey`]), so a hit is *provably* the same
//! plan the miss path would have built — handing out a clone and
//! executing it is bitwise-identical to rebuilding, while paying
//! `plan_seconds ≈ 0` instead of grid construction, operator assembly
//! and Thomas/Cholesky factorization.

use crate::coalesce::PlanKey;
use mdp_core::GroupPlan;
use mdp_model::MarketDelta;

/// Hit/miss/eviction counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Cached plans patched in place by a market tick
    /// ([`PlanCache::retain_compatible`]).
    pub ticks_applied: u64,
    /// Cached plans a tick could not patch, evicted instead.
    pub tick_evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A least-recently-used cache of compiled group plans.
///
/// Deliberately a scan-based LRU over a small `Vec`: capacities are
/// tens of entries (one per live `(market, maturity, config)` triple),
/// where a linear scan beats hashing and keeps recency exact.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    /// MRU at the back.
    entries: Vec<(PlanKey, GroupPlan)>,
    stats: CacheStats,
}

impl PlanCache {
    /// Cache holding at most `capacity` plans (`0` disables storage —
    /// every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            entries: Vec::with_capacity(capacity),
            stats: CacheStats::default(),
        }
    }

    /// Look up a plan, refreshing its recency. Returns a clone — the
    /// caller executes (and mutates scratch) on its own copy, so one
    /// cached plan serves concurrent workers.
    pub fn get(&mut self, key: &PlanKey) -> Option<GroupPlan> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                self.stats.hits += 1;
                // Move to MRU position.
                let entry = self.entries.remove(i);
                let plan = entry.1.clone();
                self.entries.push(entry);
                Some(plan)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a plan, evicting the least-recently-used
    /// entry when over capacity.
    pub fn insert(&mut self, key: PlanKey, plan: GroupPlan) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.stats.evictions += 1;
        }
        self.entries.push((key, plan));
    }

    /// Apply a one-field market tick to every cached plan: each entry
    /// is **patched in place** via [`GroupPlan::apply_tick`] and re-keyed
    /// under its ticked market's fingerprint, so the next burst quoting
    /// the ticked market hits a plan bitwise-identical to a fresh build
    /// — instead of the cache silently serving stale pre-tick plans (or
    /// dropping everything and repaying every plan build).
    ///
    /// Entries the tick cannot patch (e.g. the delta fails validation
    /// against that entry's market) are evicted. Returns
    /// `(patched, evicted)`; the same counts accumulate in
    /// [`CacheStats::ticks_applied`] / [`CacheStats::tick_evictions`].
    pub fn retain_compatible(&mut self, delta: &MarketDelta) -> (u64, u64) {
        let mut patched = 0u64;
        let mut evicted = 0u64;
        self.entries.retain_mut(|(key, plan)| match plan.apply_tick(delta) {
            Ok(_) => {
                key.market = plan.market().cache_key();
                patched += 1;
                true
            }
            Err(_) => {
                evicted += 1;
                false
            }
        });
        self.stats.ticks_applied += patched;
        self.stats.tick_evictions += evicted;
        (patched, evicted)
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Plans currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_core::prelude::*;
    use std::sync::Arc;

    fn plan_for(maturity: f64) -> (PlanKey, GroupPlan) {
        let market = Arc::new(GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap());
        let portfolio = Portfolio::new(Pricer::new(Method::Fd1d(Fd1d::default())));
        let key = crate::coalesce::PlanKey {
            market: market.cache_key(),
            maturity: maturity.to_bits(),
            method: portfolio.pricer().method().cache_key(),
        };
        (key, portfolio.plan_group(&market, maturity).unwrap())
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let mut cache = PlanCache::new(2);
        let (k1, p1) = plan_for(1.0);
        let (k2, p2) = plan_for(2.0);
        let (k3, p3) = plan_for(3.0);
        assert!(cache.get(&k1).is_none());
        cache.insert(k1, p1);
        cache.insert(k2, p2);
        assert!(cache.get(&k1).is_some()); // k1 is now MRU
        cache.insert(k3, p3); // evicts k2 (LRU)
        assert!(cache.get(&k2).is_none());
        assert!(cache.get(&k1).is_some());
        assert!(cache.get(&k3).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert!((s.hit_rate() - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = PlanCache::new(0);
        let (k1, p1) = plan_for(1.0);
        cache.insert(k1, p1);
        assert!(cache.get(&k1).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
