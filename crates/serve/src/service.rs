//! The service: a bounded admission queue drained by a worker pool,
//! with coalesced batch execution and plan caching.
//!
//! ```text
//! submit ──▶ [bounded queue] ──▶ worker: drain in-flight ─▶ coalesce by PlanKey
//!    │                                   │                        │
//!    └─ Overloaded (shed)                │                 ┌──────┴──────┐
//!                                        │              cache hit    cache miss
//!                                        │              (≈0 s)       (build+insert)
//!                                        │                 └──────┬──────┘
//!                                        ▼                        ▼
//!                              naive: price per request   execute_group (fused
//!                                                          multi-RHS / shared-path)
//! ```
//!
//! Every response is bitwise-identical to a direct
//! [`Pricer::price`] of the same request: coalescing, caching and
//! shedding are purely scheduling decisions.

use crate::cache::PlanCache;
use crate::coalesce::{group_jobs, PlanKey};
use crate::request::{PriceRequest, PriceResponse, ServeConfig, Ticket};
use crate::stats::{Counters, ServiceStats};
use crate::ServeError;
use mdp_core::{Method, Portfolio, PriceReport, Pricer};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued request with its routing key and response channel.
#[derive(Debug)]
pub(crate) struct Job {
    pub req: PriceRequest,
    pub key: PlanKey,
    pub enqueued: Instant,
    pub tx: Sender<PriceResponse>,
}

/// Queue state behind the mutex.
#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Shared state between the handle and the workers.
struct Inner {
    state: Mutex<QueueState>,
    cv: Condvar,
    cfg: ServeConfig,
    base: Pricer,
    cache: Mutex<PlanCache>,
    counters: Counters,
    /// Accumulated plan seconds, split by hit/miss, stored as nanos in
    /// the atomic counters (f64 totals derived at snapshot time).
    _priv: (),
}

/// The pricing service handle: submit requests, read stats, shut down.
///
/// Dropping the handle closes the queue and joins the workers (pending
/// requests are drained and answered first).
pub struct PricingService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PricingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PricingService")
            .field("cfg", &self.inner.cfg)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl PricingService {
    /// Start a service pricing with `pricer` (method + backend) under
    /// the given configuration.
    pub fn start(pricer: Pricer, cfg: ServeConfig) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cfg,
            base: pricer,
            cache: Mutex::new(PlanCache::new(if cfg.coalesce { cfg.plan_cache } else { 0 })),
            counters: Counters::default(),
            _priv: (),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        PricingService { inner, workers }
    }

    /// Submit a request. Returns a [`Ticket`] to wait on, or sheds with
    /// [`ServeError::Overloaded`] when the bounded queue is full.
    pub fn submit(&self, req: PriceRequest) -> Result<Ticket, ServeError> {
        let method = self.method_of(&req);
        let key = PlanKey::of(&req.market, &req.product, &method);
        let (tx, rx) = channel();
        let id = req.id;
        {
            let mut state = self.inner.state.lock().expect("queue poisoned");
            if state.closed {
                return Err(ServeError::Closed);
            }
            if state.jobs.len() >= self.inner.cfg.queue_capacity {
                self.inner
                    .counters
                    .add(&self.inner.counters.shed, 1);
                return Err(ServeError::Overloaded {
                    capacity: self.inner.cfg.queue_capacity,
                });
            }
            state.jobs.push_back(Job {
                req,
                key,
                enqueued: Instant::now(),
                tx,
            });
        }
        self.inner.counters.add(&self.inner.counters.submitted, 1);
        self.inner.cv.notify_one();
        Ok(Ticket { id, rx })
    }

    /// Submit and block for the response (convenience for synchronous
    /// callers; sheds exactly like [`PricingService::submit`]).
    pub fn price(&self, req: PriceRequest) -> Result<PriceResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        let cache = self.inner.cache.lock().expect("cache poisoned").stats();
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            groups: c.groups.load(Ordering::Relaxed),
            grouped_requests: c.grouped_requests.load(Ordering::Relaxed),
            fused: c.fused.load(Ordering::Relaxed),
            cache,
            ticks_applied: cache.ticks_applied,
            tick_evictions: cache.tick_evictions,
            plan_seconds_hit: c.plan_nanos_hit.load(Ordering::Relaxed) as f64 * 1e-9,
            plan_seconds_miss: c.plan_nanos_miss.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }

    /// Apply a one-field market tick to every cached plan: entries are
    /// **delta-patched** in place (and re-keyed under the ticked
    /// market's fingerprint) instead of evicted, so the next burst
    /// quoting the ticked market pays `plan_seconds ≈ 0` and still
    /// prices bitwise-identically to a freshly built plan. Plans the
    /// tick cannot patch are evicted. Returns `(patched, evicted)`.
    pub fn apply_tick(&self, delta: &mdp_model::MarketDelta) -> (u64, u64) {
        self.inner
            .cache
            .lock()
            .expect("cache poisoned")
            .retain_compatible(delta)
    }

    /// Close the queue, drain pending requests, join the workers and
    /// return the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("queue poisoned");
            state.closed = true;
        }
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn method_of(&self, req: &PriceRequest) -> Method {
        req.method
            .clone()
            .unwrap_or_else(|| self.inner.base.method().clone())
    }
}

impl Drop for PricingService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let batch: Vec<Job> = {
            let mut state = inner.state.lock().expect("queue poisoned");
            loop {
                if !state.jobs.is_empty() {
                    break;
                }
                if state.closed {
                    return;
                }
                state = inner.cv.wait(state).expect("queue poisoned");
            }
            let take = if inner.cfg.coalesce {
                inner.cfg.max_batch.max(1).min(state.jobs.len())
            } else {
                1
            };
            state.jobs.drain(..take).collect()
        };
        // More work may remain; wake a sibling before pricing.
        inner.cv.notify_one();
        let drained = Instant::now();
        if inner.cfg.coalesce {
            serve_coalesced(&inner, batch, drained);
        } else {
            serve_naive(&inner, batch, drained);
        }
    }
}

/// The pool-of-pricers baseline: each request pays its own plan build,
/// exactly as a per-request `Pricer::price` loop would.
fn serve_naive(inner: &Inner, batch: Vec<Job>, drained: Instant) {
    for job in batch {
        let queue_seconds = (drained - job.enqueued).as_secs_f64();
        let pricer = pricer_for(inner, &job);
        let t0 = Instant::now();
        let outcome = pricer.price(&job.req.market, &job.req.product);
        let service_seconds = t0.elapsed().as_secs_f64();
        respond(
            inner,
            job,
            outcome,
            queue_seconds,
            service_seconds,
            1,
            false,
        );
    }
}

/// The coalesced path: group by plan key, fetch or build the group
/// plan, execute the group through the fused kernels.
fn serve_coalesced(inner: &Inner, batch: Vec<Job>, drained: Instant) {
    for (key, jobs) in group_jobs(batch) {
        let n = jobs.len();
        inner.counters.add(&inner.counters.groups, 1);
        inner
            .counters
            .add(&inner.counters.grouped_requests, n as u64);
        let portfolio = Portfolio::new(pricer_for(inner, &jobs[0]));
        let market = Arc::clone(&jobs[0].req.market);
        let maturity = jobs[0].req.product.maturity;

        // Plan phase: cache hit (≈ 0 s) or build-and-insert.
        let t_plan = Instant::now();
        let cached = inner.cache.lock().expect("cache poisoned").get(&key);
        let cache_hit = cached.is_some();
        let plan = match cached {
            Some(plan) => Ok(plan),
            None => portfolio.plan_group(&market, maturity).inspect(|plan| {
                let mut cache = inner.cache.lock().expect("cache poisoned");
                cache.insert(key, plan.clone());
            }),
        };
        let plan_s = t_plan.elapsed().as_secs_f64();
        let nanos = (plan_s * 1e9) as u64;
        if cache_hit {
            inner.counters.add(&inner.counters.plan_nanos_hit, nanos);
        } else {
            inner.counters.add(&inner.counters.plan_nanos_miss, nanos);
        }

        let mut plan = match plan {
            Ok(plan) => plan,
            Err(e) => {
                // The plan is payoff-independent: a build failure fails
                // every request of the group identically, exactly as
                // per-request plans would have.
                for job in jobs {
                    let queue_seconds = (drained - job.enqueued).as_secs_f64();
                    respond(inner, job, Err(e.clone()), queue_seconds, plan_s, n, false);
                }
                continue;
            }
        };

        let products: Vec<_> = jobs.iter().map(|j| j.req.product.clone()).collect();
        let t_exec = Instant::now();
        match portfolio.execute_group(&mut plan, &products, plan_s) {
            Ok((reports, fused)) => {
                inner.counters.add(&inner.counters.fused, fused as u64);
                let exec_share = t_exec.elapsed().as_secs_f64() / n as f64;
                for (job, report) in jobs.into_iter().zip(reports) {
                    let queue_seconds = (drained - job.enqueued).as_secs_f64();
                    respond(
                        inner,
                        job,
                        Ok(report),
                        queue_seconds,
                        plan_s + exec_share,
                        n,
                        cache_hit,
                    );
                }
            }
            Err(_) => {
                // A poison product fails group execution; isolate it by
                // falling back to per-request pricing so every innocent
                // neighbour still gets its (bitwise-identical) answer.
                for job in jobs {
                    let queue_seconds = (drained - job.enqueued).as_secs_f64();
                    let pricer = pricer_for(inner, &job);
                    let t0 = Instant::now();
                    let outcome = pricer.price(&job.req.market, &job.req.product);
                    let service_seconds = t0.elapsed().as_secs_f64();
                    respond(inner, job, outcome, queue_seconds, service_seconds, n, false);
                }
            }
        }
    }
}

fn pricer_for(inner: &Inner, job: &Job) -> Pricer {
    match &job.req.method {
        None => inner.base.clone(),
        Some(m) => Pricer::new(m.clone()).backend(inner.base.backend_ref()),
    }
}

#[allow(clippy::too_many_arguments)]
fn respond(
    inner: &Inner,
    job: Job,
    outcome: Result<PriceReport, mdp_core::PriceError>,
    queue_seconds: f64,
    service_seconds: f64,
    batch_size: usize,
    cache_hit: bool,
) {
    if outcome.is_err() {
        inner.counters.add(&inner.counters.errors, 1);
    }
    inner.counters.add(&inner.counters.completed, 1);
    // A dropped ticket just means the caller stopped waiting.
    let _ = job.tx.send(PriceResponse {
        id: job.req.id,
        outcome,
        queue_seconds,
        service_seconds,
        batch_size,
        cache_hit,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_core::prelude::*;
    use mdp_model::Payoff;

    fn market() -> Arc<GbmMarket> {
        Arc::new(GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap())
    }

    fn call(id: u64, strike: f64) -> PriceRequest {
        PriceRequest::new(
            id,
            market(),
            Product::european(
                Payoff::BasketCall {
                    weights: vec![1.0],
                    strike,
                },
                1.0,
            ),
        )
    }

    #[test]
    fn responses_match_direct_pricing_bitwise() {
        let pricer = Pricer::new(Method::Fd1d(Fd1d::default()));
        let service = PricingService::start(pricer.clone(), ServeConfig::default());
        let tickets: Vec<_> = (0..16)
            .map(|i| service.submit(call(i, 80.0 + 2.5 * i as f64)).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().unwrap();
            assert_eq!(resp.id, i as u64);
            let direct = pricer
                .price(&market(), &call(resp.id, 80.0 + 2.5 * i as f64).product)
                .unwrap();
            assert_eq!(
                resp.outcome.unwrap().price.to_bits(),
                direct.price.to_bits()
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn bounded_queue_sheds_with_typed_error() {
        // No workers can drain while we hold submissions faster than
        // pricing: capacity 2 with slow FD plans forces a shed.
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..Default::default()
        };
        let service = PricingService::start(
            Pricer::new(Method::Fd1d(Fd1d {
                space_points: 2001,
                time_steps: 2000,
                ..Fd1d::default()
            })),
            cfg,
        );
        let mut shed = 0;
        let mut tickets = Vec::new();
        for i in 0..64 {
            match service.submit(call(i, 100.0)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { capacity }) => {
                    assert_eq!(capacity, 2);
                    shed += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(shed > 0, "queue of 2 must shed under a 64-burst");
        for t in tickets {
            assert!(t.wait().unwrap().outcome.is_ok());
        }
        assert_eq!(service.stats().shed, shed);
    }

    #[test]
    fn cache_hits_after_first_group_and_plan_time_collapses() {
        let service = PricingService::start(
            Pricer::new(Method::Fd1d(Fd1d::default())),
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        );
        // First burst builds the plan; the follow-ups hit the cache.
        for round in 0..3 {
            let tickets: Vec<_> = (0..8)
                .map(|i| service.submit(call(round * 8 + i, 90.0 + i as f64)).unwrap())
                .collect();
            for t in tickets {
                t.wait().unwrap();
            }
        }
        let stats = service.shutdown();
        assert!(stats.cache.hits >= 1, "repeat bursts must hit: {stats:?}");
        assert_eq!(stats.cache.misses, 1);
        // The hit path skips plan construction entirely.
        assert!(
            stats.cache.hits == 0
                || stats.mean_plan_seconds_hit() < stats.mean_plan_seconds_miss(),
            "hit plan time {} !< miss plan time {}",
            stats.mean_plan_seconds_hit(),
            stats.mean_plan_seconds_miss()
        );
    }

    #[test]
    fn poison_request_does_not_fail_neighbours() {
        let service = PricingService::start(
            Pricer::new(Method::Fd1d(Fd1d::default())),
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        );
        // An Asian payoff is path-dependent: FD rejects it at execute.
        let poison = PriceRequest::new(
            99,
            market(),
            Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0),
        );
        let good = call(1, 100.0);
        let t_poison = service.submit(poison).unwrap();
        let t_good = service.submit(good).unwrap();
        assert!(t_poison.wait().unwrap().outcome.is_err());
        let good_resp = t_good.wait().unwrap();
        assert!(good_resp.outcome.is_ok(), "neighbour must still price");
        let stats = service.shutdown();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn tick_patches_cached_plans_and_keeps_them_hot() {
        use mdp_model::MarketDelta;
        let pricer = Pricer::new(Method::Fd1d(Fd1d::default()));
        let service = PricingService::start(
            pricer.clone(),
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        );
        // Burst 1 builds and caches the group plan.
        let tickets: Vec<_> = (0..8)
            .map(|i| service.submit(call(i, 90.0 + i as f64)).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap().outcome.unwrap();
        }
        // The market ticks: patch the cached plan instead of evicting.
        let delta = MarketDelta::Spot {
            asset: 0,
            spot: 103.5,
        };
        let (patched, evicted) = service.apply_tick(&delta);
        assert_eq!((patched, evicted), (1, 0));
        // Burst 2 quotes the ticked market: it must hit the patched
        // plan and price bitwise like a direct fresh-plan pricer.
        let ticked = Arc::new(market().apply_delta(&delta).unwrap());
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                let product = call(8 + i, 90.0 + i as f64).product;
                service
                    .submit(PriceRequest::new(8 + i, Arc::clone(&ticked), product))
                    .unwrap()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().unwrap();
            assert!(resp.cache_hit, "ticked plan must stay hot");
            let direct = pricer
                .price(&ticked, &call(0, 90.0 + i as f64).product)
                .unwrap();
            assert_eq!(
                resp.outcome.unwrap().price.to_bits(),
                direct.price.to_bits()
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.ticks_applied, 1);
        assert_eq!(stats.tick_evictions, 0);
        assert_eq!(stats.cache.ticks_applied, 1);
        assert_eq!(stats.cache.misses, 1, "second burst must not rebuild");
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let service = PricingService::start(
            Pricer::new(Method::Analytic),
            ServeConfig::default(),
        );
        {
            let mut state = service.inner.state.lock().unwrap();
            state.closed = true;
        }
        assert!(matches!(
            service.submit(call(0, 100.0)),
            Err(ServeError::Closed)
        ));
    }
}
