//! The service: a bounded admission queue drained by a worker pool,
//! with coalesced batch execution, plan caching, and a resilience
//! layer — deadlines with cooperative cancellation, budgeted retries,
//! per-engine circuit breakers, and explicit graceful degradation.
//!
//! ```text
//! submit ──▶ [priority lanes] ──▶ worker: drain ─▶ reclaim expired (0 work)
//!    │                                  │
//!    └─ Overloaded (shed)               ▼
//!                             route: breaker open? ──▶ reroute (auto table)
//!                                    budget < EWMA? ──▶ degrade (tagged)
//!                                        │
//!                                        ▼
//!                         coalesce by PlanKey ─▶ execute under catch_unwind
//!                                        │            │ cancel token polls
//!                                        ▼            ▼
//!                                  respond        panic/NaN → retry w/ backoff
//! ```
//!
//! Every `Ok` response tagged [`Fidelity::Full`] is bitwise-identical
//! to a direct [`Pricer::price`] of the same request: coalescing,
//! caching, shedding, cancellation polling and retries are purely
//! scheduling decisions. Responses the resilience layer repriced are
//! tagged [`Fidelity::Rerouted`] or [`Fidelity::Degraded`] — never
//! silently substituted.

use crate::breaker::{Admit, BreakerRegistry, BreakerState, Transition};
use crate::cache::PlanCache;
use crate::coalesce::{group_jobs, PlanKey};
use crate::fault::Fault;
use crate::request::{Fidelity, PriceRequest, PriceResponse, ServeConfig, Ticket};
use crate::stats::{Counters, ServiceStats};
use crate::ServeError;
use mdp_core::{CancelToken, Method, Portfolio, PriceError, PriceReport, Pricer};
use mdp_math::rng::SplitMix64;
use mdp_model::{GbmMarket, Product};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued request with its routing key, absolute deadline and
/// response channel.
#[derive(Debug)]
pub(crate) struct Job {
    pub req: PriceRequest,
    pub key: PlanKey,
    pub enqueued: Instant,
    /// The request's relative budget resolved against submission time.
    pub deadline: Option<Instant>,
    pub tx: Sender<PriceResponse>,
}

/// Queue state behind the mutex: one FIFO lane per priority class.
#[derive(Debug)]
struct QueueState {
    lanes: [VecDeque<Job>; 3],
    len: usize,
    closed: bool,
}

impl QueueState {
    /// Drain up to `take` jobs, high lane first, FIFO within a lane.
    fn drain(&mut self, take: usize) -> Vec<Job> {
        let mut out = Vec::with_capacity(take.min(self.len));
        for lane in &mut self.lanes {
            while out.len() < take {
                match lane.pop_front() {
                    Some(job) => out.push(job),
                    None => break,
                }
            }
        }
        self.len -= out.len();
        out
    }
}

/// Shared state between the handle and the workers.
struct Inner {
    state: Mutex<QueueState>,
    cv: Condvar,
    cfg: ServeConfig,
    base: Pricer,
    cache: Mutex<PlanCache>,
    counters: Counters,
    breakers: BreakerRegistry,
    /// Per-engine EWMA of observed execute seconds (`e ← 0.8e + 0.2x`),
    /// the latency estimate behind deadline-budget degradation.
    ewma: Mutex<HashMap<u64, f64>>,
}

/// Recover a mutex guard even if a panicking worker poisoned the lock:
/// all serve-layer critical sections leave their data consistent at
/// every await-free step, and pricing itself never runs under a lock,
/// so a poisoned mutex carries no torn state worth dying over.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The pricing service handle: submit requests, read stats, shut down.
///
/// Dropping the handle closes the queue and joins the workers (pending
/// requests are drained and answered first).
pub struct PricingService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PricingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PricingService")
            .field("cfg", &self.inner.cfg)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl PricingService {
    /// Start a service pricing with `pricer` (method + backend) under
    /// the given configuration.
    pub fn start(pricer: Pricer, cfg: ServeConfig) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            cfg,
            base: pricer,
            cache: Mutex::new(PlanCache::new(if cfg.coalesce { cfg.plan_cache } else { 0 })),
            counters: Counters::default(),
            breakers: BreakerRegistry::new(cfg.breaker),
            ewma: Mutex::new(HashMap::new()),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        PricingService { inner, workers }
    }

    /// Submit a request. Returns a [`Ticket`] to wait on, or sheds with
    /// [`ServeError::Overloaded`] when the bounded queue is full.
    pub fn submit(&self, req: PriceRequest) -> Result<Ticket, ServeError> {
        let method = method_of(&self.inner, &req);
        let key = PlanKey::of(&req.market, &req.product, &method);
        let (tx, rx) = channel();
        let id = req.id;
        let now = Instant::now();
        let deadline = req.deadline.map(|budget| now + budget);
        let lane = req.priority.lane();
        {
            let mut state = relock(&self.inner.state);
            if state.closed {
                return Err(ServeError::Closed);
            }
            if state.len >= self.inner.cfg.queue_capacity {
                self.inner.counters.add(&self.inner.counters.shed, 1);
                return Err(ServeError::Overloaded {
                    capacity: self.inner.cfg.queue_capacity,
                });
            }
            state.lanes[lane].push_back(Job {
                req,
                key,
                enqueued: now,
                deadline,
                tx,
            });
            state.len += 1;
        }
        self.inner.counters.add(&self.inner.counters.submitted, 1);
        self.inner.cv.notify_one();
        Ok(Ticket { id, rx })
    }

    /// Submit and block for the response (convenience for synchronous
    /// callers; sheds exactly like [`PricingService::submit`]).
    pub fn price(&self, req: PriceRequest) -> Result<PriceResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        let cache = relock(&self.inner.cache).stats();
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            groups: c.groups.load(Ordering::Relaxed),
            grouped_requests: c.grouped_requests.load(Ordering::Relaxed),
            fused: c.fused.load(Ordering::Relaxed),
            cache,
            ticks_applied: cache.ticks_applied,
            tick_evictions: cache.tick_evictions,
            plan_seconds_hit: c.plan_nanos_hit.load(Ordering::Relaxed) as f64 * 1e-9,
            plan_seconds_miss: c.plan_nanos_miss.load(Ordering::Relaxed) as f64 * 1e-9,
            deadline_pre: c.deadline_pre.load(Ordering::Relaxed),
            deadline_mid: c.deadline_mid.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            panics_caught: c.panics_caught.load(Ordering::Relaxed),
            numerical: c.numerical.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            rerouted: c.rerouted.load(Ordering::Relaxed),
            breaker_rejections: c.breaker_rejections.load(Ordering::Relaxed),
            breaker_trips: self.inner.breakers.trips(),
            faults_injected: c.faults_injected.load(Ordering::Relaxed),
        }
    }

    /// The breaker's current state for a method (Closed if never used).
    pub fn breaker_state(&self, method: &Method) -> BreakerState {
        self.inner.breakers.state(method.cache_key())
    }

    /// Every breaker transition so far, in order — the trip/recovery
    /// timeline.
    pub fn breaker_history(&self) -> Vec<Transition> {
        self.inner.breakers.history()
    }

    /// Apply a one-field market tick to every cached plan: entries are
    /// **delta-patched** in place (and re-keyed under the ticked
    /// market's fingerprint) instead of evicted, so the next burst
    /// quoting the ticked market pays `plan_seconds ≈ 0` and still
    /// prices bitwise-identically to a freshly built plan. Plans the
    /// tick cannot patch are evicted. Returns `(patched, evicted)`.
    pub fn apply_tick(&self, delta: &mdp_model::MarketDelta) -> (u64, u64) {
        relock(&self.inner.cache).retain_compatible(delta)
    }

    /// Close the queue, drain pending requests, join the workers and
    /// return the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        {
            let mut state = relock(&self.inner.state);
            state.closed = true;
        }
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for PricingService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn method_of(inner: &Inner, req: &PriceRequest) -> Method {
    req.method
        .clone()
        .unwrap_or_else(|| inner.base.method().clone())
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let batch: Vec<Job> = {
            let mut state = relock(&inner.state);
            loop {
                if state.len > 0 {
                    break;
                }
                if state.closed {
                    return;
                }
                state = inner
                    .cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let take = if inner.cfg.coalesce {
                inner.cfg.max_batch.max(1).min(state.len)
            } else {
                1
            };
            state.drain(take)
        };
        // More work may remain; wake a sibling before pricing.
        inner.cv.notify_one();
        let drained = Instant::now();
        // Reclaim: jobs whose deadline expired in the queue are
        // answered typed with zero engine work.
        let (live, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|j| j.deadline.is_none_or(|d| drained < d));
        for job in expired {
            inner.counters.add(&inner.counters.deadline_pre, 1);
            let queue_seconds = (drained - job.enqueued).as_secs_f64();
            respond(
                &inner,
                job,
                Err(PriceError::DeadlineExceeded),
                queue_seconds,
                0.0,
                1,
                false,
                Fidelity::Full,
                0,
            );
        }
        if live.is_empty() {
            continue;
        }
        if inner.cfg.coalesce {
            serve_coalesced(&inner, live, drained);
        } else {
            for job in live {
                price_resilient(&inner, job, drained, 1);
            }
        }
    }
}

/// The coalesced path: peel off fault-targeted jobs (so injected
/// chaos cannot fail innocent neighbours), group the rest by plan key,
/// and execute each group through the fused kernels.
fn serve_coalesced(inner: &Inner, batch: Vec<Job>, drained: Instant) {
    let (faulted, clean): (Vec<Job>, Vec<Job>) = match inner.cfg.fault {
        Some(fp) if fp.has_chaos() => batch
            .into_iter()
            .partition(|j| fp.roll(j.req.id, 1).is_some()),
        _ => (Vec::new(), batch),
    };
    for job in faulted {
        price_resilient(inner, job, drained, 1);
    }
    for (key, jobs) in group_jobs(clean) {
        serve_group(inner, key, jobs, drained);
    }
}

/// Execute one same-key group: route (breaker / budget), plan (cache
/// hit or build), execute fused under panic isolation, respond.
fn serve_group(inner: &Inner, key: PlanKey, jobs: Vec<Job>, drained: Instant) {
    let n = jobs.len();
    inner.counters.add(&inner.counters.groups, 1);
    inner
        .counters
        .add(&inner.counters.grouped_requests, n as u64);

    let requested = method_of(inner, &jobs[0].req);
    let remaining = group_budget(&jobs, drained);
    let route = decide_route(
        inner,
        &jobs[0].req.market,
        &jobs[0].req.product,
        &requested,
        remaining,
        n as u64,
    );
    let (method, fidelity) = match route {
        Ok(r) => r,
        Err(e) => {
            for job in jobs {
                let queue_seconds = (drained - job.enqueued).as_secs_f64();
                respond(
                    inner,
                    job,
                    Err(e.clone()),
                    queue_seconds,
                    0.0,
                    n,
                    false,
                    Fidelity::Full,
                    1,
                );
            }
            return;
        }
    };
    // A rerouted/degraded method is a different engine identity: its
    // plans live under their own cache key and can never alias the
    // full-fidelity entries.
    let key = if fidelity == Fidelity::Full {
        key
    } else {
        PlanKey::of(&jobs[0].req.market, &jobs[0].req.product, &method)
    };
    let mkey = method.cache_key();
    let pricer = Pricer::new(method).backend(inner.base.backend_ref());
    let portfolio = Portfolio::new(pricer);
    let market = Arc::clone(&jobs[0].req.market);
    let maturity = jobs[0].req.product.maturity;

    // Plan phase: cache hit (≈ 0 s) or build-and-insert.
    let t_plan = Instant::now();
    let cached = relock(&inner.cache).get(&key);
    let cache_hit = cached.is_some();
    let plan = match cached {
        Some(plan) => Ok(plan),
        None => portfolio.plan_group(&market, maturity).inspect(|plan| {
            relock(&inner.cache).insert(key, plan.clone());
        }),
    };
    let plan_s = t_plan.elapsed().as_secs_f64();
    let nanos = (plan_s * 1e9) as u64;
    if cache_hit {
        inner.counters.add(&inner.counters.plan_nanos_hit, nanos);
    } else {
        inner.counters.add(&inner.counters.plan_nanos_miss, nanos);
    }

    let mut plan = match plan {
        Ok(plan) => plan,
        Err(e) => {
            // The plan is payoff-independent: a build failure fails
            // every request of the group identically, exactly as
            // per-request plans would have.
            for job in jobs {
                let queue_seconds = (drained - job.enqueued).as_secs_f64();
                respond(
                    inner,
                    job,
                    Err(e.clone()),
                    queue_seconds,
                    plan_s,
                    n,
                    false,
                    Fidelity::Full,
                    1,
                );
            }
            return;
        }
    };

    // The group's cancel token: the latest member deadline, so the run
    // aborts only once no member can still use the result. Mixed
    // groups (any member without a deadline) run uncancelled.
    plan.set_cancel(group_token(&jobs));

    let products: Vec<_> = jobs.iter().map(|j| j.req.product.clone()).collect();
    let t_exec = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        portfolio.execute_group(&mut plan, &products, plan_s)
    }));
    let exec_elapsed = t_exec.elapsed().as_secs_f64();
    match result {
        Ok(Ok((reports, fused))) => {
            inner.counters.add(&inner.counters.fused, fused as u64);
            inner.breakers.record(mkey, true);
            update_ewma(inner, mkey, exec_elapsed / n as f64);
            let exec_share = exec_elapsed / n as f64;
            for (job, report) in jobs.into_iter().zip(reports) {
                let queue_seconds = (drained - job.enqueued).as_secs_f64();
                respond(
                    inner,
                    job,
                    Ok(report),
                    queue_seconds,
                    plan_s + exec_share,
                    n,
                    cache_hit,
                    fidelity,
                    1,
                );
            }
        }
        Ok(Err(PriceError::DeadlineExceeded)) => {
            // The group token tripped: it carries the *latest* member
            // deadline, so every member's budget is gone. Partial
            // engine state was discarded by the abort.
            inner
                .counters
                .add(&inner.counters.deadline_mid, n as u64);
            for job in jobs {
                let queue_seconds = (drained - job.enqueued).as_secs_f64();
                respond(
                    inner,
                    job,
                    Err(PriceError::DeadlineExceeded),
                    queue_seconds,
                    plan_s + exec_elapsed / n as f64,
                    n,
                    cache_hit,
                    fidelity,
                    1,
                );
            }
        }
        Ok(Err(_)) | Err(_) => {
            // A panic is an engine-health signal; a per-request error
            // (e.g. one poison payoff in the group) is not.
            if let Err(payload) = result {
                inner.counters.add(&inner.counters.panics_caught, 1);
                inner.breakers.record(mkey, false);
                drop(payload);
            }
            // Isolate the failure: per-request resilient pricing gives
            // every innocent neighbour its (bitwise-identical) answer.
            for job in jobs {
                price_resilient(inner, job, drained, n);
            }
        }
    }
}

/// Price one job with the full resilience loop: deadline checks,
/// breaker routing, fault injection, panic isolation, budgeted retries
/// with deterministic backoff.
fn price_resilient(inner: &Inner, job: Job, drained: Instant, batch_size: usize) {
    let queue_seconds = (drained - job.enqueued).as_secs_f64();
    let requested = method_of(inner, &job.req);
    let t0 = Instant::now();
    let max_attempts = inner.cfg.retry.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        // Budget gone? Answer typed without spending engine work.
        if let Some(d) = job.deadline {
            if Instant::now() >= d {
                let c = if attempt == 1 {
                    &inner.counters.deadline_pre
                } else {
                    &inner.counters.deadline_mid
                };
                inner.counters.add(c, 1);
                respond(
                    inner,
                    job,
                    Err(PriceError::DeadlineExceeded),
                    queue_seconds,
                    t0.elapsed().as_secs_f64(),
                    batch_size,
                    false,
                    Fidelity::Full,
                    attempt - 1,
                );
                return;
            }
        }
        let remaining = job.deadline.map(|d| d - Instant::now());
        let route = decide_route(
            inner,
            &job.req.market,
            &job.req.product,
            &requested,
            remaining,
            1,
        );
        let (method, fidelity) = match route {
            Ok(r) => r,
            Err(e) => {
                respond(
                    inner,
                    job,
                    Err(e),
                    queue_seconds,
                    t0.elapsed().as_secs_f64(),
                    batch_size,
                    false,
                    Fidelity::Full,
                    attempt,
                );
                return;
            }
        };
        let mkey = method.cache_key();
        let engine = method.name();
        let fault = inner
            .cfg
            .fault
            .and_then(|fp| fp.roll(job.req.id, attempt));
        if fault.is_some() {
            inner.counters.add(&inner.counters.faults_injected, 1);
        }
        let pricer = Pricer::new(method).backend(inner.base.backend_ref());
        let token = job
            .deadline
            .map_or_else(CancelToken::never, CancelToken::with_deadline);
        let market = Arc::clone(&job.req.market);
        let product = job.req.product.clone();
        let stall = inner.cfg.fault.map(|fp| fp.stall);
        // The isolation boundary: anything the engine (or an injected
        // fault) throws is caught here and classified below; the
        // worker thread itself never dies.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                Some(Fault::Stall) => {
                    std::thread::sleep(stall.unwrap_or(Duration::ZERO));
                }
                Some(Fault::Panic) => panic!("injected worker panic"),
                _ => {}
            }
            let mut plan = pricer.plan(&market, product.maturity)?;
            plan.set_cancel(token.clone());
            let mut report = plan.execute(&product)?;
            if matches!(fault, Some(Fault::Poison)) {
                report.price = f64::NAN;
            }
            // Core's own post-condition can't see the poison (it flips
            // the price after execute returned), so re-check here.
            if !report.price.is_finite() {
                return Err(PriceError::Numerical {
                    engine,
                    value: report.price,
                });
            }
            Ok(report)
        }));
        let outcome: Result<PriceReport, PriceError> = match caught {
            Ok(r) => r,
            Err(payload) => {
                inner.counters.add(&inner.counters.panics_caught, 1);
                Err(PriceError::Panicked(panic_message(payload)))
            }
        };
        match outcome {
            Ok(report) => {
                inner.breakers.record(mkey, true);
                update_ewma(inner, mkey, report.execute_seconds);
                respond(
                    inner,
                    job,
                    Ok(report),
                    queue_seconds,
                    t0.elapsed().as_secs_f64(),
                    batch_size,
                    false,
                    fidelity,
                    attempt,
                );
                return;
            }
            Err(PriceError::DeadlineExceeded) => {
                // The token tripped mid-execute; the budget is gone, so
                // a retry could only fail the same way.
                inner.counters.add(&inner.counters.deadline_mid, 1);
                respond(
                    inner,
                    job,
                    Err(PriceError::DeadlineExceeded),
                    queue_seconds,
                    t0.elapsed().as_secs_f64(),
                    batch_size,
                    false,
                    fidelity,
                    attempt,
                );
                return;
            }
            Err(e @ (PriceError::Panicked(_) | PriceError::Numerical { .. })) => {
                // Engine faults: health signal + retryable.
                inner.breakers.record(mkey, false);
                if matches!(e, PriceError::Numerical { .. }) {
                    inner.counters.add(&inner.counters.numerical, 1);
                }
                if attempt < max_attempts {
                    inner.counters.add(&inner.counters.retries, 1);
                    backoff_sleep(inner, job.req.id, attempt, job.deadline);
                    continue;
                }
                respond(
                    inner,
                    job,
                    Err(e),
                    queue_seconds,
                    t0.elapsed().as_secs_f64(),
                    batch_size,
                    false,
                    fidelity,
                    attempt,
                );
                return;
            }
            Err(e) => {
                // Deterministic request errors (validation, unsupported
                // combinations): retrying cannot change the answer, and
                // they say nothing about engine health.
                respond(
                    inner,
                    job,
                    Err(e),
                    queue_seconds,
                    t0.elapsed().as_secs_f64(),
                    batch_size,
                    false,
                    fidelity,
                    attempt,
                );
                return;
            }
        }
    }
}

/// Pick the engine for a request (or same-key group): the requested
/// method when its breaker admits and the budget suffices; otherwise
/// reroute via the `auto()` table, then degrade, then fail typed.
fn decide_route(
    inner: &Inner,
    market: &GbmMarket,
    product: &Product,
    requested: &Method,
    remaining: Option<Duration>,
    count: u64,
) -> Result<(Method, Fidelity), PriceError> {
    let rkey = requested.cache_key();
    match inner.breakers.admit(rkey) {
        Admit::Allow | Admit::Probe => {
            // Healthy engine — but if the remaining budget is smaller
            // than its observed latency, a full-fidelity run would only
            // burn the budget and miss. Walk down the degradation
            // ladder until the estimate fits (or the ladder ends).
            if inner.cfg.degradation {
                if let (Some(budget), Some(est)) = (remaining, ewma_of(inner, rkey)) {
                    if est > budget.as_secs_f64() {
                        let mut m = requested.clone();
                        let mut levels = 0u32;
                        while let Some(next) = m.degrade() {
                            levels += 1;
                            let fits = ewma_of(inner, next.cache_key())
                                .is_none_or(|e| e <= budget.as_secs_f64());
                            m = next;
                            if fits {
                                break;
                            }
                        }
                        if levels > 0 {
                            return Ok((m, Fidelity::Degraded { levels }));
                        }
                    }
                }
            }
            Ok((requested.clone(), Fidelity::Full))
        }
        Admit::Reject => {
            inner
                .counters
                .add(&inner.counters.breaker_rejections, count);
            // Route around the tripped engine: the auto() table's
            // choice for this product, if it is a *different* engine
            // whose breaker admits.
            let alt = Pricer::auto(market, product).method().clone();
            let alt_name = alt.name();
            if alt.cache_key() != rkey
                && !matches!(inner.breakers.admit(alt.cache_key()), Admit::Reject)
            {
                return Ok((alt, Fidelity::Rerouted { engine: alt_name }));
            }
            // No healthy reroute: degrade the requested method (the
            // degraded variant is a distinct breaker identity).
            if inner.cfg.degradation {
                if let Some(d) = requested.degrade() {
                    if !matches!(inner.breakers.admit(d.cache_key()), Admit::Reject) {
                        return Ok((d, Fidelity::Degraded { levels: 1 }));
                    }
                }
            }
            Err(PriceError::CircuitOpen {
                engine: requested.name(),
            })
        }
    }
}

/// The group's shared cancel token: the latest member deadline when
/// every member has one, inert otherwise (a member without a deadline
/// must never have its result aborted).
fn group_token(jobs: &[Job]) -> CancelToken {
    let mut latest: Option<Instant> = None;
    for j in jobs {
        match j.deadline {
            None => return CancelToken::never(),
            Some(d) => latest = Some(latest.map_or(d, |l| l.max(d))),
        }
    }
    latest.map_or_else(CancelToken::never, CancelToken::with_deadline)
}

/// The tightest remaining budget across the group, for the routing
/// decision — only meaningful when every member carries a deadline.
fn group_budget(jobs: &[Job], now: Instant) -> Option<Duration> {
    let mut min: Option<Instant> = None;
    for j in jobs {
        match j.deadline {
            None => return None,
            Some(d) => min = Some(min.map_or(d, |m| m.min(d))),
        }
    }
    min.map(|m| m.saturating_duration_since(now))
}

fn update_ewma(inner: &Inner, key: u64, x: f64) {
    let mut map = relock(&inner.ewma);
    match map.get_mut(&key) {
        Some(e) => *e = 0.8 * *e + 0.2 * x,
        None => {
            map.insert(key, x);
        }
    }
}

fn ewma_of(inner: &Inner, key: u64) -> Option<f64> {
    relock(&inner.ewma).get(&key).copied()
}

/// Exponential backoff with deterministic jitter: attempt `a` sleeps
/// `base · 2^(a-1) · j`, `j ∈ [0.5, 1.5)` a pure hash of
/// `(seed, id, a)`, capped by the remaining deadline budget.
fn backoff_sleep(inner: &Inner, id: u64, attempt: u32, deadline: Option<Instant>) {
    let retry = inner.cfg.retry;
    let word = SplitMix64::mix(retry.jitter_seed ^ SplitMix64::mix(id) ^ u64::from(attempt));
    let jitter = 0.5 + (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let scale = f64::from(1u32 << (attempt - 1).min(16));
    let mut dur = Duration::from_secs_f64(retry.base_backoff.as_secs_f64() * scale * jitter);
    if let Some(d) = deadline {
        let now = Instant::now();
        if now >= d {
            return;
        }
        dur = dur.min(d - now);
    }
    std::thread::sleep(dur);
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn respond(
    inner: &Inner,
    job: Job,
    outcome: Result<PriceReport, mdp_core::PriceError>,
    queue_seconds: f64,
    service_seconds: f64,
    batch_size: usize,
    cache_hit: bool,
    fidelity: Fidelity,
    attempts: u32,
) {
    if outcome.is_err() {
        inner.counters.add(&inner.counters.errors, 1);
    } else {
        match fidelity {
            Fidelity::Full => {}
            Fidelity::Rerouted { .. } => inner.counters.add(&inner.counters.rerouted, 1),
            Fidelity::Degraded { .. } => inner.counters.add(&inner.counters.degraded, 1),
        }
    }
    inner.counters.add(&inner.counters.completed, 1);
    // A dropped ticket just means the caller stopped waiting.
    let _ = job.tx.send(PriceResponse {
        id: job.req.id,
        outcome,
        queue_seconds,
        service_seconds,
        batch_size,
        cache_hit,
        fidelity,
        attempts,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ServeFaultPlan;
    use crate::request::Priority;
    use mdp_core::prelude::*;
    use mdp_model::Payoff;

    fn market() -> Arc<GbmMarket> {
        Arc::new(GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap())
    }

    fn call(id: u64, strike: f64) -> PriceRequest {
        PriceRequest::new(
            id,
            market(),
            Product::european(
                Payoff::BasketCall {
                    weights: vec![1.0],
                    strike,
                },
                1.0,
            ),
        )
    }

    fn slow_fd() -> Method {
        Method::Fd1d(Fd1d {
            space_points: 2001,
            time_steps: 2000,
            ..Fd1d::default()
        })
    }

    #[test]
    fn responses_match_direct_pricing_bitwise() {
        let pricer = Pricer::new(Method::Fd1d(Fd1d::default()));
        let service = PricingService::start(pricer.clone(), ServeConfig::default());
        let tickets: Vec<_> = (0..16)
            .map(|i| service.submit(call(i, 80.0 + 2.5 * i as f64)).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().unwrap();
            assert_eq!(resp.id, i as u64);
            assert_eq!(resp.fidelity, Fidelity::Full);
            assert_eq!(resp.attempts, 1);
            let direct = pricer
                .price(&market(), &call(resp.id, 80.0 + 2.5 * i as f64).product)
                .unwrap();
            assert_eq!(
                resp.outcome.unwrap().price.to_bits(),
                direct.price.to_bits()
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.degraded + stats.rerouted, 0);
    }

    #[test]
    fn bounded_queue_sheds_with_typed_error() {
        // No workers can drain while we hold submissions faster than
        // pricing: capacity 2 with slow FD plans forces a shed.
        let cfg = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..Default::default()
        };
        let service = PricingService::start(Pricer::new(slow_fd()), cfg);
        let mut shed = 0;
        let mut tickets = Vec::new();
        for i in 0..64 {
            match service.submit(call(i, 100.0)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { capacity }) => {
                    assert_eq!(capacity, 2);
                    shed += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(shed > 0, "queue of 2 must shed under a 64-burst");
        for t in tickets {
            assert!(t.wait().unwrap().outcome.is_ok());
        }
        assert_eq!(service.stats().shed, shed);
    }

    #[test]
    fn cache_hits_after_first_group_and_plan_time_collapses() {
        let service = PricingService::start(
            Pricer::new(Method::Fd1d(Fd1d::default())),
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        );
        // First burst builds the plan; the follow-ups hit the cache.
        for round in 0..3 {
            let tickets: Vec<_> = (0..8)
                .map(|i| service.submit(call(round * 8 + i, 90.0 + i as f64)).unwrap())
                .collect();
            for t in tickets {
                t.wait().unwrap();
            }
        }
        let stats = service.shutdown();
        assert!(stats.cache.hits >= 1, "repeat bursts must hit: {stats:?}");
        assert_eq!(stats.cache.misses, 1);
        // The hit path skips plan construction entirely.
        assert!(
            stats.cache.hits == 0
                || stats.mean_plan_seconds_hit() < stats.mean_plan_seconds_miss(),
            "hit plan time {} !< miss plan time {}",
            stats.mean_plan_seconds_hit(),
            stats.mean_plan_seconds_miss()
        );
    }

    #[test]
    fn poison_request_does_not_fail_neighbours() {
        let service = PricingService::start(
            Pricer::new(Method::Fd1d(Fd1d::default())),
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        );
        // An Asian payoff is path-dependent: FD rejects it at execute.
        let poison = PriceRequest::new(
            99,
            market(),
            Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0),
        );
        let good = call(1, 100.0);
        let t_poison = service.submit(poison).unwrap();
        let t_good = service.submit(good).unwrap();
        assert!(t_poison.wait().unwrap().outcome.is_err());
        let good_resp = t_good.wait().unwrap();
        assert!(good_resp.outcome.is_ok(), "neighbour must still price");
        let stats = service.shutdown();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn tick_patches_cached_plans_and_keeps_them_hot() {
        use mdp_model::MarketDelta;
        let pricer = Pricer::new(Method::Fd1d(Fd1d::default()));
        let service = PricingService::start(
            pricer.clone(),
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        );
        // Burst 1 builds and caches the group plan.
        let tickets: Vec<_> = (0..8)
            .map(|i| service.submit(call(i, 90.0 + i as f64)).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap().outcome.unwrap();
        }
        // The market ticks: patch the cached plan instead of evicting.
        let delta = MarketDelta::Spot {
            asset: 0,
            spot: 103.5,
        };
        let (patched, evicted) = service.apply_tick(&delta);
        assert_eq!((patched, evicted), (1, 0));
        // Burst 2 quotes the ticked market: it must hit the patched
        // plan and price bitwise like a direct fresh-plan pricer.
        let ticked = Arc::new(market().apply_delta(&delta).unwrap());
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                let product = call(8 + i, 90.0 + i as f64).product;
                service
                    .submit(PriceRequest::new(8 + i, Arc::clone(&ticked), product))
                    .unwrap()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().unwrap();
            assert!(resp.cache_hit, "ticked plan must stay hot");
            let direct = pricer
                .price(&ticked, &call(0, 90.0 + i as f64).product)
                .unwrap();
            assert_eq!(
                resp.outcome.unwrap().price.to_bits(),
                direct.price.to_bits()
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.ticks_applied, 1);
        assert_eq!(stats.tick_evictions, 0);
        assert_eq!(stats.cache.ticks_applied, 1);
        assert_eq!(stats.cache.misses, 1, "second burst must not rebuild");
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let service = PricingService::start(Pricer::new(Method::Analytic), ServeConfig::default());
        {
            let mut state = service.inner.state.lock().unwrap();
            state.closed = true;
        }
        assert!(matches!(
            service.submit(call(0, 100.0)),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn expired_queued_requests_are_reclaimed_without_engine_work() {
        // One worker, wedged on a slow no-deadline request; everything
        // queued behind it with a 1 ms budget must come back typed
        // DeadlineExceeded via the zero-work reclaim path.
        let service = PricingService::start(
            Pricer::new(slow_fd()),
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let t_slow = service.submit(call(0, 100.0)).unwrap();
        // Let the worker drain (and wedge on) the slow job before the
        // deadline burst goes in, so the burst waits behind it.
        std::thread::sleep(Duration::from_millis(30));
        let tickets: Vec<_> = (1..9)
            .map(|i| {
                service
                    .submit(call(i, 100.0).with_deadline(Duration::from_millis(1)))
                    .unwrap()
            })
            .collect();
        assert!(t_slow.wait().unwrap().outcome.is_ok());
        for t in tickets {
            let resp = t.wait().unwrap();
            assert!(matches!(
                resp.outcome,
                Err(PriceError::DeadlineExceeded)
            ));
        }
        let stats = service.shutdown();
        assert!(
            stats.deadline_pre >= 1,
            "queued expiries must reclaim: {stats:?}"
        );
        assert!(stats.reclaim_ratio() > 0.0);
    }

    #[test]
    fn injected_panics_are_caught_retried_and_typed() {
        // Every attempt of every request panics: the retry budget is
        // spent, the error is typed Panicked, and the worker survives
        // to answer the next (fault-free) request.
        let fault = ServeFaultPlan::new(11).with_panics(1.0).until(1);
        let service = PricingService::start(
            Pricer::new(Method::Fd1d(Fd1d::default())),
            ServeConfig {
                workers: 1,
                fault: Some(fault),
                ..Default::default()
            },
        );
        let doomed = service.submit(call(0, 100.0)).unwrap();
        let resp = doomed.wait().unwrap();
        assert!(matches!(resp.outcome, Err(PriceError::Panicked(_))));
        assert_eq!(resp.attempts, 3, "default retry budget is 3 attempts");
        // The worker must still be alive for clean ids (>= until).
        let clean = service.submit(call(1, 100.0)).unwrap();
        assert!(clean.wait().unwrap().outcome.is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.panics_caught, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.faults_injected, 3);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn poisoned_results_surface_as_numerical_never_as_nan_prices() {
        let fault = ServeFaultPlan::new(5).with_poison(1.0).until(1);
        let service = PricingService::start(
            Pricer::new(Method::Fd1d(Fd1d::default())),
            ServeConfig {
                workers: 1,
                retry: crate::request::RetryPolicy {
                    max_attempts: 1,
                    ..Default::default()
                },
                fault: Some(fault),
                ..Default::default()
            },
        );
        let resp = service.price(call(0, 100.0)).unwrap();
        assert!(matches!(
            resp.outcome,
            Err(PriceError::Numerical { .. })
        ));
        let stats = service.shutdown();
        assert_eq!(stats.numerical, 1);
    }

    #[test]
    fn tripped_breaker_reroutes_with_explicit_fidelity() {
        // Panic every execution of ids < 5: four failures trip the FD
        // breaker (min_samples 4). A later clean request must be
        // rerouted via the auto() table (vanilla call → analytic) and
        // tagged, never silently.
        let fault = ServeFaultPlan::new(3).with_panics(1.0).until(5);
        let cfg = ServeConfig {
            workers: 1,
            retry: crate::request::RetryPolicy {
                max_attempts: 1,
                ..Default::default()
            },
            breaker: crate::request::BreakerConfig {
                window: 8,
                min_samples: 4,
                // Long cooldown: the breaker must still be Open (not
                // probing) when the clean request arrives.
                cooldown: Duration::from_secs(30),
                ..Default::default()
            },
            fault: Some(fault),
            ..Default::default()
        };
        let fd = Method::Fd1d(Fd1d::default());
        let service = PricingService::start(Pricer::new(fd.clone()), cfg);
        for i in 0..5 {
            let _ = service.price(call(i, 100.0));
        }
        assert_eq!(service.breaker_state(&fd), BreakerState::Open);
        let resp = service.price(call(100, 100.0)).unwrap();
        assert!(resp.outcome.is_ok());
        assert_eq!(resp.fidelity, Fidelity::Rerouted { engine: "analytic" });
        let history = service.breaker_history();
        let stats = service.shutdown();
        assert!(stats.breaker_trips >= 1);
        assert!(stats.rerouted >= 1);
        assert!(stats.breaker_rejections >= 1);
        assert!(crate::breaker::transitions_legal(&history));
    }

    #[test]
    fn tripped_breaker_degrades_when_no_alternative_engine() {
        // A path-dependent product routes to MC in the auto() table; if
        // the requested method *is* that MC configuration, a tripped
        // breaker has no reroute and must fall back to the degraded
        // variant (quarter paths) with an explicit tag.
        let mc = Method::MonteCarlo(McConfig {
            paths: 200_000,
            steps: 50,
            ..Default::default()
        });
        let asian = |id: u64| {
            PriceRequest::new(
                id,
                market(),
                Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0),
            )
        };
        let fault = ServeFaultPlan::new(3).with_panics(1.0).until(5);
        let cfg = ServeConfig {
            workers: 1,
            retry: crate::request::RetryPolicy {
                max_attempts: 1,
                ..Default::default()
            },
            breaker: crate::request::BreakerConfig {
                window: 8,
                min_samples: 4,
                cooldown: Duration::from_secs(30),
                ..Default::default()
            },
            fault: Some(fault),
            ..Default::default()
        };
        let service = PricingService::start(Pricer::new(mc.clone()), cfg);
        for i in 0..5 {
            let _ = service.price(asian(i));
        }
        assert_eq!(service.breaker_state(&mc), BreakerState::Open);
        let resp = service.price(asian(100)).unwrap();
        assert!(resp.outcome.is_ok());
        assert_eq!(resp.fidelity, Fidelity::Degraded { levels: 1 });
        let stats = service.shutdown();
        assert!(stats.degraded >= 1);
    }

    #[test]
    fn priority_lanes_drain_high_before_low() {
        // Wedge the single worker, then enqueue low before high; the
        // high-priority job must be answered first.
        let service = PricingService::start(
            Pricer::new(slow_fd()),
            ServeConfig {
                workers: 1,
                coalesce: false,
                ..Default::default()
            },
        );
        let t_wedge = service.submit(call(0, 100.0)).unwrap();
        let t_low = service
            .submit(call(1, 100.0).with_priority(Priority::Low))
            .unwrap();
        let t_high = service
            .submit(call(2, 100.0).with_priority(Priority::High))
            .unwrap();
        t_wedge.wait().unwrap();
        // Wait for high; low must still be pending or just answered —
        // order is asserted via completion sequence.
        let high = t_high.wait().unwrap();
        let low = t_low.wait().unwrap();
        assert!(high.outcome.is_ok() && low.outcome.is_ok());
        // The high job spent strictly less time queued: it overtook a
        // low job that was submitted first.
        assert!(
            high.queue_seconds < low.queue_seconds,
            "high {} !< low {}",
            high.queue_seconds,
            low.queue_seconds
        );
    }
}
