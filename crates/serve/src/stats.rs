//! Service-level counters, kept as atomics on the hot path and read
//! out as a consistent-enough snapshot for reports.

use crate::cache::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters (one instance shared by all workers).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub shed: AtomicU64,
    pub errors: AtomicU64,
    pub groups: AtomicU64,
    pub grouped_requests: AtomicU64,
    pub fused: AtomicU64,
    pub plan_nanos_hit: AtomicU64,
    pub plan_nanos_miss: AtomicU64,
    pub deadline_pre: AtomicU64,
    pub deadline_mid: AtomicU64,
    pub retries: AtomicU64,
    pub panics_caught: AtomicU64,
    pub numerical: AtomicU64,
    pub degraded: AtomicU64,
    pub rerouted: AtomicU64,
    pub breaker_rejections: AtomicU64,
    pub faults_injected: AtomicU64,
}

impl Counters {
    pub fn add(&self, c: &AtomicU64, v: u64) {
        c.fetch_add(v, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the service's counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses delivered (including per-request errors).
    pub completed: u64,
    /// Requests shed by admission control ([`crate::ServeError::Overloaded`]).
    pub shed: u64,
    /// Responses whose outcome was a pricing error.
    pub errors: u64,
    /// Coalesced groups executed.
    pub groups: u64,
    /// Requests that rode coalesced groups (group sizes summed).
    pub grouped_requests: u64,
    /// Requests priced through a fused multi-product kernel.
    pub fused: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Cached plans patched in place by market ticks
    /// ([`crate::PricingService::apply_tick`]); mirrors
    /// [`CacheStats::ticks_applied`].
    pub ticks_applied: u64,
    /// Cached plans ticks could not patch, evicted instead; mirrors
    /// [`CacheStats::tick_evictions`].
    pub tick_evictions: u64,
    /// Total seconds spent on the plan phase across cache **hits**
    /// (lookup + clone — the `plan_seconds ≈ 0` path).
    pub plan_seconds_hit: f64,
    /// Total seconds spent on the plan phase across cache misses
    /// (actual plan builds).
    pub plan_seconds_miss: f64,
    /// Requests whose deadline had already expired when a worker
    /// drained them: answered `DeadlineExceeded` with **zero** engine
    /// work (the cancellation reclaim path).
    pub deadline_pre: u64,
    /// Requests whose cancel token tripped mid-execute: the engine
    /// aborted at its next poll and partial work was discarded.
    pub deadline_mid: u64,
    /// Retry attempts spent (attempts beyond each request's first).
    pub retries: u64,
    /// Worker panics caught at the isolation boundary.
    pub panics_caught: u64,
    /// Non-finite engine outputs caught by the post-condition check.
    pub numerical: u64,
    /// Responses priced at [`crate::Fidelity::Degraded`].
    pub degraded: u64,
    /// Responses priced at [`crate::Fidelity::Rerouted`].
    pub rerouted: u64,
    /// Executions refused because the engine's breaker was open.
    pub breaker_rejections: u64,
    /// Breaker trips (`* → Open` transitions) across all engines.
    pub breaker_trips: u64,
    /// Faults the configured [`crate::ServeFaultPlan`] injected.
    pub faults_injected: u64,
}

impl ServiceStats {
    /// Mean requests per coalesced group (1.0 when nothing grouped).
    pub fn mean_batch(&self) -> f64 {
        if self.groups == 0 {
            1.0
        } else {
            self.grouped_requests as f64 / self.groups as f64
        }
    }

    /// Mean plan seconds on the cache-hit path.
    pub fn mean_plan_seconds_hit(&self) -> f64 {
        if self.cache.hits == 0 {
            0.0
        } else {
            self.plan_seconds_hit / self.cache.hits as f64
        }
    }

    /// Mean plan seconds on the build (miss) path.
    pub fn mean_plan_seconds_miss(&self) -> f64 {
        if self.cache.misses == 0 {
            0.0
        } else {
            self.plan_seconds_miss / self.cache.misses as f64
        }
    }

    /// Fraction of accepted requests that were not answered with a
    /// full-service response: admission sheds plus deadline failures,
    /// over submissions plus sheds. The overload experiment's headline
    /// number — degradation lowers it by converting would-be deadline
    /// misses into explicit cheaper answers.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.submitted + self.shed;
        if offered == 0 {
            0.0
        } else {
            (self.shed + self.deadline_pre + self.deadline_mid) as f64 / offered as f64
        }
    }

    /// Of all deadline failures, the fraction reclaimed before any
    /// engine work was spent (higher = cancellation doing its job).
    pub fn reclaim_ratio(&self) -> f64 {
        let total = self.deadline_pre + self.deadline_mid;
        if total == 0 {
            0.0
        } else {
            self.deadline_pre as f64 / total as f64
        }
    }
}
