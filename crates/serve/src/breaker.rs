//! Per-engine circuit breakers.
//!
//! One `Breaker` guards each `(method, backend)` engine identity
//! (keyed by [`mdp_core::Method::cache_key`]): when an engine starts
//! failing — worker panics, non-finite outputs — the breaker **trips
//! open** and the router stops sending it work, answering from a
//! rerouted or degraded engine (or a typed
//! [`mdp_core::PriceError::CircuitOpen`]) instead of queueing requests
//! behind a broken engine. After a cooldown the breaker goes
//! **half-open** and admits a bounded number of probe requests; probes
//! succeeding closes it, a probe failing re-opens it.
//!
//! ```text
//!            failure ratio ≥ threshold
//!            over the sliding window
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ cooldown elapsed
//!     │  probes succeed                 ▼
//!     └────────────────────────────  HalfOpen
//!                    probe fails ──────▶ Open
//! ```
//!
//! Only *engine* failures count toward the window: deadline expiries
//! and per-request validation errors (unsupported payoffs, bad
//! parameters) say nothing about the engine's health and never trip it.

use crate::request::BreakerConfig;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, outcomes feed the sliding window.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Cooling down: a bounded number of probes are admitted to test
    /// whether the engine recovered.
    HalfOpen,
}

/// The router's verdict for one request against one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed: proceed normally.
    Allow,
    /// Breaker half-open: proceed, and this request's outcome decides
    /// whether the breaker closes or re-opens.
    Probe,
    /// Breaker open (or half-open with its probe budget spent): do not
    /// run this engine.
    Reject,
}

/// One recorded state transition, for trip/recovery timelines and the
/// chaos suite's legality check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// [`mdp_core::Method::cache_key`] of the guarded engine.
    pub key: u64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// Per-engine breaker bookkeeping.
#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    /// Ring of recent outcomes (`true` = success), newest last.
    window: Vec<bool>,
    /// When the breaker last opened (drives the cooldown).
    opened_at: Instant,
    /// Probes admitted since entering half-open.
    probes_admitted: u32,
    /// Probe successes since entering half-open.
    probes_succeeded: u32,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            state: BreakerState::Closed,
            window: Vec::new(),
            opened_at: Instant::now(),
            probes_admitted: 0,
            probes_succeeded: 0,
        }
    }
}

/// The service's breaker registry: one `Breaker` per engine key,
/// created on first use, plus the full transition history.
#[derive(Debug)]
pub struct BreakerRegistry {
    cfg: BreakerConfig,
    inner: Mutex<Registry>,
}

#[derive(Debug, Default)]
struct Registry {
    breakers: HashMap<u64, Breaker>,
    history: Vec<Transition>,
}

impl BreakerRegistry {
    /// Registry with the given trip/recovery tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        BreakerRegistry {
            cfg,
            inner: Mutex::new(Registry::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Registry> {
        // A worker panicking while holding this lock poisons it; the
        // bookkeeping is simple counters, always in a consistent state
        // between calls, so recover the guard rather than propagate.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Route one request against engine `key`: may transition
    /// `Open → HalfOpen` when the cooldown has elapsed.
    pub fn admit(&self, key: u64) -> Admit {
        let mut reg = self.lock();
        let cooldown = self.cfg.cooldown;
        let half_open_probes = self.cfg.half_open_probes;
        let entry = reg.breakers.entry(key).or_insert_with(Breaker::new);
        match entry.state {
            BreakerState::Closed => Admit::Allow,
            BreakerState::Open => {
                if entry.opened_at.elapsed() >= cooldown {
                    entry.state = BreakerState::HalfOpen;
                    entry.probes_admitted = 1;
                    entry.probes_succeeded = 0;
                    reg.history.push(Transition {
                        key,
                        from: BreakerState::Open,
                        to: BreakerState::HalfOpen,
                    });
                    Admit::Probe
                } else {
                    Admit::Reject
                }
            }
            BreakerState::HalfOpen => {
                if entry.probes_admitted < half_open_probes {
                    entry.probes_admitted += 1;
                    Admit::Probe
                } else {
                    Admit::Reject
                }
            }
        }
    }

    /// Record one engine outcome. Only call for outcomes that speak to
    /// engine health (success, panic, non-finite output) — deadline
    /// expiries and request-validation errors must not be recorded.
    pub fn record(&self, key: u64, success: bool) {
        let mut reg = self.lock();
        let cfg = self.cfg;
        let entry = reg.breakers.entry(key).or_insert_with(Breaker::new);
        let transition = match entry.state {
            BreakerState::Closed => {
                entry.window.push(success);
                let excess = entry.window.len().saturating_sub(cfg.window.max(1));
                if excess > 0 {
                    entry.window.drain(..excess);
                }
                let failures = entry.window.iter().filter(|ok| !**ok).count();
                let tripped = entry.window.len() >= cfg.min_samples.max(1)
                    && failures as f64 >= cfg.failure_threshold * entry.window.len() as f64;
                if tripped {
                    entry.state = BreakerState::Open;
                    entry.opened_at = Instant::now();
                    entry.window.clear();
                    Some((BreakerState::Closed, BreakerState::Open))
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if success {
                    entry.probes_succeeded += 1;
                    if entry.probes_succeeded >= cfg.half_open_probes.max(1) {
                        entry.state = BreakerState::Closed;
                        entry.window.clear();
                        Some((BreakerState::HalfOpen, BreakerState::Closed))
                    } else {
                        None
                    }
                } else {
                    entry.state = BreakerState::Open;
                    entry.opened_at = Instant::now();
                    Some((BreakerState::HalfOpen, BreakerState::Open))
                }
            }
            // Late results from requests admitted before the trip: the
            // open breaker has already decided, ignore them.
            BreakerState::Open => None,
        };
        if let Some((from, to)) = transition {
            reg.history.push(Transition { key, from, to });
        }
    }

    /// Current state for engine `key` (Closed if never seen).
    pub fn state(&self, key: u64) -> BreakerState {
        self.lock()
            .breakers
            .get(&key)
            .map_or(BreakerState::Closed, |b| b.state)
    }

    /// The full transition history, in order.
    pub fn history(&self) -> Vec<Transition> {
        self.lock().history.clone()
    }

    /// How many times any breaker tripped (`* → Open`).
    pub fn trips(&self) -> u64 {
        self.lock()
            .history
            .iter()
            .filter(|t| t.to == BreakerState::Open)
            .count() as u64
    }
}

/// Check that a transition sequence only contains legal moves:
/// `Closed→Open`, `Open→HalfOpen`, `HalfOpen→Closed`, `HalfOpen→Open`.
pub fn transitions_legal(history: &[Transition]) -> bool {
    use BreakerState::*;
    history.iter().all(|t| {
        matches!(
            (t.from, t.to),
            (Closed, Open) | (Open, HalfOpen) | (HalfOpen, Closed) | (HalfOpen, Open)
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown: Duration::from_millis(10),
            half_open_probes: 2,
        }
    }

    #[test]
    fn trips_after_failure_ratio_and_recovers_through_half_open() {
        let reg = BreakerRegistry::new(cfg());
        let key = 7;
        assert_eq!(reg.admit(key), Admit::Allow);
        // Below min_samples nothing trips.
        for _ in 0..3 {
            reg.record(key, false);
        }
        assert_eq!(reg.state(key), BreakerState::Closed);
        reg.record(key, false);
        assert_eq!(reg.state(key), BreakerState::Open);
        assert_eq!(reg.admit(key), Admit::Reject);
        // Cooldown → half-open, bounded probes.
        std::thread::sleep(Duration::from_millis(12));
        assert_eq!(reg.admit(key), Admit::Probe);
        assert_eq!(reg.admit(key), Admit::Probe);
        assert_eq!(reg.admit(key), Admit::Reject);
        reg.record(key, true);
        reg.record(key, true);
        assert_eq!(reg.state(key), BreakerState::Closed);
        assert_eq!(reg.trips(), 1);
        assert!(transitions_legal(&reg.history()));
    }

    #[test]
    fn failed_probe_reopens() {
        let reg = BreakerRegistry::new(cfg());
        let key = 9;
        for _ in 0..4 {
            reg.record(key, false);
        }
        std::thread::sleep(Duration::from_millis(12));
        assert_eq!(reg.admit(key), Admit::Probe);
        reg.record(key, false);
        assert_eq!(reg.state(key), BreakerState::Open);
        assert_eq!(reg.trips(), 2);
        assert!(transitions_legal(&reg.history()));
    }

    #[test]
    fn successes_keep_it_closed_and_window_slides() {
        let reg = BreakerRegistry::new(cfg());
        let key = 3;
        // Old failures age out of the window: an early failure followed
        // by a run of successes must not trip on a later single failure
        // (the early one has slid out of the 8-wide window by then).
        reg.record(key, false);
        for _ in 0..8 {
            reg.record(key, true);
        }
        reg.record(key, false);
        assert_eq!(reg.state(key), BreakerState::Closed);
        assert_eq!(reg.trips(), 0);
    }
}
