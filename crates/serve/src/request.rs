//! Request/response types and the service configuration.

use crate::ServeError;
use mdp_core::{Method, PriceError, PriceReport};
use mdp_model::{GbmMarket, Product};
use std::sync::mpsc::Receiver;
use std::sync::Arc;

/// One independent pricing request, as a user of the service would
/// submit it: a market snapshot, a product, and optionally a method
/// override (the service's configured method otherwise).
#[derive(Debug, Clone)]
pub struct PriceRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The market snapshot to price on. `Arc` so a burst of requests on
    /// one snapshot shares the data instead of cloning it per request.
    pub market: Arc<GbmMarket>,
    /// The product to price.
    pub product: Product,
    /// Engine override; `None` uses the service's configured method.
    pub method: Option<Method>,
}

impl PriceRequest {
    /// A request on the service's default method.
    pub fn new(id: u64, market: Arc<GbmMarket>, product: Product) -> Self {
        PriceRequest {
            id,
            market,
            product,
            method: None,
        }
    }

    /// Same request with an engine override.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = Some(method);
        self
    }
}

/// The service's answer to one request, with the telemetry a latency
/// report needs.
#[derive(Debug, Clone)]
pub struct PriceResponse {
    /// The request's correlation id.
    pub id: u64,
    /// The pricing outcome. `Ok` reports are bitwise-identical to a
    /// direct [`mdp_core::Pricer::price`] of the same request.
    pub outcome: Result<PriceReport, PriceError>,
    /// Seconds the request waited in the admission queue before a
    /// worker drained it.
    pub queue_seconds: f64,
    /// Seconds from drain to response (plan lookup/build + execute,
    /// amortised share of the request's coalesced group).
    pub service_seconds: f64,
    /// How many same-key requests the coalescer fused into the batch
    /// this response rode in (1 = priced alone).
    pub batch_size: usize,
    /// Whether the plan came out of the cache (`plan` phase skipped).
    pub cache_hit: bool,
}

impl PriceResponse {
    /// End-to-end latency: queue wait plus service time.
    pub fn latency_seconds(&self) -> f64 {
        self.queue_seconds + self.service_seconds
    }
}

/// A claim on a submitted request's future response.
#[derive(Debug)]
pub struct Ticket {
    /// The request's correlation id.
    pub id: u64,
    pub(crate) rx: Receiver<PriceResponse>,
}

impl Ticket {
    /// Block until the response arrives. [`ServeError::Closed`] if the
    /// service shut down without answering.
    pub fn wait(self) -> Result<PriceResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<PriceResponse> {
        self.rx.try_recv().ok()
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded admission queue: submissions beyond this many in-flight
    /// requests shed with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Coalesce drained requests into same-key groups routed through
    /// the fused batch kernels. `false` is the naive pool-of-pricers
    /// baseline: every request pays its own plan.
    pub coalesce: bool,
    /// Upper bound on requests one worker drains per cycle (bounds the
    /// latency cost of riding a very large batch).
    pub max_batch: usize,
    /// Plan-cache capacity in entries (distinct `(market, maturity,
    /// method)` keys); `0` disables caching. Ignored in naive mode.
    pub plan_cache: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 4096,
            coalesce: true,
            max_batch: 256,
            plan_cache: 64,
        }
    }
}
