//! Request/response types and the service configuration.

use crate::fault::ServeFaultPlan;
use crate::ServeError;
use mdp_core::{Method, PriceError, PriceReport};
use mdp_model::{GbmMarket, Product};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Duration;

/// Scheduling priority of a request. Workers drain high before normal
/// before low; within a class, arrival order is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-critical (live quote on a screen).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Background work (end-of-day sweeps); first to wait under load.
    Low,
}

impl Priority {
    /// Lane index: 0 = high … 2 = low.
    pub(crate) fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One independent pricing request, as a user of the service would
/// submit it: a market snapshot, a product, and optionally a method
/// override (the service's configured method otherwise), a deadline
/// and a priority class.
#[derive(Debug, Clone)]
pub struct PriceRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The market snapshot to price on. `Arc` so a burst of requests on
    /// one snapshot shares the data instead of cloning it per request.
    pub market: Arc<GbmMarket>,
    /// The product to price.
    pub product: Product,
    /// Engine override; `None` uses the service's configured method.
    pub method: Option<Method>,
    /// Latency budget, measured from submission. When it expires the
    /// request's cancel token trips: queued work is reclaimed without
    /// executing and in-flight engines abort at their next poll, both
    /// surfacing as [`PriceError::DeadlineExceeded`]. `None` = no
    /// deadline (the request runs to completion).
    pub deadline: Option<Duration>,
    /// Scheduling priority class.
    pub priority: Priority,
}

impl PriceRequest {
    /// A request on the service's default method.
    pub fn new(id: u64, market: Arc<GbmMarket>, product: Product) -> Self {
        PriceRequest {
            id,
            market,
            product,
            method: None,
            deadline: None,
            priority: Priority::Normal,
        }
    }

    /// Same request with an engine override.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = Some(method);
        self
    }

    /// Same request with a latency budget.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Same request in the given priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// How faithfully a response was priced, relative to what the request
/// asked for. Anything other than [`Fidelity::Full`] is an **explicit**
/// marker that resilience machinery changed the numbers — degradation
/// is never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Priced exactly as requested: bitwise-identical to a direct
    /// [`mdp_core::Pricer::price`] of the same request.
    Full,
    /// The requested engine's circuit breaker was open; the request was
    /// rerouted to the `auto()` table's alternative engine at full
    /// configuration. Accurate, but not bitwise the requested engine.
    Rerouted {
        /// The engine that actually priced it.
        engine: &'static str,
    },
    /// Priced by a cheaper variant of the requested method (fewer MC
    /// paths, coarser FD/lattice grids — see
    /// [`mdp_core::Method::degrade`] for the per-family error bounds).
    Degraded {
        /// How many degradation steps were applied (each step is one
        /// [`mdp_core::Method::degrade`] hop).
        levels: u32,
    },
}

/// The service's answer to one request, with the telemetry a latency
/// report needs.
#[derive(Debug, Clone)]
pub struct PriceResponse {
    /// The request's correlation id.
    pub id: u64,
    /// The pricing outcome. `Ok` reports at [`Fidelity::Full`] are
    /// bitwise-identical to a direct [`mdp_core::Pricer::price`] of the
    /// same request.
    pub outcome: Result<PriceReport, PriceError>,
    /// Seconds the request waited in the admission queue before a
    /// worker drained it.
    pub queue_seconds: f64,
    /// Seconds from drain to response (plan lookup/build + execute,
    /// amortised share of the request's coalesced group).
    pub service_seconds: f64,
    /// How many same-key requests the coalescer fused into the batch
    /// this response rode in (1 = priced alone).
    pub batch_size: usize,
    /// Whether the plan came out of the cache (`plan` phase skipped).
    pub cache_hit: bool,
    /// How faithfully the response was priced (always
    /// [`Fidelity::Full`] unless resilience machinery intervened).
    pub fidelity: Fidelity,
    /// Execution attempts spent on this request (1 = first try).
    pub attempts: u32,
}

impl PriceResponse {
    /// End-to-end latency: queue wait plus service time.
    pub fn latency_seconds(&self) -> f64 {
        self.queue_seconds + self.service_seconds
    }
}

/// A claim on a submitted request's future response.
#[derive(Debug)]
pub struct Ticket {
    /// The request's correlation id.
    pub id: u64,
    pub(crate) rx: Receiver<PriceResponse>,
}

impl Ticket {
    /// Block until the response arrives. [`ServeError::Closed`] if the
    /// service shut down without answering.
    pub fn wait(self) -> Result<PriceResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<PriceResponse> {
        self.rx.try_recv().ok()
    }
}

/// Retry tuning: budgeted attempts with exponential backoff and
/// deterministic (seeded) jitter.
///
/// Attempt `a` (1-based) that fails retryably sleeps
/// `base_backoff · 2^(a-1) · j` before attempt `a+1`, where
/// `j ∈ [0.5, 1.5)` is a pure hash of `(jitter_seed, request id, a)` —
/// replayable, yet decorrelated across requests so retry storms
/// don't synchronise. Only engine faults (panics, non-finite outputs)
/// are retryable; deadline expiries and validation errors are not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total execution attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Seed of the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            jitter_seed: 0x5EED_BACC,
        }
    }
}

/// Circuit-breaker tuning (see [`crate::breaker`] for the state
/// machine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding outcome window per engine (most recent executions).
    pub window: usize,
    /// Failure ratio over the window at which the breaker trips.
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before it may trip (a single
    /// early failure must not open a cold breaker).
    pub min_samples: usize,
    /// How long an open breaker rejects before going half-open.
    pub cooldown: Duration,
    /// Probes admitted in half-open; all succeeding closes the breaker.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown: Duration::from_millis(50),
            half_open_probes: 2,
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded admission queue: submissions beyond this many in-flight
    /// requests shed with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Coalesce drained requests into same-key groups routed through
    /// the fused batch kernels. `false` is the naive pool-of-pricers
    /// baseline: every request pays its own plan.
    pub coalesce: bool,
    /// Upper bound on requests one worker drains per cycle (bounds the
    /// latency cost of riding a very large batch).
    pub max_batch: usize,
    /// Plan-cache capacity in entries (distinct `(market, maturity,
    /// method)` keys); `0` disables caching. Ignored in naive mode.
    pub plan_cache: usize,
    /// Retry budget and backoff for retryable engine faults.
    pub retry: RetryPolicy,
    /// Circuit-breaker trip/recovery tuning.
    pub breaker: BreakerConfig,
    /// Allow graceful degradation: when an engine's breaker is open
    /// (and no healthy reroute exists) or a request's remaining budget
    /// is smaller than the engine's observed latency, price with a
    /// cheaper variant ([`mdp_core::Method::degrade`]) and tag the
    /// response [`Fidelity::Degraded`]. When `false`, those requests
    /// fail typed ([`PriceError::CircuitOpen`] /
    /// [`PriceError::DeadlineExceeded`]) instead.
    pub degradation: bool,
    /// Deterministic fault injection (chaos testing); `None` in
    /// production.
    pub fault: Option<ServeFaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 4096,
            coalesce: true,
            max_batch: 256,
            plan_cache: 64,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            degradation: true,
            fault: None,
        }
    }
}
