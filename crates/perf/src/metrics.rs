//! Elementary parallel-performance metrics.

/// Speedup `S(p) = T(1)/T(p)`.
///
/// # Panics
/// Panics on non-positive times.
pub fn speedup(t1: f64, tp: f64) -> f64 {
    assert!(t1 > 0.0 && tp > 0.0, "times must be positive");
    t1 / tp
}

/// Efficiency `E(p) = S(p)/p`.
pub fn efficiency(t1: f64, tp: f64, p: usize) -> f64 {
    assert!(p > 0);
    speedup(t1, tp) / p as f64
}

/// Karp–Flatt experimentally determined serial fraction:
/// `e = (1/S − 1/p) / (1 − 1/p)` for `p > 1`.
///
/// A flat `e` across p indicates a genuinely serial component; a growing
/// `e` exposes overheads rising with p (communication, imbalance).
pub fn karp_flatt(t1: f64, tp: f64, p: usize) -> f64 {
    assert!(p > 1, "Karp–Flatt needs p > 1");
    let s = speedup(t1, tp);
    let pf = p as f64;
    (1.0 / s - 1.0 / pf) / (1.0 - 1.0 / pf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_scaling() {
        assert_eq!(speedup(8.0, 1.0), 8.0);
        assert_eq!(efficiency(8.0, 1.0, 8), 1.0);
        assert!(karp_flatt(8.0, 1.0, 8).abs() < 1e-15);
    }

    #[test]
    fn no_scaling() {
        assert_eq!(speedup(4.0, 4.0), 1.0);
        assert_eq!(efficiency(4.0, 4.0, 4), 0.25);
        assert!((karp_flatt(4.0, 4.0, 4) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn karp_flatt_recovers_amdahl_fraction() {
        // Construct T(p) from Amdahl with serial fraction 0.2 and verify
        // Karp–Flatt returns exactly 0.2 at every p.
        let f = 0.2;
        let t1 = 10.0;
        for p in [2usize, 4, 8, 16] {
            let tp = t1 * (f + (1.0 - f) / p as f64);
            let e = karp_flatt(t1, tp, p);
            assert!((e - f).abs() < 1e-12, "p={p}: {e}");
        }
    }

    #[test]
    fn superlinear_gives_negative_serial_fraction() {
        let e = karp_flatt(10.0, 1.0, 8); // speedup 10 > 8
        assert!(e < 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_time() {
        let _ = speedup(0.0, 1.0);
    }
}
