//! Elementary parallel-performance metrics.

/// Speedup `S(p) = T(1)/T(p)`.
///
/// # Panics
/// Panics on non-positive times.
pub fn speedup(t1: f64, tp: f64) -> f64 {
    assert!(t1 > 0.0 && tp > 0.0, "times must be positive");
    t1 / tp
}

/// Efficiency `E(p) = S(p)/p`.
pub fn efficiency(t1: f64, tp: f64, p: usize) -> f64 {
    assert!(p > 0);
    speedup(t1, tp) / p as f64
}

/// Karp–Flatt experimentally determined serial fraction:
/// `e = (1/S − 1/p) / (1 − 1/p)` for `p > 1`.
///
/// A flat `e` across p indicates a genuinely serial component; a growing
/// `e` exposes overheads rising with p (communication, imbalance).
pub fn karp_flatt(t1: f64, tp: f64, p: usize) -> f64 {
    assert!(p > 1, "Karp–Flatt needs p > 1");
    let s = speedup(t1, tp);
    let pf = p as f64;
    (1.0 / s - 1.0 / pf) / (1.0 - 1.0 / pf)
}

/// Exact empirical percentile by the **nearest-rank** definition: for
/// `0 < p ≤ 100` over `n` sorted samples, the value at rank
/// `⌈p/100 · n⌉` (1-based). `p = 0` returns the minimum.
///
/// Nearest-rank always returns an *observed* sample — no interpolation
/// surprises, no values that never occurred — which is what a latency
/// report should quote. `sorted` must be ascending (checked in debug
/// builds only).
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "samples must be sorted ascending"
    );
    if p == 0.0 {
        return sorted[0];
    }
    let n = sorted.len();
    let rank = (p / 100.0 * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// The latency quantiles a service report quotes, computed exactly by
/// [`percentile_nearest_rank`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Maximum observed sample.
    pub max: f64,
}

/// Summarise a sample set (sorts `samples` in place).
///
/// # Panics
/// Panics on an empty slice.
pub fn latency_summary(samples: &mut [f64]) -> LatencySummary {
    assert!(!samples.is_empty(), "summary of an empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies must not be NaN"));
    LatencySummary {
        n: samples.len(),
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        p50: percentile_nearest_rank(samples, 50.0),
        p90: percentile_nearest_rank(samples, 90.0),
        p99: percentile_nearest_rank(samples, 99.0),
        max: samples[samples.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_scaling() {
        assert_eq!(speedup(8.0, 1.0), 8.0);
        assert_eq!(efficiency(8.0, 1.0, 8), 1.0);
        assert!(karp_flatt(8.0, 1.0, 8).abs() < 1e-15);
    }

    #[test]
    fn no_scaling() {
        assert_eq!(speedup(4.0, 4.0), 1.0);
        assert_eq!(efficiency(4.0, 4.0, 4), 0.25);
        assert!((karp_flatt(4.0, 4.0, 4) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn karp_flatt_recovers_amdahl_fraction() {
        // Construct T(p) from Amdahl with serial fraction 0.2 and verify
        // Karp–Flatt returns exactly 0.2 at every p.
        let f = 0.2;
        let t1 = 10.0;
        for p in [2usize, 4, 8, 16] {
            let tp = t1 * (f + (1.0 - f) / p as f64);
            let e = karp_flatt(t1, tp, p);
            assert!((e - f).abs() < 1e-12, "p={p}: {e}");
        }
    }

    #[test]
    fn superlinear_gives_negative_serial_fraction() {
        let e = karp_flatt(10.0, 1.0, 8); // speedup 10 > 8
        assert!(e < 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_time() {
        let _ = speedup(0.0, 1.0);
    }

    #[test]
    fn nearest_rank_matches_hand_computed_ranks() {
        // n = 4: rank(50) = ⌈2⌉ = 2 → second sample, NOT the 2.5
        // interpolation would give.
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_nearest_rank(&s, 50.0), 2.0);
        assert_eq!(percentile_nearest_rank(&s, 25.0), 1.0);
        assert_eq!(percentile_nearest_rank(&s, 75.0), 3.0);
        assert_eq!(percentile_nearest_rank(&s, 100.0), 4.0);
        assert_eq!(percentile_nearest_rank(&s, 0.0), 1.0);
        // Tiny p still lands on the first observed sample.
        assert_eq!(percentile_nearest_rank(&s, 0.1), 1.0);
    }

    #[test]
    fn nearest_rank_on_singleton_and_duplicates() {
        assert_eq!(percentile_nearest_rank(&[7.5], 50.0), 7.5);
        assert_eq!(percentile_nearest_rank(&[7.5], 99.0), 7.5);
        let dup = [1.0, 1.0, 1.0, 9.0];
        assert_eq!(percentile_nearest_rank(&dup, 75.0), 1.0);
        assert_eq!(percentile_nearest_rank(&dup, 76.0), 9.0);
    }

    #[test]
    fn p99_is_an_observed_sample() {
        // 1..=200: rank(99) = ⌈198⌉ = 198 → the value 198 exactly.
        let s: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        assert_eq!(percentile_nearest_rank(&s, 99.0), 198.0);
        assert_eq!(percentile_nearest_rank(&s, 50.0), 100.0);
        assert!(s.contains(&percentile_nearest_rank(&s, 99.0)));
    }

    #[test]
    fn summary_sorts_and_reports() {
        let mut s = vec![5.0, 1.0, 4.0, 2.0, 3.0];
        let sum = latency_summary(&mut s);
        assert_eq!(sum.n, 5);
        assert_eq!(sum.p50, 3.0);
        assert_eq!(sum.max, 5.0);
        assert!((sum.mean - 3.0).abs() < 1e-15);
        assert_eq!(sum.p90, 5.0); // rank ⌈4.5⌉ = 5
        assert_eq!(sum.p99, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_percentile() {
        let _ = percentile_nearest_rank(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_p() {
        let _ = percentile_nearest_rank(&[1.0], 101.0);
    }
}
