//! Numerical isoefficiency analysis.
//!
//! The isoefficiency function `W(p)` gives the problem size (work)
//! needed to hold parallel efficiency at a target as processors grow
//! (Grama, Gupta & Kumar 1993). Fast-growing `W(p)` means poor
//! scalability. There is no general closed form, so this module works
//! numerically against *any* time model `T(n, p)` — including the
//! virtual-time model of `mdp-cluster` driven by real engine runs.

/// Find, by bisection on the problem size `n`, the smallest size whose
/// efficiency at `p` processors reaches `target` (within `rel_tol`).
///
/// * `time`: the execution-time model `T(n, p)`; must be positive.
/// * `work`: the sequential work measure `W(n)` reported back.
/// * Search range `[n_lo, n_hi]`; returns `None` when even `n_hi` cannot
///   reach the target (the efficiency is assumed monotone in `n`, true
///   for all models in this workspace).
pub fn isoefficiency_point<T, W>(
    time: T,
    work: W,
    p: usize,
    target: f64,
    n_lo: u64,
    n_hi: u64,
    rel_tol: f64,
) -> Option<(u64, f64)>
where
    T: Fn(u64, usize) -> f64,
    W: Fn(u64) -> f64,
{
    assert!(p >= 1);
    assert!((0.0..1.0).contains(&target) && target > 0.0);
    assert!(n_lo >= 1 && n_hi > n_lo);
    let eff = |n: u64| {
        let t1 = time(n, 1);
        let tp = time(n, p);
        t1 / tp / p as f64
    };
    if eff(n_hi) < target {
        return None;
    }
    if eff(n_lo) >= target {
        return Some((n_lo, work(n_lo)));
    }
    let mut lo = n_lo;
    let mut hi = n_hi;
    while hi - lo > 1 && (hi - lo) as f64 > rel_tol * lo as f64 {
        let mid = lo + (hi - lo) / 2;
        if eff(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some((hi, work(hi)))
}

/// The full isoefficiency curve over a processor sweep.
pub fn isoefficiency_curve<T, W>(
    time: T,
    work: W,
    procs: &[usize],
    target: f64,
    n_lo: u64,
    n_hi: u64,
) -> Vec<(usize, Option<(u64, f64)>)>
where
    T: Fn(u64, usize) -> f64 + Copy,
    W: Fn(u64) -> f64 + Copy,
{
    procs
        .iter()
        .map(|&p| {
            (
                p,
                isoefficiency_point(time, work, p, target, n_lo, n_hi, 1e-3),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: T(n, p) = n/p + c·log₂(p) — the additive-overhead
    /// machine whose isoefficiency is W(p) = Θ(p log p).
    fn model(c: f64) -> impl Fn(u64, usize) -> f64 + Copy {
        move |n, p| n as f64 / p as f64 + c * (p as f64).log2()
    }

    #[test]
    fn recovers_p_log_p_growth() {
        let time = model(10.0);
        let work = |n: u64| n as f64;
        let w8 = isoefficiency_point(time, work, 8, 0.8, 1, 1 << 40, 1e-6)
            .unwrap()
            .1;
        let w64 = isoefficiency_point(time, work, 64, 0.8, 1, 1 << 40, 1e-6)
            .unwrap()
            .1;
        // W(p) = E/(1−E)·c·p·log₂p ⇒ W(64)/W(8) = (64·6)/(8·3) = 16.
        let ratio = w64 / w8;
        assert!((ratio - 16.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn exact_against_closed_form() {
        // For T = n/p + c·log₂p: E = target gives
        // n* = target/(1−target) · c · p·log₂p.
        let c = 5.0;
        let time = model(c);
        let p = 16;
        let target = 0.5;
        let expect = target / (1.0 - target) * c * (p as f64) * 4.0;
        let (n, _) = isoefficiency_point(time, |n| n as f64, p, target, 1, 1 << 40, 1e-9).unwrap();
        assert!(
            ((n as f64) - expect).abs() <= expect * 1e-2 + 2.0,
            "{n} vs {expect}"
        );
    }

    #[test]
    fn unreachable_target_returns_none() {
        // Overhead grows with n too: efficiency capped below target.
        let time = |n: u64, p: usize| n as f64 / p as f64 + 0.5 * n as f64;
        let r = isoefficiency_point(time, |n| n as f64, 4, 0.9, 1, 1 << 30, 1e-6);
        assert!(r.is_none());
    }

    #[test]
    fn trivial_target_at_lower_bound() {
        let time = model(0.0); // ideal machine: efficiency 1 everywhere
        let r = isoefficiency_point(time, |n| n as f64, 32, 0.9, 4, 1 << 20, 1e-6).unwrap();
        assert_eq!(r.0, 4);
    }

    #[test]
    fn curve_is_monotone_in_p() {
        let time = model(2.0);
        let curve = isoefficiency_curve(time, |n| n as f64, &[2, 4, 8, 16, 32], 0.7, 1, 1 << 40);
        let ws: Vec<f64> = curve.iter().map(|(_, r)| r.unwrap().1).collect();
        for w in ws.windows(2) {
            assert!(w[1] > w[0], "{ws:?}");
        }
    }
}
