//! Amdahl's and Gustafson's laws and serial-fraction fitting.

/// Amdahl speedup with serial fraction `f` on `p` processors:
/// `S = 1 / (f + (1−f)/p)`.
pub fn amdahl_speedup(f: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f), "serial fraction in [0,1]");
    assert!(p > 0);
    1.0 / (f + (1.0 - f) / p as f64)
}

/// Amdahl's asymptotic limit `1/f` (infinite processors).
pub fn amdahl_limit(f: f64) -> f64 {
    assert!(f > 0.0);
    1.0 / f
}

/// Gustafson scaled speedup with serial fraction `f'` (measured on the
/// parallel machine): `S = p − f'·(p − 1)`.
pub fn gustafson_speedup(f: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f));
    assert!(p > 0);
    let pf = p as f64;
    pf - f * (pf - 1.0)
}

/// Least-squares fit of Amdahl's serial fraction to measured
/// `(p, speedup)` points: minimises `Σ (1/Sᵢ − f − (1−f)/pᵢ)²`, which is
/// linear in `f`.
///
/// Returns the clamped fraction in `[0, 1]`; `None` without p > 1 data.
pub fn fit_amdahl(points: &[(usize, f64)]) -> Option<f64> {
    // 1/S = f(1 − 1/p) + 1/p  ⇒  y = f·x with y = 1/S − 1/p, x = 1 − 1/p.
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut used = 0;
    for &(p, s) in points {
        if p < 2 || s <= 0.0 {
            continue;
        }
        let x = 1.0 - 1.0 / p as f64;
        let y = 1.0 / s - 1.0 / p as f64;
        sxy += x * y;
        sxx += x * x;
        used += 1;
    }
    if used == 0 || sxx == 0.0 {
        return None;
    }
    Some((sxy / sxx).clamp(0.0, 1.0))
}

/// Least-squares fit of Gustafson's serial fraction to measured scaled
/// speedups: from `S = p − f(p−1)`, `f = (p − S)/(p − 1)` averaged with
/// weights `(p−1)²`.
pub fn fit_gustafson(points: &[(usize, f64)]) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for &(p, s) in points {
        if p < 2 {
            continue;
        }
        let pf = p as f64;
        num += (pf - s) * (pf - 1.0);
        den += (pf - 1.0) * (pf - 1.0);
    }
    if den == 0.0 {
        return None;
    }
    Some((num / den).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_known_values() {
        // 90% parallel, 4-fold parallel speedup is the textbook example,
        // but here f is the *serial* fraction: f=0.1, p→∞ ⇒ S→10.
        assert!((amdahl_speedup(0.1, 1_000_000) - 10.0).abs() < 0.01);
        assert_eq!(amdahl_speedup(0.0, 16), 16.0);
        assert_eq!(amdahl_speedup(1.0, 16), 1.0);
        assert_eq!(amdahl_limit(0.25), 4.0);
    }

    #[test]
    fn gustafson_known_values() {
        assert_eq!(gustafson_speedup(0.0, 64), 64.0);
        assert_eq!(gustafson_speedup(1.0, 64), 1.0);
        // f=0.5: S = p − 0.5(p−1) = (p+1)/2.
        assert_eq!(gustafson_speedup(0.5, 9), 5.0);
    }

    #[test]
    fn gustafson_dominates_amdahl() {
        // For the same fraction, scaled speedup ≥ fixed-size speedup.
        for p in [2usize, 8, 32] {
            for f in [0.05, 0.2, 0.5] {
                assert!(gustafson_speedup(f, p) >= amdahl_speedup(f, p) - 1e-12);
            }
        }
    }

    #[test]
    fn fit_recovers_exact_amdahl_data() {
        let f = 0.07;
        let pts: Vec<(usize, f64)> = [2usize, 4, 8, 16, 32]
            .iter()
            .map(|&p| (p, amdahl_speedup(f, p)))
            .collect();
        let fit = fit_amdahl(&pts).unwrap();
        assert!((fit - f).abs() < 1e-12, "{fit}");
    }

    #[test]
    fn fit_recovers_exact_gustafson_data() {
        let f = 0.15;
        let pts: Vec<(usize, f64)> = [2usize, 4, 8, 16]
            .iter()
            .map(|&p| (p, gustafson_speedup(f, p)))
            .collect();
        let fit = fit_gustafson(&pts).unwrap();
        assert!((fit - f).abs() < 1e-12, "{fit}");
    }

    #[test]
    fn fits_need_multi_processor_data() {
        assert!(fit_amdahl(&[(1, 1.0)]).is_none());
        assert!(fit_gustafson(&[]).is_none());
    }

    #[test]
    fn fit_clamps_noisy_data() {
        // Superlinear measurements clamp to f = 0.
        let pts = [(2usize, 2.5), (4, 5.0)];
        assert_eq!(fit_amdahl(&pts).unwrap(), 0.0);
    }
}
