//! # mdp-perf — performance-evaluation toolkit
//!
//! The measurement half of "Performance Evaluation of Parallel
//! Algorithms": everything the benches use to turn raw execution times
//! into the tables and figures of the paper.
//!
//! * [`metrics`] — speedup, efficiency, and the Karp–Flatt
//!   experimentally determined serial fraction.
//! * [`laws`] — Amdahl's and Gustafson's laws, plus least-squares fits
//!   of the serial fraction to measured speedup curves.
//! * [`scaling`] — [`scaling::ScalingCurve`]: a `(p, time)` series with
//!   derived metrics, the core data structure of every speedup figure.
//! * [`isoefficiency`] — numerical isoefficiency analysis: the work
//!   needed to hold efficiency constant as processors grow.
//! * [`timing`] — wall-clock stopwatch helpers for the host-time
//!   measurements (the virtual-time numbers come from `mdp-cluster`).
//! * [`report`] — plain-text/markdown/CSV table rendering for the
//!   `repro` binary's outputs.

pub mod isoefficiency;
pub mod laws;
pub mod metrics;
pub mod report;
pub mod scaling;
pub mod timing;

pub use metrics::{
    efficiency, karp_flatt, latency_summary, percentile_nearest_rank, speedup, LatencySummary,
};
pub use report::Table;
pub use scaling::ScalingCurve;
