//! Wall-clock measurement helpers.
//!
//! Host-time measurements complement the virtual-time model: sequential
//! engine costs (tables T1/T3) are real wall-clock numbers measured
//! here, with median-of-k repetition to tame scheduler noise.

use std::time::Instant;

/// Measure one call: `(result, seconds)`.
pub fn measure<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Median wall-clock seconds of `reps` calls (the result of the last
/// call is returned so the work cannot be optimised away).
pub fn measure_median<T, F: FnMut() -> T>(mut f: F, reps: usize) -> (T, f64) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (out, t) = measure(&mut f);
        times.push(t);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (last.unwrap(), times[times.len() / 2])
}

/// Best (minimum) wall-clock seconds of `reps` calls. Scheduler and
/// frequency noise only ever *add* time, so for a deterministic kernel
/// the minimum is the most robust estimator of its true cost — use this
/// for kernel-throughput comparisons, `measure_median` for end-to-end
/// runs where the noise is part of the phenomenon.
pub fn measure_best<T, F: FnMut() -> T>(mut f: F, reps: usize) -> (T, f64) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let (out, t) = measure(&mut f);
        best = best.min(t);
        last = Some(out);
    }
    (last.unwrap(), best)
}

/// A running stopwatch with named laps.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
    laps: Vec<(String, f64)>,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
            laps: Vec::new(),
        }
    }

    /// Record a lap (time since start or since the previous lap).
    pub fn lap(&mut self, name: impl Into<String>) -> f64 {
        let now = self.start.elapsed().as_secs_f64();
        let prev: f64 = self.laps.iter().map(|(_, t)| t).sum();
        let lap = now - prev;
        self.laps.push((name.into(), lap));
        lap
    }

    /// Total elapsed seconds.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The recorded laps.
    pub fn laps(&self) -> &[(String, f64)] {
        &self.laps
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_result_and_positive_time() {
        let (v, t) = measure(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(t >= 0.0);
    }

    #[test]
    fn median_of_reps() {
        let mut count = 0;
        let (_, t) = measure_median(
            || {
                count += 1;
            },
            5,
        );
        assert_eq!(count, 5);
        assert!(t >= 0.0);
    }

    #[test]
    fn best_of_reps() {
        let mut count = 0;
        let (_, t) = measure_best(
            || {
                count += 1;
            },
            4,
        );
        assert_eq!(count, 4);
        assert!(t >= 0.0);
    }

    #[test]
    fn stopwatch_laps_sum_to_elapsed() {
        let mut sw = Stopwatch::start();
        let a = sw.lap("first");
        let b = sw.lap("second");
        assert!(a >= 0.0 && b >= 0.0);
        assert_eq!(sw.laps().len(), 2);
        let sum: f64 = sw.laps().iter().map(|(_, t)| t).sum();
        assert!(sum <= sw.elapsed() + 1e-6);
    }
}
