//! Result tables: the textual form of every reproduced table/figure.

use std::fmt::Write as _;

/// A simple column-aligned table with markdown and CSV renderers.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells (ragged rows are padded on render).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Convenience: append a row of displayable values.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of columns (headers).
    pub fn width(&self) -> usize {
        self.headers.len()
    }

    fn cell<'a>(&self, row: &'a [String], i: usize) -> &'a str {
        row.get(i).map(String::as_str).unwrap_or("")
    }

    /// Render as a GitHub-flavoured markdown table with a title line.
    pub fn to_markdown(&self) -> String {
        let w = self.width();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, width) in widths.iter_mut().enumerate() {
                *width = (*width).max(self.cell(row, i).len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let line = |cells: Vec<String>| {
            let mut s = String::from("|");
            for (c, &wd) in cells.iter().zip(&widths) {
                let _ = write!(s, " {c:wd$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(self.headers.clone()));
        let _ = writeln!(
            out,
            "{}",
            line(widths.iter().map(|&wd| "-".repeat(wd)).collect())
        );
        for row in &self.rows {
            let cells: Vec<String> = (0..w).map(|i| self.cell(row, i).to_string()).collect();
            let _ = writeln!(out, "{}", line(cells));
        }
        out
    }

    /// Render as CSV (headers first; commas and quotes escaped).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let cells: Vec<String> = (0..self.width()).map(|i| esc(self.cell(row, i))).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

/// Format a float with engineering-friendly precision for tables.
pub fn fmt_sig(x: f64, digits: usize) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let mag = x.abs().log10().floor() as i32;
    if (-3..6).contains(&mag) {
        let decimals = (digits as i32 - 1 - mag).max(0) as usize;
        format!("{x:.decimals$}")
    } else {
        format!("{x:.prec$e}", prec = digits - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T0: demo", &["p", "time", "speedup"]);
        t.push(&["1", "10.0", "1.00"]);
        t.push(&["4", "3.0", "3.33"]);
        t
    }

    #[test]
    fn markdown_has_title_headers_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("## T0: demo"));
        assert!(md.contains("| p | time | speedup |"));
        assert!(md.contains("3.33"));
        // Separator row present.
        assert!(md.contains("| - |"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.push_row(vec!["only".into()]);
        let md = t.to_markdown();
        assert!(md.contains("only"));
        let csv = t.to_csv();
        assert!(csv.lines().nth(1).unwrap().matches(',').count() == 2);
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0, 3), "0");
        // {:.0} rounds half to even: 1234.5 → "1234".
        assert_eq!(fmt_sig(1234.5, 3), "1234");
        assert_eq!(fmt_sig(0.012345, 3), "0.0123");
        assert!(fmt_sig(1.0e9, 3).contains('e'));
        assert!(fmt_sig(1.0e-7, 3).contains('e'));
    }

    #[test]
    fn fmt_sig_negative() {
        assert_eq!(fmt_sig(-2.5, 2), "-2.5");
    }
}
