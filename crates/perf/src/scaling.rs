//! Scaling curves: the `(p, time)` series behind every speedup figure.

use crate::laws;
use crate::metrics;

/// A strong- or weak-scaling measurement series.
///
/// ```
/// use mdp_perf::ScalingCurve;
/// let c = ScalingCurve::new("demo", vec![1, 2, 4], vec![8.0, 4.4, 2.6]);
/// let s = c.speedups();
/// assert_eq!(s[0], 1.0);
/// assert!(s[2] > 3.0 && s[2] < 4.0);
/// assert!(c.amdahl_fraction().unwrap() < 0.11); // fitted serial fraction ≈ 0.1
/// ```
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    /// Label (workload description).
    pub label: String,
    /// Processor counts, ascending; must start at 1 for speedup curves.
    pub procs: Vec<usize>,
    /// Execution time at each processor count.
    pub times: Vec<f64>,
}

impl ScalingCurve {
    /// New curve.
    ///
    /// # Panics
    /// Panics on mismatched lengths, empty data, or non-positive times.
    pub fn new(label: impl Into<String>, procs: Vec<usize>, times: Vec<f64>) -> Self {
        assert_eq!(procs.len(), times.len(), "length mismatch");
        assert!(!procs.is_empty(), "empty curve");
        assert!(times.iter().all(|&t| t > 0.0), "times must be positive");
        ScalingCurve {
            label: label.into(),
            procs,
            times,
        }
    }

    /// T(1): the time at `p = 1` (first entry must be p = 1).
    ///
    /// # Panics
    /// Panics when the curve does not include p = 1.
    pub fn t1(&self) -> f64 {
        assert_eq!(self.procs[0], 1, "curve must start at p = 1");
        self.times[0]
    }

    /// Speedups `S(p)` per entry.
    pub fn speedups(&self) -> Vec<f64> {
        let t1 = self.t1();
        self.times
            .iter()
            .map(|&t| metrics::speedup(t1, t))
            .collect()
    }

    /// Efficiencies `E(p)` per entry.
    pub fn efficiencies(&self) -> Vec<f64> {
        let t1 = self.t1();
        self.procs
            .iter()
            .zip(&self.times)
            .map(|(&p, &t)| metrics::efficiency(t1, t, p))
            .collect()
    }

    /// Karp–Flatt serial fractions for entries with p > 1.
    pub fn karp_flatt(&self) -> Vec<(usize, f64)> {
        let t1 = self.t1();
        self.procs
            .iter()
            .zip(&self.times)
            .filter(|(&p, _)| p > 1)
            .map(|(&p, &t)| (p, metrics::karp_flatt(t1, t, p)))
            .collect()
    }

    /// Least-squares Amdahl serial fraction for this curve.
    pub fn amdahl_fraction(&self) -> Option<f64> {
        let pts: Vec<(usize, f64)> = self
            .procs
            .iter()
            .zip(self.speedups())
            .map(|(&p, s)| (p, s))
            .collect();
        laws::fit_amdahl(&pts)
    }

    /// Predicted speedups from the fitted Amdahl model (diagnostic for
    /// "does a fixed serial fraction explain this curve?").
    pub fn amdahl_prediction(&self) -> Option<Vec<f64>> {
        let f = self.amdahl_fraction()?;
        Some(
            self.procs
                .iter()
                .map(|&p| laws::amdahl_speedup(f, p))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amdahl_curve(f: f64) -> ScalingCurve {
        let procs = vec![1usize, 2, 4, 8, 16];
        let times = procs
            .iter()
            .map(|&p| 10.0 * (f + (1.0 - f) / p as f64))
            .collect();
        ScalingCurve::new("test", procs, times)
    }

    #[test]
    fn derived_metrics_consistent() {
        let c = amdahl_curve(0.1);
        let s = c.speedups();
        let e = c.efficiencies();
        assert_eq!(s[0], 1.0);
        assert!((s[4] - laws::amdahl_speedup(0.1, 16)).abs() < 1e-12);
        for (i, &p) in c.procs.iter().enumerate() {
            assert!((e[i] - s[i] / p as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn fit_round_trips() {
        let c = amdahl_curve(0.25);
        assert!((c.amdahl_fraction().unwrap() - 0.25).abs() < 1e-12);
        let pred = c.amdahl_prediction().unwrap();
        for (p, s) in pred.iter().zip(c.speedups()) {
            assert!((p - s).abs() < 1e-12);
        }
    }

    #[test]
    fn karp_flatt_flat_for_amdahl_data() {
        let c = amdahl_curve(0.3);
        for (_, e) in c.karp_flatt() {
            assert!((e - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "start at p = 1")]
    fn speedups_require_baseline() {
        let c = ScalingCurve::new("x", vec![2, 4], vec![1.0, 0.6]);
        let _ = c.speedups();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_times() {
        let _ = ScalingCurve::new("x", vec![1], vec![0.0]);
    }
}
