//! Chaos suite: randomized seeded [`FaultPlan`]s over the comm layer.
//!
//! Every property draws a random fault schedule (drops, delays,
//! crashes) and asserts the run either completes with the right answer
//! — bit-identically across replays of the same plan — or fails with a
//! clean typed error. Nothing may hang and nothing may return a wrong
//! number: determinism under faults is the contract the recovery
//! protocol is built on.

use mdp_cluster::{
    run_spmd_ft, CheckpointStore, Communicator, FaultPlan, Machine, Supervisor,
};
use proptest::prelude::*;

/// A 4-rank ring exchange: every rank sends 8 tagged values around the
/// ring and sums what it receives. Returns `(sum, final clock)`.
fn ring_run(plan: FaultPlan) -> Vec<(f64, f64)> {
    run_spmd_ft(4, Machine::cluster2002(), plan, |comm| {
        let rank = comm.rank();
        let next = (rank + 1) % 4;
        let prev = (rank + 3) % 4;
        let mut acc = 0.0;
        for round in 0..8 {
            comm.send(next, 1, &[(rank * 8 + round) as f64]);
            acc += comm.recv(prev, 1)[0];
        }
        (acc, comm.now())
    })
    .unwrap()
    .survivors
    .into_iter()
    .map(|r| r.value)
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ring_survives_random_drops_and_delays(
        seed in 0u64..1_000_000,
        drop_pct in 0u32..60,
        delay_pct in 0u32..60,
    ) {
        // A generous retry budget: at 59% drop rate the default 8
        // retries still fail ~1% of messages (0.59⁹), which is the
        // *correct* clean failure — but this property asserts delivery,
        // so give the sender room (0.59³¹ ≈ 1e-7).
        let plan = FaultPlan::new(seed)
            .with_drops(drop_pct as f64 / 100.0)
            .with_delays(delay_pct as f64 / 100.0, 1e-3)
            .with_max_retries(30);
        let a = ring_run(plan.clone());
        let b = ring_run(plan);
        prop_assert_eq!(a.len(), 4);
        for (rank, (&(sum_a, t_a), &(sum_b, t_b))) in a.iter().zip(&b).enumerate() {
            // Reliable delivery: every payload arrives despite drops.
            let prev = (rank + 3) % 4;
            let expect: f64 = (0..8).map(|round| (prev * 8 + round) as f64).sum();
            prop_assert_eq!(sum_a.to_bits(), expect.to_bits(), "rank {}", rank);
            // Replay determinism: identical values and virtual clocks.
            prop_assert_eq!(sum_a.to_bits(), sum_b.to_bits());
            prop_assert_eq!(t_a.to_bits(), t_b.to_bits(), "rank {} clock", rank);
        }
    }

    #[test]
    fn random_crash_schedules_recover_or_fail_cleanly(
        seed in 0u64..1_000_000,
        victims in 1usize..5,
        first_step in 0usize..10,
    ) {
        let p = 4usize;
        let steps = 12usize;
        // Derive a deterministic victim set from the seed: `victims`
        // distinct ranks crashing at staggered boundaries.
        let mut plan = FaultPlan::new(seed);
        let mut expected_active: Vec<usize> = (0..p).collect();
        for v in 0..victims {
            let rank = (seed as usize + v * 7) % p;
            let step = (first_step + v * 3) % steps;
            if expected_active.contains(&rank) {
                plan = plan.with_crash(rank, step);
                expected_active.retain(|&r| r != rank);
            }
        }
        let store = CheckpointStore::new();
        let expected = expected_active.clone();
        let out = run_spmd_ft(p, Machine::cluster2002(), plan, move |comm| {
            let mut sup = Supervisor::new(comm, 3, &store);
            let me = comm.rank() as f64;
            let mut step = 0;
            while step < steps {
                if let Some(rec) = sup.boundary(comm, step, || (0, vec![me])) {
                    step = rec.from_step.expect("boundary 0 checkpoints");
                    continue;
                }
                comm.compute(1e-4);
                step += 1;
            }
            sup.active().to_vec()
        });
        if expected_active.is_empty() {
            // Everyone died: a clean typed failure, not a hang.
            let err = out.expect_err("all-crash run must fail");
            prop_assert!(
                err.to_string().contains("injected crash"),
                "unexpected error: {}", err
            );
        } else {
            let out = out.expect("survivors must finish");
            prop_assert_eq!(
                out.survivors.len() + out.crashed.len(), p,
                "every rank accounted for"
            );
            for s in &out.survivors {
                prop_assert_eq!(s.value.clone(), expected.clone(), "agreed active set");
            }
        }
    }

    #[test]
    fn crashes_under_message_chaos_still_agree(
        seed in 0u64..1_000_000,
        crash_rank in 0usize..4,
        crash_step in 0usize..8,
    ) {
        // Drops and delays active *and* a rank dying: survivors must
        // still agree on the death and replay deterministically.
        let mk_plan = || {
            FaultPlan::new(seed)
                .with_drops(0.2)
                .with_delays(0.2, 5e-4)
                .with_crash(crash_rank, crash_step)
        };
        let run = |plan: FaultPlan| {
            let store = CheckpointStore::new();
            run_spmd_ft(4, Machine::cluster2002(), plan, move |comm| {
                let mut sup = Supervisor::new(comm, 2, &store);
                let me = comm.rank() as f64;
                let mut step = 0;
                while step < 8 {
                    if let Some(rec) = sup.boundary(comm, step, || (0, vec![me])) {
                        step = rec.from_step.expect("boundary 0 checkpoints");
                        continue;
                    }
                    comm.compute(1e-4);
                    step += 1;
                }
                (sup.active().to_vec(), comm.now())
            })
            .expect("three survivors remain")
        };
        let a = run(mk_plan());
        let b = run(mk_plan());
        prop_assert_eq!(a.survivors.len(), 3);
        prop_assert_eq!(a.crashed.len(), 1);
        prop_assert_eq!(a.crashed[0].rank, crash_rank);
        let expected: Vec<usize> = (0..4).filter(|&r| r != crash_rank).collect();
        for (sa, sb) in a.survivors.iter().zip(&b.survivors) {
            prop_assert_eq!(&sa.value.0, &expected);
            prop_assert_eq!(sa.value.1.to_bits(), sb.value.1.to_bits(), "replayed clock");
        }
    }
}
