//! Cross-variant collective equivalence suite.
//!
//! Every reduction variant in the workspace — flat recursive doubling,
//! the canonical ring, the rooted trees, and the engine's two-level
//! group-leader schedules — must produce **bitwise-identical** vectors:
//! the canonical fold of the per-rank contributions. This is the
//! invariant that lets the engine swap algorithms by topology without
//! ever moving a price. The suite sweeps every rank count 1..=64 plus
//! awkward large counts (257, 1024) with seeded pseudo-random payloads,
//! and separately checks the scalability contract: at P ≥ 256 on an
//! SMP-cluster fabric the hierarchical schedules must cross the
//! inter-node fabric strictly less than the flat ones.

use mdp_cluster::{
    canonical_fold, collectives, run_spmd, CollectiveEngine, Communicator, Machine, ReduceOp,
    TimeModel,
};

/// Deterministic splitmix64-style payload: full-magnitude doubles whose
/// sum is association-sensitive, so any ordering slip shows up in bits.
fn payload(rank: usize, len: usize, salt: u64) -> Vec<f64> {
    let mut state = salt
        .wrapping_add(rank as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // Mantissa-rich values in (−8, 8) with mixed exponents.
            let u = (z >> 11) as f64 / (1u64 << 53) as f64;
            (u - 0.5) * 16.0 * (1.0 + (z & 0xF) as f64)
        })
        .collect()
}

fn expected(p: usize, len: usize, salt: u64, op: ReduceOp) -> Vec<f64> {
    let parts: Vec<Vec<f64>> = (0..p).map(|r| payload(r, len, salt)).collect();
    canonical_fold(&parts, op)
}

/// A collective body run identically on every rank: `(comm, local data)`
/// in, that rank's result out.
type CollectiveFn<'a, R> = dyn Fn(&mut dyn Communicator, &[f64]) -> R + Sync + 'a;

fn assert_bits(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}: {g} vs {w}");
    }
}

/// Every allreduce variant at rank count `p` returns the canonical fold.
fn check_allreduce_variants(p: usize, len: usize, salt: u64) {
    for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
        let want = expected(p, len, salt, op);
        let run = |name: &str, f: &CollectiveFn<'_, Vec<f64>>| {
            let results = run_spmd(p, Machine::ideal(), |comm| {
                let data = payload(comm.rank(), len, salt);
                f(comm, &data)
            })
            .unwrap();
            for r in &results {
                assert_bits(&r.value, &want, &format!("{name} p={p} rank={}", r.rank));
            }
        };
        run("doubling", &|c, d| collectives::allreduce_doubling(c, d, op));
        run("ring-canonical", &|c, d| {
            collectives::allreduce_ring_canonical(c, d, op)
        });
        run("reduce-bcast", &|c, d| {
            collectives::allreduce_reduce_bcast(c, d, op)
        });
        for g in [2usize, 4, 16] {
            if g <= p {
                run(&format!("two-level g={g}"), &|c, d| {
                    CollectiveEngine::two_level(g).allreduce(c, d, op)
                });
            }
        }
    }
}

/// Every rooted reduce variant delivers the canonical fold at the root.
fn check_reduce_variants(p: usize, len: usize, salt: u64, root: usize) {
    let op = ReduceOp::Sum;
    let want = expected(p, len, salt, op);
    let run = |name: &str, f: &CollectiveFn<'_, Option<Vec<f64>>>| {
        let results = run_spmd(p, Machine::ideal(), |comm| {
            let data = payload(comm.rank(), len, salt);
            f(comm, &data)
        })
        .unwrap();
        for r in &results {
            if r.rank == root {
                let got = r.value.as_ref().expect("root must hold the result");
                assert_bits(got, &want, &format!("{name} p={p} root={root}"));
            } else {
                assert!(r.value.is_none(), "{name}: non-root rank {} got data", r.rank);
            }
        }
    };
    run("reduce-tree", &|c, d| {
        collectives::reduce_tree(c, root, d, op)
    });
    run("reduce-linear", &|c, d| {
        collectives::reduce_linear(c, root, d, op)
    });
    for g in [2usize, 8] {
        if g <= p {
            run(&format!("two-level reduce g={g}"), &|c, d| {
                CollectiveEngine::two_level(g).reduce(c, root, d, op)
            });
        }
    }
}

/// Every broadcast variant delivers the root's exact bits everywhere.
fn check_broadcast_variants(p: usize, len: usize, salt: u64, root: usize) {
    let want = payload(root, len, salt);
    let run = |name: &str, f: &(dyn Fn(&mut dyn Communicator, &mut [f64]) + Sync)| {
        let results = run_spmd(p, Machine::ideal(), |comm| {
            let mut data = if comm.rank() == root {
                payload(root, len, salt)
            } else {
                vec![0.0; len]
            };
            f(comm, &mut data);
            data
        })
        .unwrap();
        for r in &results {
            assert_bits(&r.value, &want, &format!("{name} p={p} rank={}", r.rank));
        }
    };
    run("bcast-tree", &|c, d| collectives::broadcast_tree(c, root, d));
    run("bcast-linear", &|c, d| {
        collectives::broadcast_linear(c, root, d)
    });
    for g in [2usize, 8] {
        if g <= p {
            run(&format!("two-level bcast g={g}"), &|c, d| {
                CollectiveEngine::two_level(g).broadcast(c, root, d)
            });
        }
    }
}

#[test]
fn all_variants_agree_bitwise_across_every_small_rank_count() {
    for p in 1..=64 {
        let salt = 0xC0FFEE ^ p as u64;
        check_allreduce_variants(p, 5, salt);
        check_reduce_variants(p, 4, salt, p / 3);
        check_broadcast_variants(p, 6, salt, p / 2);
    }
}

#[test]
fn all_variants_agree_bitwise_at_awkward_large_rank_counts() {
    // 257 = 2^8 + 1 (maximal remainder pain), 1024 = the target scale.
    check_allreduce_variants(257, 3, 0xDEAD);
    check_reduce_variants(257, 3, 0xDEAD, 17);
    check_broadcast_variants(257, 3, 0xDEAD, 256);
    check_allreduce_variants(1024, 2, 0xBEEF);
}

#[test]
fn gather_varied_two_level_matches_flat_exactly() {
    for (p, g) in [(12usize, 4usize), (33, 8), (257, 16)] {
        let run = |engine: CollectiveEngine| {
            run_spmd(p, Machine::ideal(), move |comm| {
                let data = payload(comm.rank(), 1 + comm.rank() % 5, 7);
                engine.gather_varied(comm, 3, &data)
            })
            .unwrap()
        };
        let flat = run(CollectiveEngine::flat());
        let hier = run(CollectiveEngine::two_level(g));
        let f = flat[3].value.as_ref().unwrap();
        let h = hier[3].value.as_ref().unwrap();
        assert_eq!(f.len(), p);
        for (r, (a, b)) in f.iter().zip(h).enumerate() {
            assert_bits(b, a, &format!("gather p={p} g={g} part {r}"));
        }
    }
}

/// The scalability contract: at P ≥ 256 on the SMP-cluster fabric the
/// hierarchical schedules must send strictly fewer messages across the
/// inter-node fabric — total and far — than the flat algorithms.
#[test]
fn hierarchical_collectives_cross_the_fabric_less_at_scale() {
    let p = 256usize;
    let machine = Machine::smp_cluster2002(8);
    let totals = |engine: CollectiveEngine| {
        let results = run_spmd(p, machine, move |comm| {
            let data = payload(comm.rank(), 4, 11);
            let s = engine.allreduce_sum(comm, &data);
            let mut b = s.clone();
            engine.broadcast(comm, 0, &mut b);
            engine.reduce(comm, 0, &b, ReduceOp::Sum);
            s
        })
        .unwrap();
        let want = expected(p, 4, 11, ReduceOp::Sum);
        for r in &results {
            assert_bits(&r.value, &want, "allreduce at scale");
        }
        TimeModel::from_results(&results)
    };
    let flat = totals(CollectiveEngine::flat());
    let hier = totals(CollectiveEngine::for_machine(&machine, p));
    assert!(
        matches!(
            CollectiveEngine::for_machine(&machine, p).algo(),
            mdp_cluster::CollectiveAlgo::TwoLevel { group: 8 }
        ),
        "selection must pick the node-sized group"
    );
    assert!(
        hier.total_far_msgs < flat.total_far_msgs,
        "far msgs: hier {} vs flat {}",
        hier.total_far_msgs,
        flat.total_far_msgs
    );
    assert!(
        hier.total_far_bytes < flat.total_far_bytes,
        "far bytes: hier {} vs flat {}",
        hier.total_far_bytes,
        flat.total_far_bytes
    );
    assert!(
        hier.total_msgs < flat.total_msgs,
        "total msgs: hier {} vs flat {}",
        hier.total_msgs,
        flat.total_msgs
    );
    assert!(
        hier.makespan < flat.makespan,
        "makespan: hier {} vs flat {}",
        hier.makespan,
        flat.makespan
    );
}
