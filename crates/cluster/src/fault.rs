//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a *seeded schedule* of message drops, message
//! delays, and rank crashes. Every decision the plan makes is a pure
//! function of `(seed, src, dest, sequence number, attempt)` — no host
//! randomness, no wall-clock — so an SPMD run under a plan can be
//! replayed bit-for-bit: same drops, same retransmit counts, same
//! virtual-time makespan. That replayability is what lets the chaos
//! tests assert exact recovery behaviour and the golden-regression
//! suite pin recovery makespans.
//!
//! Crashes are injected at *step boundaries* only (the coordination
//! points where drivers call [`crate::ThreadComm::fault_step`]): a rank
//! whose plan says `(rank, k)` panics with an [`InjectedCrash`] payload
//! when it reaches boundary `k`, after writing any checkpoint due at
//! that boundary. Restricting crashes to boundaries keeps the recovery
//! protocol simple — every send inside a step is matched by a receive
//! inside the same step, so no user message is ever in flight when
//! survivors roll back.

/// One pass of the SplitMix64 finaliser — a well-mixed 64→64 hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, replayable schedule of injected faults.
///
/// Built with the fluent constructors and handed to
/// [`crate::run_spmd_ft`]. A default plan (`FaultPlan::new(seed)`)
/// injects nothing; see [`FaultPlan::has_chaos`] for when the reliable
/// delivery layer activates.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every drop/delay coin flip.
    pub seed: u64,
    /// Probability an individual transmission attempt is dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is delayed.
    pub delay_prob: f64,
    /// Maximum injected delivery delay in virtual seconds (uniform in
    /// `[0, max_delay)` when the delay coin fires).
    pub max_delay: f64,
    /// Retransmission budget per message before the sender gives up and
    /// fails the rank.
    pub max_retries: u32,
    /// Base retransmission timeout in virtual seconds; attempt `a`
    /// backs off `rto · 2^a` before retransmitting.
    pub rto: f64,
    /// Scheduled crashes `(rank, step)`: the rank panics when it calls
    /// [`crate::ThreadComm::fault_step`] with that step. At most one
    /// entry per rank is honoured (the earliest step wins).
    pub crashes: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as the fault-free baseline
    /// for overhead measurements: checkpoints are still written).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0.0,
            max_retries: 8,
            rto: 1e-4,
            crashes: Vec::new(),
        }
    }

    /// Enable message drops with the given per-attempt probability.
    pub fn with_drops(mut self, prob: f64) -> Self {
        assert!((0.0..1.0).contains(&prob), "drop probability in [0,1)");
        self.drop_prob = prob;
        self
    }

    /// Enable message delays: with probability `prob` a delivered
    /// message arrives up to `max_delay` virtual seconds late.
    pub fn with_delays(mut self, prob: f64, max_delay: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "delay probability in [0,1]");
        assert!(max_delay >= 0.0);
        self.delay_prob = prob;
        self.max_delay = max_delay;
        self
    }

    /// Schedule `rank` to crash when it reaches step boundary `step`.
    pub fn with_crash(mut self, rank: usize, step: usize) -> Self {
        self.crashes.push((rank, step));
        self
    }

    /// Set the retransmission budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Set the base retransmission timeout (virtual seconds).
    pub fn with_rto(mut self, rto: f64) -> Self {
        assert!(rto >= 0.0);
        self.rto = rto;
        self
    }

    /// True when the plan can perturb message traffic (drops or
    /// delays); this is what switches sends onto the reliable
    /// ack/retransmit path. Pure crash plans leave point-to-point
    /// traffic on the plain zero-overhead path.
    pub fn has_chaos(&self) -> bool {
        self.drop_prob > 0.0 || self.delay_prob > 0.0
    }

    /// Deterministic uniform draw in `[0,1)` for a given decision site.
    fn coin(&self, salt: u64, src: usize, dest: usize, seq: u64, attempt: u32) -> f64 {
        let mut h = splitmix64(self.seed ^ salt);
        h = splitmix64(h ^ src as u64);
        h = splitmix64(h ^ dest as u64);
        h = splitmix64(h ^ seq);
        h = splitmix64(h ^ attempt as u64);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does transmission attempt `attempt` of message `seq` from `src`
    /// to `dest` get dropped?
    pub fn drops(&self, src: usize, dest: usize, seq: u64, attempt: u32) -> bool {
        self.drop_prob > 0.0 && self.coin(0xD209, src, dest, seq, attempt) < self.drop_prob
    }

    /// Injected delivery delay (virtual seconds) for message `seq`,
    /// zero when the delay coin does not fire.
    pub fn delay(&self, src: usize, dest: usize, seq: u64) -> f64 {
        if self.delay_prob == 0.0 {
            return 0.0;
        }
        if self.coin(0xDE1A, src, dest, seq, 0) < self.delay_prob {
            self.coin(0xDE1B, src, dest, seq, 0) * self.max_delay
        } else {
            0.0
        }
    }

    /// The step at which `rank` is scheduled to crash, if any (earliest
    /// entry wins when a rank is listed twice).
    pub fn crash_step(&self, rank: usize) -> Option<usize> {
        self.crashes
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, s)| s)
            .min()
    }

    /// True when any rank is scheduled to crash exactly at `step` —
    /// the boundaries where survivors run the failure-agreement
    /// exchange. Scheduling the exchange off the plan keeps fault-free
    /// steps free of agreement traffic (the detection itself still
    /// happens at the message level, via the poison marker).
    pub fn any_crash_at(&self, step: usize) -> bool {
        self.crashes.iter().any(|&(_, s)| s == step)
    }

    /// Largest rank index referenced by a scheduled crash.
    pub fn max_crash_rank(&self) -> Option<usize> {
        self.crashes.iter().map(|&(r, _)| r).max()
    }
}

/// Panic payload carried by an injected crash; [`crate::run_spmd_ft`]
/// downcasts it to distinguish scheduled deaths from genuine bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash {
    /// The rank that crashed.
    pub rank: usize,
    /// The step boundary at which it crashed.
    pub step: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_replayable() {
        let a = FaultPlan::new(42).with_drops(0.3).with_delays(0.2, 1e-3);
        let b = FaultPlan::new(42).with_drops(0.3).with_delays(0.2, 1e-3);
        for seq in 0..50 {
            assert_eq!(a.drops(0, 1, seq, 0), b.drops(0, 1, seq, 0));
            assert_eq!(a.delay(0, 1, seq).to_bits(), b.delay(0, 1, seq).to_bits());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::new(1).with_drops(0.5);
        let b = FaultPlan::new(2).with_drops(0.5);
        let diff = (0..256)
            .filter(|&seq| a.drops(0, 1, seq, 0) != b.drops(0, 1, seq, 0))
            .count();
        assert!(diff > 50, "seeds should decorrelate drop streams: {diff}");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let p = FaultPlan::new(7).with_drops(0.25);
        let n = 4000;
        let hits = (0..n).filter(|&seq| p.drops(2, 3, seq, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn delays_bounded_and_gated() {
        let p = FaultPlan::new(9).with_delays(0.5, 2e-3);
        let mut fired = 0;
        for seq in 0..500 {
            let d = p.delay(1, 0, seq);
            assert!((0.0..2e-3).contains(&d) || d == 0.0);
            if d > 0.0 {
                fired += 1;
            }
        }
        assert!(fired > 150 && fired < 350, "{fired}");
        assert_eq!(FaultPlan::new(9).delay(1, 0, 3), 0.0);
    }

    #[test]
    fn crash_schedule_queries() {
        let p = FaultPlan::new(0).with_crash(2, 10).with_crash(2, 5).with_crash(0, 7);
        assert_eq!(p.crash_step(2), Some(5));
        assert_eq!(p.crash_step(0), Some(7));
        assert_eq!(p.crash_step(1), None);
        assert!(p.any_crash_at(5) && p.any_crash_at(7) && p.any_crash_at(10));
        assert!(!p.any_crash_at(6));
        assert_eq!(p.max_crash_rank(), Some(2));
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::new(123);
        assert!(!p.has_chaos());
        assert!(!p.drops(0, 1, 0, 0));
        assert_eq!(p.delay(0, 1, 0), 0.0);
        assert_eq!(p.crash_step(0), None);
    }
}
