//! The communicator abstraction every parallel engine programs against.

use crate::machine::Machine;
use crate::message::Tag;
use crate::stats::CommStats;

/// An SPMD communicator: identity, point-to-point messaging and the
/// virtual-time hooks. Collective operations live in
/// [`crate::collectives`] as free functions so that multiple algorithmic
/// variants can coexist (they are what the ablation experiments compare).
///
/// The contract mirrors a minimal MPI:
///
/// * `send` is asynchronous and never blocks (unbounded buffering);
/// * `recv` blocks until a matching `(src, tag)` message arrives, with
///   out-of-order arrivals buffered — i.e. MPI's non-overtaking envelope
///   matching;
/// * each call also advances the rank's **virtual clock** by the machine
///   model's cost for the operation, and tallies [`CommStats`].
///
/// # Panics
///
/// `recv` panics when a poison message from a failed peer arrives; the
/// SPMD driver converts that unwinding into a [`crate::ClusterError`].
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// The machine model this run executes under.
    fn machine(&self) -> &Machine;

    /// Asynchronously send `data` to `dest` with `tag`.
    ///
    /// Virtual cost (charged to the sender): `α + β·wire_bytes`.
    fn send(&mut self, dest: usize, tag: Tag, data: &[f64]);

    /// Block until a message with envelope `(src, tag)` arrives and
    /// return its payload.
    ///
    /// Virtual cost: the receiver's clock becomes
    /// `max(own clock, sender delivery time)` — waiting is free, arrival
    /// cannot precede the modelled delivery.
    fn recv(&mut self, src: usize, tag: Tag) -> Vec<f64>;

    /// Advance this rank's virtual clock by `seconds` of computation.
    fn compute(&mut self, seconds: f64);

    /// Advance the clock by `units` abstract work units priced by the
    /// machine model.
    fn compute_units(&mut self, units: f64) {
        let t = self.machine().work_time(units);
        self.compute(t);
    }

    /// Stall this rank's virtual clock for `seconds` behind co-node
    /// senders sharing one uplink. The collectives charge this *before*
    /// a far send whenever several ranks of one SMP node inject into
    /// the fabric in the same schedule stage; a flat butterfly at large
    /// P pays it heavily, a hierarchical collective (one leader per
    /// node) barely at all. The default books it as plain computation
    /// delay; [`crate::ThreadComm`] attributes it to wait time and the
    /// `link_stall_time` counter instead.
    fn link_stall(&mut self, seconds: f64) {
        self.compute(seconds);
    }

    /// Current virtual time of this rank.
    fn now(&self) -> f64;

    /// Snapshot of the communication counters.
    fn stats(&self) -> CommStats;
}

#[cfg(test)]
mod tests {
    // Communicator is exercised end-to-end in thread_comm and collectives
    // tests; here we only pin trait-object safety.
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_c: &mut dyn Communicator) {}
    }
}
