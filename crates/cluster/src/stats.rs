//! Per-rank counters and run-level time aggregation.

/// Communication/computation counters for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Modelled wire bytes sent (payload + envelope).
    pub bytes_sent: u64,
    /// Virtual seconds spent injecting messages (α + β·bytes each).
    pub send_time: f64,
    /// Virtual seconds spent blocked waiting for arrivals.
    pub wait_time: f64,
    /// Virtual seconds of modelled computation.
    pub compute_time: f64,
    /// Messages that vanished: the destination inbox was gone (receiver
    /// returned early or died) or a fault plan dropped the transmission.
    pub dropped_msgs: u64,
    /// Retransmission attempts made by the reliable-delivery layer.
    pub retransmits: u64,
    /// Acknowledgements counted by the reliable-delivery layer (one per
    /// message eventually delivered under an active drop plan).
    pub ack_msgs: u64,
    /// Virtual seconds spent in exponential backoff between retransmits.
    pub backoff_time: f64,
    /// Virtual seconds spent writing coordinated checkpoints.
    pub ckpt_time: f64,
    /// Messages that crossed the fabric (far links); a subset of
    /// `msgs_sent`. Zero on [`crate::TopologyKind::Uniform`] machines.
    pub far_msgs: u64,
    /// Wire bytes of the far messages; a subset of `bytes_sent`.
    pub far_bytes: u64,
    /// Virtual seconds stalled behind co-node senders sharing one
    /// uplink (charged by the collectives' contention model).
    pub link_stall_time: f64,
}

impl CommStats {
    /// Total virtual communication time (send + wait).
    pub fn comm_time(&self) -> f64 {
        self.send_time + self.wait_time
    }

    /// Fraction of this rank's busy time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.comm_time() + self.compute_time;
        if total == 0.0 {
            0.0
        } else {
            self.comm_time() / total
        }
    }
}

/// Result of one rank of an SPMD run.
#[derive(Debug, Clone)]
pub struct SpmdResult<T> {
    /// Rank id.
    pub rank: usize,
    /// The closure's return value on this rank.
    pub value: T,
    /// The rank's virtual clock at completion.
    pub time: f64,
    /// The rank's counters.
    pub stats: CommStats,
}

/// Aggregated timing view of a whole SPMD run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeModel {
    /// Modelled parallel execution time: max over ranks of the final
    /// virtual clock (the makespan — what a stopwatch would measure).
    pub makespan: f64,
    /// Mean per-rank communication time.
    pub mean_comm: f64,
    /// Mean per-rank computation time.
    pub mean_compute: f64,
    /// Max over ranks of communication time.
    pub max_comm: f64,
    /// Total messages across ranks.
    pub total_msgs: u64,
    /// Total modelled bytes across ranks.
    pub total_bytes: u64,
    /// Total messages that vanished (dead inbox or injected drop).
    pub total_dropped: u64,
    /// Total retransmission attempts across ranks.
    pub total_retransmits: u64,
    /// Total acknowledged deliveries across ranks.
    pub total_acks: u64,
    /// Total virtual seconds spent writing checkpoints across ranks.
    pub total_ckpt_time: f64,
    /// Total far (fabric-crossing) messages across ranks.
    pub total_far_msgs: u64,
    /// Total far wire bytes across ranks.
    pub total_far_bytes: u64,
    /// Total virtual seconds stalled on shared uplinks across ranks.
    pub total_link_stall: f64,
    /// Number of ranks.
    pub ranks: usize,
}

impl TimeModel {
    /// Summarise a run.
    pub fn from_results<T>(results: &[SpmdResult<T>]) -> Self {
        let ranks = results.len();
        let makespan = results.iter().map(|r| r.time).fold(0.0, f64::max);
        let mean_comm =
            results.iter().map(|r| r.stats.comm_time()).sum::<f64>() / ranks.max(1) as f64;
        let mean_compute =
            results.iter().map(|r| r.stats.compute_time).sum::<f64>() / ranks.max(1) as f64;
        let max_comm = results
            .iter()
            .map(|r| r.stats.comm_time())
            .fold(0.0, f64::max);
        let total_msgs = results.iter().map(|r| r.stats.msgs_sent).sum();
        let total_bytes = results.iter().map(|r| r.stats.bytes_sent).sum();
        let total_dropped = results.iter().map(|r| r.stats.dropped_msgs).sum();
        let total_retransmits = results.iter().map(|r| r.stats.retransmits).sum();
        let total_acks = results.iter().map(|r| r.stats.ack_msgs).sum();
        let total_ckpt_time = results.iter().map(|r| r.stats.ckpt_time).sum();
        let total_far_msgs = results.iter().map(|r| r.stats.far_msgs).sum();
        let total_far_bytes = results.iter().map(|r| r.stats.far_bytes).sum();
        let total_link_stall = results.iter().map(|r| r.stats.link_stall_time).sum();
        TimeModel {
            makespan,
            mean_comm,
            mean_compute,
            max_comm,
            total_msgs,
            total_bytes,
            total_dropped,
            total_retransmits,
            total_acks,
            total_ckpt_time,
            total_far_msgs,
            total_far_bytes,
            total_link_stall,
            ranks,
        }
    }

    /// Fold the clock and counters of a crashed rank into the summary.
    ///
    /// Crashed ranks produce no [`SpmdResult`]; their partial progress
    /// still consumed modelled time and messages, so fault-tolerant runs
    /// absorb them here to keep makespans and message totals honest.
    pub fn absorb_crashed(&mut self, time: f64, stats: &CommStats) {
        self.makespan = self.makespan.max(time);
        self.total_msgs += stats.msgs_sent;
        self.total_bytes += stats.bytes_sent;
        self.total_dropped += stats.dropped_msgs;
        self.total_retransmits += stats.retransmits;
        self.total_acks += stats.ack_msgs;
        self.total_ckpt_time += stats.ckpt_time;
        self.total_far_msgs += stats.far_msgs;
        self.total_far_bytes += stats.far_bytes;
        self.total_link_stall += stats.link_stall_time;
    }

    /// Communication share of the makespan-weighted busy time:
    /// `mean_comm / (mean_comm + mean_compute)`.
    pub fn comm_fraction(&self) -> f64 {
        let busy = self.mean_comm + self.mean_compute;
        if busy == 0.0 {
            0.0
        } else {
            self.mean_comm / busy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(rank: usize, time: f64, comm: f64, compute: f64) -> SpmdResult<()> {
        SpmdResult {
            rank,
            value: (),
            time,
            stats: CommStats {
                msgs_sent: 2,
                bytes_sent: 100,
                send_time: comm / 2.0,
                wait_time: comm / 2.0,
                compute_time: compute,
                ..Default::default()
            },
        }
    }

    #[test]
    fn makespan_is_max_rank_time() {
        let rs = vec![res(0, 1.0, 0.1, 0.9), res(1, 2.0, 0.5, 1.5)];
        let tm = TimeModel::from_results(&rs);
        assert_eq!(tm.makespan, 2.0);
        assert_eq!(tm.ranks, 2);
        assert_eq!(tm.total_msgs, 4);
        assert_eq!(tm.total_bytes, 200);
        assert!((tm.mean_comm - 0.3).abs() < 1e-15);
        assert!((tm.max_comm - 0.5).abs() < 1e-15);
    }

    #[test]
    fn comm_fraction_bounds() {
        let s = CommStats {
            send_time: 1.0,
            wait_time: 1.0,
            compute_time: 2.0,
            ..Default::default()
        };
        assert!((s.comm_fraction() - 0.5).abs() < 1e-15);
        assert_eq!(CommStats::default().comm_fraction(), 0.0);
    }

    #[test]
    fn absorb_crashed_extends_makespan_and_totals() {
        let rs = vec![res(0, 1.0, 0.1, 0.9)];
        let mut tm = TimeModel::from_results(&rs);
        let crashed = CommStats {
            msgs_sent: 5,
            bytes_sent: 40,
            retransmits: 3,
            ack_msgs: 2,
            dropped_msgs: 1,
            ckpt_time: 0.25,
            ..Default::default()
        };
        tm.absorb_crashed(3.0, &crashed);
        assert_eq!(tm.makespan, 3.0);
        assert_eq!(tm.total_msgs, 7);
        assert_eq!(tm.total_retransmits, 3);
        assert_eq!(tm.total_acks, 2);
        assert_eq!(tm.total_dropped, 1);
        assert!((tm.total_ckpt_time - 0.25).abs() < 1e-15);
        // ranks still reflects survivors only.
        assert_eq!(tm.ranks, 1);
    }
}
