//! Message envelope and tags.

/// A message tag — disambiguates logically distinct exchanges between the
/// same pair of ranks, exactly like an MPI tag.
pub type Tag = u32;

/// Tags reserved by the runtime; user code must use tags below
/// [`RESERVED_TAG_BASE`].
pub const RESERVED_TAG_BASE: Tag = 0xFFFF_0000;

/// Tag used by the poison-propagation protocol when a rank panics.
pub const POISON_TAG: Tag = RESERVED_TAG_BASE + 1;

/// Tags used internally by the collective algorithms.
pub const COLL_TAG_BASE: Tag = RESERVED_TAG_BASE + 0x100;

/// Tags used internally by the fault-tolerance layer (failure agreement
/// exchange, recovery collectives).
pub const FT_TAG_BASE: Tag = RESERVED_TAG_BASE + 0x200;

/// Tags used internally by the topology-aware collective engine's
/// hierarchical schedules.
pub const ENGINE_TAG_BASE: Tag = RESERVED_TAG_BASE + 0x300;

/// A point-to-point message.
///
/// The payload is a boxed `f64` slice — every quantity the pricing
/// engines exchange (slab boundaries, partial sums, serialized statistics)
/// is a vector of doubles, matching the MPI_DOUBLE traffic of the original
/// codes. `sent_at` carries the sender's virtual clock at completion of
/// the modelled transfer, making receiver-side clock updates deterministic.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload.
    pub data: Box<[f64]>,
    /// Sender's virtual time at which the message is fully delivered
    /// under the machine model.
    pub sent_at: f64,
    /// True when this is a poison marker from a failed rank.
    pub poison: bool,
}

impl Message {
    /// Payload size in modelled bytes (8 per f64 plus a fixed 16-byte
    /// envelope, mirroring MPI header overheads).
    pub fn wire_bytes(len: usize) -> usize {
        16 + 8 * len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_counts_envelope() {
        assert_eq!(Message::wire_bytes(0), 16);
        assert_eq!(Message::wire_bytes(10), 96);
    }

    #[test]
    fn reserved_tags_above_user_space() {
        // Pin the tag-space layout (evaluated through locals so the
        // relationship is checked as data, not folded away silently).
        let (base, poison, coll) = (RESERVED_TAG_BASE, POISON_TAG, COLL_TAG_BASE);
        assert!(poison > base);
        assert!(coll > poison);
    }
}
