//! Execution traces: per-rank event logs in virtual time.
//!
//! The performance-evaluation papers of the era read their numbers off
//! per-rank timelines (compute/communicate Gantt charts from tools like
//! Upshot/Jumpshot). [`crate::run_spmd_traced`] records the same events
//! against the virtual clock; this module summarises and renders them.

/// One virtual-time event on a rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Modelled computation from `start` to `end`.
    Compute {
        /// Start (virtual seconds).
        start: f64,
        /// End (virtual seconds).
        end: f64,
    },
    /// A send injected at `start`, occupying the rank until `end`.
    Send {
        /// Injection time.
        start: f64,
        /// Completion of the modelled transfer.
        end: f64,
        /// Destination rank.
        dest: usize,
        /// Wire bytes.
        bytes: usize,
    },
    /// A blocking receive that waited from `start` until the message's
    /// modelled arrival at `end`.
    Wait {
        /// When the rank started waiting.
        start: f64,
        /// Message arrival.
        end: f64,
        /// Source rank.
        src: usize,
    },
    /// A message that vanished at injection time: the destination's inbox
    /// was already gone (receiver returned early or died). Instantaneous
    /// in virtual time; recorded so lost traffic is visible in traces.
    Drop {
        /// Virtual time of the failed injection.
        at: f64,
        /// Intended destination rank.
        dest: usize,
    },
}

impl TraceEvent {
    /// Event duration.
    pub fn duration(&self) -> f64 {
        match *self {
            TraceEvent::Compute { start, end }
            | TraceEvent::Send { start, end, .. }
            | TraceEvent::Wait { start, end, .. } => end - start,
            TraceEvent::Drop { .. } => 0.0,
        }
    }

    /// Event end time.
    pub fn end(&self) -> f64 {
        match *self {
            TraceEvent::Compute { end, .. }
            | TraceEvent::Send { end, .. }
            | TraceEvent::Wait { end, .. } => end,
            TraceEvent::Drop { at, .. } => at,
        }
    }
}

/// Aggregate view of one rank's trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankSummary {
    /// Rank id.
    pub rank: usize,
    /// Total compute seconds.
    pub compute: f64,
    /// Total send seconds.
    pub send: f64,
    /// Total blocked-waiting seconds.
    pub wait: f64,
    /// Messages that vanished (dead destination inbox).
    pub dropped: u64,
    /// Completion time (end of the last event).
    pub finish: f64,
}

impl RankSummary {
    /// Fraction of the rank's lifetime spent computing.
    pub fn utilization(&self) -> f64 {
        if self.finish == 0.0 {
            0.0
        } else {
            self.compute / self.finish
        }
    }
}

/// Summarise one rank's events.
pub fn summarize(rank: usize, events: &[TraceEvent]) -> RankSummary {
    let mut s = RankSummary {
        rank,
        compute: 0.0,
        send: 0.0,
        wait: 0.0,
        dropped: 0,
        finish: 0.0,
    };
    for e in events {
        match e {
            TraceEvent::Compute { .. } => s.compute += e.duration(),
            TraceEvent::Send { .. } => s.send += e.duration(),
            TraceEvent::Wait { .. } => s.wait += e.duration(),
            TraceEvent::Drop { .. } => s.dropped += 1,
        }
        s.finish = s.finish.max(e.end());
    }
    s
}

/// Render per-rank ASCII timelines: `#` compute, `s` send, `.` wait,
/// `x` a dropped message (dead destination), space idle-at-end.
/// `width` columns span the global makespan.
pub fn render_gantt(traces: &[Vec<TraceEvent>], width: usize) -> String {
    assert!(width >= 10, "need a sensible width");
    let makespan = traces
        .iter()
        .flat_map(|t| t.iter().map(TraceEvent::end))
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    if makespan == 0.0 {
        return out;
    }
    let scale = width as f64 / makespan;
    for (rank, events) in traces.iter().enumerate() {
        let mut row = vec![' '; width];
        for e in events {
            let (start, ch) = match e {
                TraceEvent::Compute { start, .. } => (*start, '#'),
                TraceEvent::Send { start, .. } => (*start, 's'),
                TraceEvent::Wait { start, .. } => (*start, '.'),
                TraceEvent::Drop { at, .. } => (*at, 'x'),
            };
            let from = ((start * scale) as usize).min(width - 1);
            let to = ((e.end() * scale).ceil() as usize).clamp(from + 1, width);
            for cell in &mut row[from..to] {
                // Compute wins ties so short sends don't hide work,
                // but a drop mark always shows: lost traffic must not
                // be hidden behind overlapping work.
                if *cell == ' ' || ch == 'x' || (*cell != '#' && *cell != 'x' && ch == '#') {
                    *cell = ch;
                }
            }
        }
        let line: String = row.into_iter().collect();
        out.push_str(&format!("r{rank:<3}|{line}|\n"));
    }
    let dropped: u64 = traces
        .iter()
        .flat_map(|t| t.iter())
        .filter(|e| matches!(e, TraceEvent::Drop { .. }))
        .count() as u64;
    out.push_str(&format!(
        "     makespan {:.3} ms   (# compute, s send, . wait, x drop)\n",
        makespan * 1e3
    ));
    if dropped > 0 {
        out.push_str(&format!("     {dropped} message(s) dropped\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Compute {
                start: 0.0,
                end: 0.4,
            },
            TraceEvent::Send {
                start: 0.4,
                end: 0.5,
                dest: 1,
                bytes: 80,
            },
            TraceEvent::Wait {
                start: 0.5,
                end: 0.9,
                src: 1,
            },
            TraceEvent::Compute {
                start: 0.9,
                end: 1.0,
            },
        ]
    }

    #[test]
    fn summary_accumulates_by_kind() {
        let s = summarize(3, &sample());
        assert_eq!(s.rank, 3);
        assert!((s.compute - 0.5).abs() < 1e-12);
        assert!((s.send - 0.1).abs() < 1e-12);
        assert!((s.wait - 0.4).abs() < 1e-12);
        assert_eq!(s.finish, 1.0);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_all_phases() {
        let g = render_gantt(&[sample()], 40);
        assert!(g.contains('#'));
        assert!(g.contains('s'));
        assert!(g.contains('.'));
        assert!(g.contains("makespan"));
        assert!(g.starts_with("r0  |"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_gantt(&[vec![]], 20).is_empty());
    }

    #[test]
    fn drops_are_counted_and_rendered() {
        let mut t = sample();
        t.push(TraceEvent::Drop { at: 0.95, dest: 2 });
        let s = summarize(0, &t);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.finish, 1.0);
        let g = render_gantt(&[t], 40);
        assert!(g.contains('x'));
        assert!(g.contains("1 message(s) dropped"));
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = summarize(0, &[]);
        assert_eq!(s.finish, 0.0);
        assert_eq!(s.utilization(), 0.0);
    }
}
