//! The topology-aware collective engine.
//!
//! Flat collectives stop scaling long before 1024 ranks: every core
//! rank of a recursive-doubling butterfly injects into the fabric in
//! every high-mask round, so on a cluster of SMP nodes a whole node's
//! worth of senders serialises on one uplink, and the flat all-to-all
//! patterns of the failure-agreement and gather paths are O(p²). The
//! [`CollectiveEngine`] keys a *hierarchical* schedule off the
//! machine's [`TopologyKind`]:
//!
//! | topology | algorithm | why |
//! |---|---|---|
//! | `Uniform` | flat recursive doubling | no hierarchy to exploit; identical to the legacy path bit for bit and second for second |
//! | `Hypercube` | flat recursive doubling | the butterfly partner `rank ^ mask` *is* the dimension-`k` neighbour: flat doubling already runs entirely on near links |
//! | `SmpCluster{g}` | two-level group-leader | one leader per node talks across the fabric; everything else is intra-node |
//! | `Torus2d{r,c}` | two-level over rows | per-dimension staging: an intra-row stage then a leaders-only inter-row stage |
//!
//! # The bitwise contract
//!
//! Every engine reduction reproduces the **canonical association** of
//! [`collectives::canonical_fold`] exactly, for every rank count and
//! every group size: the two-level schedule's intra-group binomial
//! tree computes precisely the bottom `log₂ g` levels of the canonical
//! tree (groups are `g` consecutive ranks, `g` a power of two dividing
//! the core size), the leader butterfly computes the top levels, and
//! IEEE-754 commutativity absorbs the operand-order differences. A
//! driver may therefore switch between flat and hierarchical
//! collectives — or between machines with different topologies — and
//! price bit-for-bit identically.

use crate::collectives::{self, ReduceOp};
use crate::comm::Communicator;
use crate::machine::{CollectiveChoice, Machine};
use crate::message::{Tag, ENGINE_TAG_BASE};
use crate::topology::TopologyKind;

const T_EFOLD: Tag = ENGINE_TAG_BASE;
const T_EUP: Tag = ENGINE_TAG_BASE + 1;
const T_EX: Tag = ENGINE_TAG_BASE + 2;
const T_EDOWN: Tag = ENGINE_TAG_BASE + 3;
const T_EB0: Tag = ENGINE_TAG_BASE + 4;
const T_EB1: Tag = ENGINE_TAG_BASE + 5;
const T_EB2: Tag = ENGINE_TAG_BASE + 6;
const T_EG0: Tag = ENGINE_TAG_BASE + 7;
const T_EG1: Tag = ENGINE_TAG_BASE + 8;
const T_ER: Tag = ENGINE_TAG_BASE + 9;

/// Largest power of two ≤ `p` (`p ≥ 1`).
fn prev_pow2(p: usize) -> usize {
    1usize << (usize::BITS - 1 - p.leading_zeros())
}

/// The algorithm family a [`CollectiveEngine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// The legacy flat algorithms (recursive doubling, binomial trees,
    /// rooted linear gathers) — optimal when the fabric is uniform or
    /// the butterfly maps onto the wiring (hypercube).
    Flat,
    /// Two-level group-leader schedules over groups of `group`
    /// consecutive ranks (a power of two): intra-group binomial stage,
    /// leaders-only inter-group stage, intra-group distribution stage.
    TwoLevel {
        /// Ranks per group; a power of two.
        group: usize,
    },
}

/// Topology-aware collective engine: one object that every distributed
/// driver routes its collectives through. Construction inspects the
/// machine ([`CollectiveEngine::for_machine`]); all operations preserve
/// the canonical reduction order, so the algorithm choice changes
/// virtual time and message counts but never a price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveEngine {
    algo: CollectiveAlgo,
}

impl CollectiveEngine {
    /// Engine that always runs the flat algorithms.
    pub fn flat() -> Self {
        CollectiveEngine {
            algo: CollectiveAlgo::Flat,
        }
    }

    /// Engine that runs two-level schedules with the given group size.
    ///
    /// # Panics
    /// Panics unless `group` is a power of two ≥ 2.
    pub fn two_level(group: usize) -> Self {
        assert!(
            group >= 2 && group.is_power_of_two(),
            "group must be a power of two >= 2"
        );
        CollectiveEngine {
            algo: CollectiveAlgo::TwoLevel { group },
        }
    }

    /// Select the algorithm for `machine` at `p` ranks — the
    /// selection table in the module docs.
    pub fn for_machine(machine: &Machine, p: usize) -> Self {
        if machine.collectives == CollectiveChoice::FlatOnly || p < 4 {
            return Self::flat();
        }
        let p2 = prev_pow2(p);
        let group = match machine.topology {
            TopologyKind::Uniform | TopologyKind::Hypercube => return Self::flat(),
            TopologyKind::SmpCluster { node_size } => {
                if p <= node_size {
                    // Everything is on one node: flat is all-near.
                    return Self::flat();
                }
                node_size.min(p2)
            }
            TopologyKind::Torus2d { rows: _, cols } => prev_pow2(cols.max(1)).min(p2),
        };
        if group >= 2 && group <= p2 {
            Self::two_level(group)
        } else {
            Self::flat()
        }
    }

    /// The selected algorithm.
    pub fn algo(&self) -> CollectiveAlgo {
        self.algo
    }

    /// Effective group size for `p` ranks: the configured group clamped
    /// to divide the power-of-two core (both are powers of two, so the
    /// min divides). Returns `None` when the schedule degenerates to
    /// flat (group < 2 or a single group would remain).
    fn group_for(&self, p: usize) -> Option<usize> {
        match self.algo {
            CollectiveAlgo::Flat => None,
            CollectiveAlgo::TwoLevel { group } => {
                let g = group.min(prev_pow2(p));
                (g >= 2 && p > 1).then_some(g)
            }
        }
    }

    /// Allreduce in the canonical order.
    pub fn allreduce<C: Communicator + ?Sized>(
        &self,
        comm: &mut C,
        data: &[f64],
        op: ReduceOp,
    ) -> Vec<f64> {
        match self.group_for(comm.size()) {
            None => collectives::allreduce_doubling(comm, data, op),
            Some(g) => two_level_allreduce(comm, data, op, g),
        }
    }

    /// Sum-allreduce in the canonical order.
    pub fn allreduce_sum<C: Communicator + ?Sized>(&self, comm: &mut C, data: &[f64]) -> Vec<f64> {
        self.allreduce(comm, data, ReduceOp::Sum)
    }

    /// Max-allreduce in the canonical order.
    pub fn allreduce_max<C: Communicator + ?Sized>(&self, comm: &mut C, data: &[f64]) -> Vec<f64> {
        self.allreduce(comm, data, ReduceOp::Max)
    }

    /// Broadcast from `root` (identical payload on every rank, so only
    /// the schedule — not the data — depends on the algorithm).
    pub fn broadcast<C: Communicator + ?Sized>(&self, comm: &mut C, root: usize, data: &mut [f64]) {
        match self.group_for(comm.size()) {
            None => collectives::broadcast_tree(comm, root, data),
            Some(g) => two_level_broadcast(comm, root, data, g),
        }
    }

    /// Rooted reduction in the canonical order. Returns `Some` on root.
    pub fn reduce<C: Communicator + ?Sized>(
        &self,
        comm: &mut C,
        root: usize,
        data: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        match self.group_for(comm.size()) {
            None => collectives::reduce_tree(comm, root, data, op),
            Some(g) => two_level_reduce(comm, root, data, op, g),
        }
    }

    /// Gather variable-length per-rank buffers to `root` in rank order.
    /// The two-level schedule bundles each group's parts at its leader
    /// (length-prefixed) and ships one message per group to the root.
    pub fn gather_varied<C: Communicator + ?Sized>(
        &self,
        comm: &mut C,
        root: usize,
        data: &[f64],
    ) -> Option<Vec<Vec<f64>>> {
        match self.group_for(comm.size()) {
            None => collectives::gather_varied(comm, root, data),
            Some(g) => two_level_gather_varied(comm, root, data, g),
        }
    }
}

/// Two-level allreduce: remainder fold, intra-group binomial reduce to
/// the group leaders, leader butterfly, intra-group broadcast,
/// remainder return. Bitwise-identical to flat recursive doubling.
fn two_level_allreduce<C: Communicator + ?Sized>(
    comm: &mut C,
    data: &[f64],
    op: ReduceOp,
    g: usize,
) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    let mut acc = data.to_vec();
    if p == 1 {
        return acc;
    }
    let p2 = prev_pow2(p);
    let rem = p - p2;
    debug_assert!(g.is_power_of_two() && g <= p2);
    // Phase 1: remainder fold — the same schedule as flat doubling, so
    // the canonical leaves are identical.
    if rank >= p2 {
        collectives::charge_uplink_stall(comm, n, rank - p2, |m, r| {
            r >= p2 && m.is_far(r, r - p2)
        });
        comm.send(rank - p2, T_EFOLD, &acc);
        return comm.recv(rank - p2, T_EFOLD);
    }
    if rank < rem {
        let part = comm.recv(rank + p2, T_EFOLD);
        op.apply(&mut acc, &part);
    }
    let local = rank % g;
    // Phase 2a: binomial reduce onto the group leader — the bottom
    // log₂ g levels of the canonical tree (adjacent-block combining).
    let mut mask = 1usize;
    while mask < g {
        if local & mask != 0 {
            let dest = rank - mask;
            collectives::charge_uplink_stall(comm, n, dest, |m, r| {
                r < p2 && (r % g) & mask != 0 && (r % g) & (mask - 1) == 0 && m.is_far(r, r - mask)
            });
            comm.send(dest, T_EUP, &acc);
            break;
        }
        if local + mask < g {
            let part = comm.recv(rank + mask, T_EUP);
            op.apply(&mut acc, &part);
        }
        mask <<= 1;
    }
    // Phase 2b: butterfly over the leaders with masks g, 2g, … — the
    // top levels of the canonical tree. One sender per node.
    if local == 0 {
        let mut lmask = g;
        let mut round: Tag = 0;
        while lmask < p2 {
            let partner = rank ^ lmask;
            collectives::charge_uplink_stall(comm, n, partner, |m, r| {
                r < p2 && r % g == 0 && m.is_far(r, r ^ lmask)
            });
            comm.send(partner, T_EX + round * 16, &acc);
            let part = comm.recv(partner, T_EX + round * 16);
            op.apply(&mut acc, &part);
            lmask <<= 1;
            round += 1;
        }
    }
    // Phase 2c: binomial broadcast of the result within each group.
    let mut mask = 1usize;
    while mask < g {
        if local < mask {
            if local + mask < g {
                let dest = rank + mask;
                collectives::charge_uplink_stall(comm, n, dest, |m, r| {
                    let l = r % g;
                    r < p2 && l < mask && l + mask < g && m.is_far(r, r + mask)
                });
                comm.send(dest, T_EDOWN, &acc);
            }
        } else if local < 2 * mask {
            acc = comm.recv(rank - mask, T_EDOWN);
        }
        mask <<= 1;
    }
    // Phase 3: return to the remainder ranks.
    if rank < rem {
        collectives::charge_uplink_stall(comm, n, rank + p2, |m, r| {
            r < rem && m.is_far(r, r + p2)
        });
        comm.send(rank + p2, T_EFOLD, &acc);
    }
    acc
}

/// Two-level rooted reduce in the canonical order: the same schedule as
/// [`two_level_allreduce`] minus the distribution stages, with the
/// leader stage shaped as a binomial onto rank 0 and a final forward
/// hop to a non-zero root.
fn two_level_reduce<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
    op: ReduceOp,
    g: usize,
) -> Option<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    assert!(root < p);
    let mut acc = data.to_vec();
    if p == 1 {
        return Some(acc);
    }
    let p2 = prev_pow2(p);
    let rem = p - p2;
    // Phase 1: remainder fold.
    if rank >= p2 {
        collectives::charge_uplink_stall(comm, n, rank - p2, |m, r| {
            r >= p2 && m.is_far(r, r - p2)
        });
        comm.send(rank - p2, T_EFOLD, &acc);
        return (rank == root).then(|| comm.recv(0, T_ER));
    }
    if rank < rem {
        let part = comm.recv(rank + p2, T_EFOLD);
        op.apply(&mut acc, &part);
    }
    let local = rank % g;
    // Phase 2a: binomial reduce onto the group leader.
    let mut mask = 1usize;
    while mask < g {
        if local & mask != 0 {
            let dest = rank - mask;
            collectives::charge_uplink_stall(comm, n, dest, |m, r| {
                r < p2 && (r % g) & mask != 0 && (r % g) & (mask - 1) == 0 && m.is_far(r, r - mask)
            });
            comm.send(dest, T_EUP, &acc);
            break;
        }
        if local + mask < g {
            let part = comm.recv(rank + mask, T_EUP);
            op.apply(&mut acc, &part);
        }
        mask <<= 1;
    }
    // Phase 2b: binomial reduce over the leaders onto rank 0 (adjacent
    // leader-block combining = the top canonical levels).
    if local == 0 {
        let li = rank / g;
        let nl = p2 / g;
        let mut lm = 1usize;
        while lm < nl {
            if li & lm != 0 {
                let dest = (li - lm) * g;
                collectives::charge_uplink_stall(comm, n, dest, |m, r| {
                    r < p2 && r % g == 0 && {
                        let i = r / g;
                        i & lm != 0 && i & (lm - 1) == 0 && m.is_far(r, (i - lm) * g)
                    }
                });
                comm.send(dest, T_EUP, &acc);
                break;
            }
            if li + lm < nl {
                let part = comm.recv((li + lm) * g, T_EUP);
                op.apply(&mut acc, &part);
            }
            lm <<= 1;
        }
    }
    // Rank 0 holds the canonical result; forward to a non-zero root.
    if root == 0 {
        return (rank == 0).then_some(acc);
    }
    if rank == 0 {
        comm.send(root, T_ER, &acc);
        return None;
    }
    (rank == root).then(|| comm.recv(0, T_ER))
}

/// Two-level broadcast: root → its group leader, binomial over the
/// leaders, binomial within each group. When the root is not a leader
/// it receives a (redundant, identical) copy in the intra-group stage,
/// which keeps the schedule uniform across ranks.
fn two_level_broadcast<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &mut [f64],
    g: usize,
) {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if p == 1 {
        return;
    }
    let rl = root - root % g; // root's group leader
    // Stage A: ship the payload to the root's leader.
    if root != rl {
        if rank == root {
            comm.send(rl, T_EB0, data);
        } else if rank == rl {
            let v = comm.recv(root, T_EB0);
            data.copy_from_slice(&v);
        }
    }
    // Stage B: binomial broadcast over the leaders, rooted at `rl`.
    if rank % g == 0 {
        let nl = p.div_ceil(g);
        let li = rank / g;
        let vroot = rl / g;
        let vl = (li + nl - vroot) % nl;
        let mut mask = 1usize;
        while mask < nl {
            if vl < mask {
                let vdest = vl + mask;
                if vdest < nl {
                    let dest = ((vdest + vroot) % nl) * g;
                    collectives::charge_uplink_stall(comm, data.len(), dest, |m, r| {
                        if r % g != 0 {
                            return false;
                        }
                        let v = (r / g + nl - vroot) % nl;
                        v < mask && v + mask < nl && m.is_far(r, ((v + mask + vroot) % nl) * g)
                    });
                    comm.send(dest, T_EB1, data);
                }
            } else if vl < 2 * mask {
                let src = ((vl - mask + vroot) % nl) * g;
                let v = comm.recv(src, T_EB1);
                data.copy_from_slice(&v);
            }
            mask <<= 1;
        }
    }
    // Stage C: binomial broadcast within each group from its leader.
    let local = rank % g;
    let gstart = rank - local;
    let gsize = g.min(p - gstart);
    let mut mask = 1usize;
    while mask < gsize {
        if local < mask {
            if local + mask < gsize {
                comm.send(gstart + local + mask, T_EB2, data);
            }
        } else if local < 2 * mask {
            let v = comm.recv(gstart + local - mask, T_EB2);
            data.copy_from_slice(&v);
        }
        mask <<= 1;
    }
}

/// Two-level variable-length gather: group members send to their
/// leader, leaders bundle `[len, payload]` per member in rank order and
/// ship one message per group to the root.
fn two_level_gather_varied<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
    g: usize,
) -> Option<Vec<Vec<f64>>> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    let local = rank % g;
    let gstart = rank - local;
    let gsize = g.min(p - gstart);
    let is_leader = local == 0;
    // Members (everyone but leaders and the root) send to their leader.
    if !is_leader && rank != root {
        collectives::charge_uplink_stall(comm, data.len(), gstart, |m, r| {
            r % g != 0 && r != root && m.is_far(r, r - r % g)
        });
        comm.send(gstart, T_EG0, data);
    }
    // Leaders bundle their group (their own part first is rank order,
    // since the leader is the lowest rank) and ship to the root.
    let mut bundle: Vec<f64> = Vec::new();
    if is_leader {
        for member in gstart..gstart + gsize {
            if member == root {
                continue;
            }
            if member == rank {
                bundle.push(data.len() as f64);
                bundle.extend_from_slice(data);
            } else {
                let part = comm.recv(member, T_EG0);
                bundle.push(part.len() as f64);
                bundle.extend(part);
            }
        }
        if rank != root {
            collectives::charge_uplink_stall(comm, bundle.len(), root, |m, r| {
                r % g == 0 && r != root && m.is_far(r, root)
            });
            comm.send(root, T_EG1, &bundle);
        }
    }
    if rank != root {
        return None;
    }
    // Root unbundles every group in rank order.
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    out[root] = data.to_vec();
    let mut group = 0usize;
    while group * g < p {
        let lstart = group * g;
        let lsize = g.min(p - lstart);
        let packed = if lstart == gstart && is_leader {
            std::mem::take(&mut bundle)
        } else {
            comm.recv(lstart, T_EG1)
        };
        let mut off = 0usize;
        #[allow(clippy::needless_range_loop)]
        for member in lstart..lstart + lsize {
            if member == root {
                continue;
            }
            let len = packed[off] as usize;
            off += 1;
            out[member] = packed[off..off + len].to_vec();
            off += len;
        }
        debug_assert_eq!(off, packed.len());
        group += 1;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::stats::TimeModel;
    use crate::thread_comm::run_spmd;

    fn awkward_payload(rank: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = ((rank * 2654435761 + i * 40503) % 8191) as f64;
                (x - 4095.0) * (1.0 + 1e-13 * rank as f64) / 3.0
            })
            .collect()
    }

    #[test]
    fn selection_table_matches_topologies() {
        let p = 64;
        assert_eq!(
            CollectiveEngine::for_machine(&Machine::cluster2002(), p).algo(),
            CollectiveAlgo::Flat
        );
        assert_eq!(
            CollectiveEngine::for_machine(&Machine::hypercube2002(), p).algo(),
            CollectiveAlgo::Flat
        );
        assert_eq!(
            CollectiveEngine::for_machine(&Machine::smp_cluster2002(8), p).algo(),
            CollectiveAlgo::TwoLevel { group: 8 }
        );
        // Everything on one node: flat (all near).
        assert_eq!(
            CollectiveEngine::for_machine(&Machine::smp_cluster2002(8), 8).algo(),
            CollectiveAlgo::Flat
        );
        // FlatOnly overrides the topology.
        assert_eq!(
            CollectiveEngine::for_machine(
                &Machine::smp_cluster2002(8).with_collectives(CollectiveChoice::FlatOnly),
                p
            )
            .algo(),
            CollectiveAlgo::Flat
        );
    }

    #[test]
    fn two_level_allreduce_bitwise_matches_flat() {
        for &p in &[4usize, 6, 8, 12, 16, 24, 33] {
            for &group in &[2usize, 4, 8] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let data = awkward_payload(comm.rank(), 9);
                    let flat = collectives::allreduce_doubling(comm, &data, ReduceOp::Sum);
                    let eng = CollectiveEngine::two_level(group);
                    let two = eng.allreduce(comm, &data, ReduceOp::Sum);
                    (flat, two)
                })
                .unwrap();
                for res in &r {
                    let (flat, two) = &res.value;
                    for (a, b) in flat.iter().zip(two) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "p={p} group={group} rank={}",
                            res.rank
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_level_reduce_bitwise_matches_flat_any_root() {
        for &p in &[5usize, 8, 12, 16] {
            for root in [0, p / 2, p - 1] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let data = awkward_payload(comm.rank(), 4);
                    let flat = collectives::allreduce_doubling(comm, &data, ReduceOp::Sum);
                    let eng = CollectiveEngine::two_level(4);
                    let two = eng.reduce(comm, root, &data, ReduceOp::Sum);
                    (flat, two)
                })
                .unwrap();
                for res in &r {
                    let (flat, two) = &res.value;
                    assert_eq!(two.is_some(), res.rank == root, "p={p} root={root}");
                    if let Some(t) = two {
                        for (a, b) in flat.iter().zip(t) {
                            assert_eq!(a.to_bits(), b.to_bits(), "p={p} root={root}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn two_level_broadcast_delivers_any_root() {
        for &p in &[4usize, 7, 12, 16] {
            for root in [0, 1, p - 1] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let mut data = if comm.rank() == root {
                        vec![1.5, -2.25, 99.0]
                    } else {
                        vec![0.0; 3]
                    };
                    CollectiveEngine::two_level(4).broadcast(comm, root, &mut data);
                    data
                })
                .unwrap();
                for res in &r {
                    assert_eq!(res.value, vec![1.5, -2.25, 99.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn two_level_gather_varied_preserves_rank_order() {
        for &p in &[4usize, 7, 12] {
            for root in [0, 2, p - 1] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let data = vec![comm.rank() as f64; comm.rank() % 3 + 1];
                    CollectiveEngine::two_level(4).gather_varied(comm, root, &data)
                })
                .unwrap();
                for res in &r {
                    assert_eq!(res.value.is_some(), res.rank == root);
                    if let Some(parts) = &res.value {
                        for (src, part) in parts.iter().enumerate() {
                            assert_eq!(part, &vec![src as f64; src % 3 + 1], "p={p} root={root}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hierarchical_beats_flat_on_smp_cluster_makespan_and_far_msgs() {
        let p = 64;
        let machine = Machine::smp_cluster2002(8);
        let run = |engine: CollectiveEngine| {
            let r = run_spmd(p, machine, move |comm| {
                let data = awkward_payload(comm.rank(), 16);
                let out = engine.allreduce_sum(comm, &data);
                (out[0], comm.stats())
            })
            .unwrap();
            let tm = TimeModel::from_results(
                &r.iter()
                    .map(|res| crate::stats::SpmdResult {
                        rank: res.rank,
                        value: (),
                        time: res.time,
                        stats: res.value.1,
                    })
                    .collect::<Vec<_>>(),
            );
            (r[0].value.0, tm)
        };
        let (flat_val, flat) = run(CollectiveEngine::flat());
        let (two_val, two) = run(CollectiveEngine::two_level(8));
        assert_eq!(flat_val.to_bits(), two_val.to_bits());
        assert!(
            two.makespan < flat.makespan,
            "two-level {} should beat flat {}",
            two.makespan,
            flat.makespan
        );
        assert!(
            two.total_far_msgs < flat.total_far_msgs,
            "far msgs {} !< {}",
            two.total_far_msgs,
            flat.total_far_msgs
        );
        assert!(two.total_msgs < flat.total_msgs);
        assert_eq!(two.total_link_stall, 0.0, "leaders never share an uplink");
        assert!(flat.total_link_stall > 0.0);
    }

    #[test]
    fn engine_on_uniform_machine_is_cost_identical_to_flat_collectives() {
        let p = 8;
        let run = |use_engine: bool| {
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let data = awkward_payload(comm.rank(), 8);
                let out = if use_engine {
                    let eng = CollectiveEngine::for_machine(&comm.machine().clone(), comm.size());
                    eng.allreduce_sum(comm, &data)
                } else {
                    collectives::allreduce_sum(comm, &data)
                };
                (out, comm.stats())
            })
            .unwrap();
            r.iter()
                .map(|res| (res.value.clone(), res.time))
                .collect::<Vec<_>>()
        };
        let a = run(false);
        let b = run(true);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0 .0, y.0 .0);
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "virtual clocks must match");
            assert_eq!(x.0 .1.msgs_sent, y.0 .1.msgs_sent);
            assert_eq!(x.0 .1.bytes_sent, y.0 .1.bytes_sent);
        }
    }
}
