//! Thread-backed SPMD runtime.
//!
//! [`run_spmd`] launches one OS thread per rank. Ranks exchange
//! [`Message`]s over unbounded crossbeam channels (one inbox per rank,
//! one sender handle per source so per-source FIFO order holds — the MPI
//! non-overtaking guarantee). Oversubscription is fine: on the single-core
//! build host 64 ranks simply time-slice, and because all *reported*
//! times come from the deterministic virtual clock, results are identical
//! to a run on a 64-core machine.
//!
//! [`run_spmd_ft`] is the fault-tolerant entry point: it threads a
//! [`FaultPlan`] into every rank's communicator, activating deterministic
//! message drops/delays (answered by a modelled ack/retransmit layer),
//! scheduled rank crashes at step boundaries, and the poison-based
//! failure detection consumed by [`crate::checkpoint::Supervisor`].
//! When no plan is active every fast path reduces to a single `Option`
//! check — plain runs are unchanged.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::comm::Communicator;
use crate::error::ClusterError;
use crate::fault::{FaultPlan, InjectedCrash};
use crate::machine::Machine;
use crate::message::{Message, Tag, POISON_TAG};
use crate::stats::{CommStats, SpmdResult};
use crate::trace::TraceEvent;

/// Per-rank fault-injection state: the shared plan plus the counters
/// and observations that drive deterministic replay.
struct FaultState {
    plan: Arc<FaultPlan>,
    /// Per-destination message sequence numbers (inputs to the plan's
    /// drop/delay coins, so the fault stream is order-deterministic).
    send_seq: Vec<u64>,
    /// Death clock of each rank whose poison marker we have consumed,
    /// for ranks with a *scheduled* crash. Unscheduled poison keeps the
    /// fail-fast cascade semantics of plain runs.
    observed_dead: Vec<Option<f64>>,
}

/// Per-rank communicator handle (see [`Communicator`] for semantics).
pub struct ThreadComm {
    rank: usize,
    size: usize,
    machine: Machine,
    clock: f64,
    stats: CommStats,
    /// senders[d] feeds rank d's inbox.
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// Out-of-order arrivals, keyed by envelope, FIFO within a key.
    pending: HashMap<(usize, Tag), VecDeque<Message>>,
    /// Virtual-time event log, when tracing is enabled.
    trace: Option<Vec<TraceEvent>>,
    /// Fault-injection state; `None` on plain runs (the zero-cost path).
    fault: Option<FaultState>,
}

impl ThreadComm {
    fn new(
        rank: usize,
        size: usize,
        machine: Machine,
        senders: Vec<Sender<Message>>,
        inbox: Receiver<Message>,
    ) -> Self {
        ThreadComm {
            rank,
            size,
            machine,
            clock: 0.0,
            stats: CommStats::default(),
            senders,
            inbox,
            pending: HashMap::new(),
            trace: None,
            fault: None,
        }
    }

    /// Enable event tracing for this rank.
    fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Arm the fault-injection layer with a shared plan.
    fn enable_fault(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(FaultState {
            plan,
            send_seq: vec![0; self.size],
            observed_dead: vec![None; self.size],
        });
    }

    /// The active fault plan, if this run is fault-injected.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &*f.plan)
    }

    fn handle_poison(&self, msg: &Message) -> ! {
        panic!(
            "rank {}: peer rank {} failed, aborting SPMD section",
            self.rank, msg.src
        );
    }

    fn deadline(&self) -> Duration {
        Duration::from_secs_f64(self.machine.recv_deadline)
    }

    fn deadline_panic(&self, src: usize, tag: Tag) -> ! {
        std::panic::panic_any(ClusterError::DeadlineExceeded {
            rank: self.rank,
            src,
            tag,
            waited_ms: (self.machine.recv_deadline * 1e3) as u64,
        });
    }

    /// Take the oldest buffered message matching the envelope, if any.
    fn take_pending(&mut self, src: usize, tag: Tag) -> Option<Message> {
        let queue = self.pending.get_mut(&(src, tag))?;
        let msg = queue.pop_front();
        if queue.is_empty() {
            self.pending.remove(&(src, tag));
        }
        msg
    }

    /// Advance the clock to `t` (no-op if already past), booking the
    /// difference as blocked-waiting on `src`.
    fn advance_wait_to(&mut self, t: f64, src: usize) {
        if t > self.clock {
            self.stats.wait_time += t - self.clock;
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent::Wait {
                    start: self.clock,
                    end: t,
                    src,
                });
            }
            self.clock = t;
        }
    }

    /// Record a consumed poison marker. Returns true when the source
    /// has a *scheduled* crash (death absorbed, caller continues);
    /// false means an unscheduled failure (caller must cascade).
    fn note_poison(&mut self, msg: &Message) -> bool {
        let Some(fs) = &mut self.fault else {
            return false;
        };
        if fs.plan.crash_step(msg.src).is_none() {
            return false;
        }
        // Keep the earliest death clock; a rank dies once.
        if fs.observed_dead[msg.src].is_none() {
            fs.observed_dead[msg.src] = Some(msg.sent_at);
        }
        true
    }

    /// Inject this rank's scheduled crash if the plan says to die at
    /// `step`. Drivers call this at every step boundary; it is the
    /// *only* place crashes fire, which is what keeps recovery free of
    /// in-flight user messages.
    pub fn fault_step(&self, step: usize) {
        if let Some(fs) = &self.fault {
            if fs.plan.crash_step(self.rank) == Some(step) {
                std::panic::panic_any(InjectedCrash {
                    rank: self.rank,
                    step,
                });
            }
        }
    }

    /// Fault-aware receive: like [`Communicator::recv`] but a poison
    /// marker from a rank with a scheduled crash resolves to
    /// `Err(dead_rank)` (after advancing the clock to the death time)
    /// instead of panicking. Poison from unscheduled failures still
    /// cascades, and the deadline still applies.
    pub fn recv_ft(&mut self, src: usize, tag: Tag) -> Result<Vec<f64>, usize> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        if let Some(fs) = &self.fault {
            if let Some(t) = fs.observed_dead[src] {
                self.advance_wait_to(t, src);
                return Err(src);
            }
        }
        let msg = if let Some(m) = self.take_pending(src, tag) {
            m
        } else {
            loop {
                match self.inbox.recv_timeout(self.deadline()) {
                    Ok(m) if m.poison => {
                        if !self.note_poison(&m) {
                            self.handle_poison(&m);
                        }
                        if m.src == src {
                            self.advance_wait_to(m.sent_at, src);
                            return Err(src);
                        }
                    }
                    Ok(m) if m.src == src && m.tag == tag => break m,
                    Ok(m) => {
                        self.pending.entry((m.src, m.tag)).or_default().push_back(m);
                    }
                    Err(_) => self.deadline_panic(src, tag),
                }
            }
        };
        self.advance_wait_to(msg.sent_at, src);
        Ok(msg.data.into_vec())
    }

    /// Reliable delivery under an active chaos plan: each transmission
    /// attempt pays the full modelled message cost, a dropped attempt
    /// backs off `rto·2^attempt` and retransmits, and a delivered
    /// attempt waits one modelled ack (an empty return message). All
    /// costs are virtual time; the decision stream is the plan's, so
    /// the whole exchange replays deterministically.
    fn reliable_send(&mut self, dest: usize, tag: Tag, data: &[f64]) {
        let fs = self.fault.as_mut().expect("reliable_send needs a plan");
        let plan = Arc::clone(&fs.plan);
        let seq = fs.send_seq[dest];
        fs.send_seq[dest] += 1;
        let bytes = Message::wire_bytes(data.len());
        let cost = self.machine.message_time_between(self.rank, dest, bytes);
        let ack_cost = self
            .machine
            .message_time_between(dest, self.rank, Message::wire_bytes(0));
        let mut attempt = 0u32;
        loop {
            let start = self.clock;
            self.clock += cost;
            self.stats.send_time += cost;
            self.stats.msgs_sent += 1;
            self.stats.bytes_sent += bytes as u64;
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent::Send {
                    start,
                    end: self.clock,
                    dest,
                    bytes,
                });
            }
            if attempt > 0 {
                self.stats.retransmits += 1;
            }
            if self.machine.is_far(self.rank, dest) {
                self.stats.far_msgs += 1;
                self.stats.far_bytes += bytes as u64;
            }
            if !plan.drops(self.rank, dest, seq, attempt) {
                // Delivered: pay for the ack round-trip, then inject.
                self.clock += ack_cost;
                self.stats.wait_time += ack_cost;
                self.stats.ack_msgs += 1;
                let msg = Message {
                    src: self.rank,
                    tag,
                    data: data.into(),
                    sent_at: self.clock + plan.delay(self.rank, dest, seq),
                    poison: false,
                };
                self.finish_channel_send(dest, msg);
                return;
            }
            // Dropped on the wire: count it, back off, retransmit.
            self.stats.dropped_msgs += 1;
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent::Drop {
                    at: self.clock,
                    dest,
                });
            }
            let backoff = plan.rto * (1u64 << attempt.min(32)) as f64;
            self.clock += backoff;
            self.stats.backoff_time += backoff;
            attempt += 1;
            if attempt > plan.max_retries {
                panic!(
                    "rank {}: delivery to rank {dest} (tag {tag}) failed after {} retries",
                    self.rank, plan.max_retries
                );
            }
        }
    }

    /// Charge `seconds` of checkpoint-write time to this rank's clock
    /// (used by [`crate::checkpoint`]).
    pub(crate) fn charge_checkpoint(&mut self, seconds: f64) {
        self.clock += seconds;
        self.stats.ckpt_time += seconds;
    }

    /// Push `msg` into `dest`'s inbox, accounting for a gone inbox.
    /// A send to a rank with a *scheduled* crash is never counted as
    /// dropped — whether its thread has really exited yet is a host
    /// scheduling accident, and the fault layer accounts for its death
    /// separately; counting it would make `dropped_msgs` racy.
    fn finish_channel_send(&mut self, dest: usize, msg: Message) {
        if self.senders[dest].send(msg).is_err() {
            let scheduled = self
                .fault
                .as_ref()
                .is_some_and(|f| f.plan.crash_step(dest).is_some());
            if !scheduled {
                self.stats.dropped_msgs += 1;
                if let Some(tr) = &mut self.trace {
                    tr.push(TraceEvent::Drop {
                        at: self.clock,
                        dest,
                    });
                }
            }
        }
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn link_stall(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        if seconds > 0.0 {
            self.clock += seconds;
            self.stats.wait_time += seconds;
            self.stats.link_stall_time += seconds;
        }
    }

    fn send(&mut self, dest: usize, tag: Tag, data: &[f64]) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        if self.fault.as_ref().is_some_and(|f| f.plan.has_chaos()) {
            return self.reliable_send(dest, tag, data);
        }
        let bytes = Message::wire_bytes(data.len());
        let cost = self.machine.message_time_between(self.rank, dest, bytes);
        let start = self.clock;
        self.clock += cost;
        self.stats.send_time += cost;
        if let Some(tr) = &mut self.trace {
            tr.push(TraceEvent::Send {
                start,
                end: self.clock,
                dest,
                bytes,
            });
        }
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        if self.machine.is_far(self.rank, dest) {
            self.stats.far_msgs += 1;
            self.stats.far_bytes += bytes as u64;
        }
        let msg = Message {
            src: self.rank,
            tag,
            data: data.into(),
            sent_at: self.clock,
            poison: false,
        };
        // Unbounded channel: never blocks; a send to a finished rank's
        // gone inbox is counted as dropped (and traced) rather than
        // vanishing silently.
        self.finish_channel_send(dest, msg);
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Vec<f64> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let msg = if let Some(m) = self.take_pending(src, tag) {
            m
        } else {
            loop {
                match self.inbox.recv_timeout(self.deadline()) {
                    Ok(m) if m.poison => {
                        // A scheduled death is merely recorded (the
                        // recovery protocol acts on it at the next
                        // boundary, at a deterministic virtual time);
                        // an unscheduled one cascades as before.
                        if !self.note_poison(&m) {
                            self.handle_poison(&m);
                        }
                    }
                    Ok(m) if m.src == src && m.tag == tag => break m,
                    Ok(m) => {
                        self.pending.entry((m.src, m.tag)).or_default().push_back(m);
                    }
                    Err(_) => self.deadline_panic(src, tag),
                }
            }
        };
        // Clock: arrival cannot precede the modelled delivery time.
        self.advance_wait_to(msg.sent_at, src);
        msg.data.into_vec()
    }

    fn compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        let start = self.clock;
        self.clock += seconds;
        self.stats.compute_time += seconds;
        if let Some(tr) = &mut self.trace {
            // Coalesce back-to-back compute so traces stay compact.
            if let Some(TraceEvent::Compute { end, .. }) = tr.last_mut() {
                if (*end - start).abs() < 1e-15 {
                    *end = self.clock;
                    return;
                }
            }
            tr.push(TraceEvent::Compute {
                start,
                end: self.clock,
            });
        }
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn stats(&self) -> CommStats {
        self.stats
    }
}

/// What became of a crashed rank, recovered from its communicator
/// after the injected panic was caught.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashInfo {
    /// The rank that crashed.
    pub rank: usize,
    /// The step boundary at which it crashed.
    pub step: usize,
    /// Its virtual clock at death.
    pub time: f64,
    /// Its counters at death (absorbed into run totals via
    /// [`crate::TimeModel::absorb_crashed`]).
    pub stats: CommStats,
}

/// Outcome of a fault-tolerant SPMD run that had at least one survivor:
/// the survivors' results plus the vital statistics of every scheduled
/// crash that fired.
#[derive(Debug, Clone)]
pub struct FtRunOutcome<T> {
    /// Results of the ranks that ran to completion, ordered by rank.
    pub survivors: Vec<SpmdResult<T>>,
    /// Scheduled crashes that fired, ordered by rank.
    pub crashed: Vec<CrashInfo>,
}

/// How one rank's execution ended, for the classification pass.
enum Failure {
    /// A genuine panic (assertion, bug, cascade poison).
    Panic { msg: String, cascade: bool },
    /// A `recv` deadline fired — the typed error to surface.
    Deadline(ClusterError),
    /// A crash scheduled by the fault plan (boxed: `CommStats` makes it
    /// the dominant variant size).
    Injected(Box<CrashInfo>),
}

/// Run `f` on `p` ranks under the given machine model and collect every
/// rank's result, virtual completion time and counters (ordered by rank).
///
/// If any rank panics, the panic is caught, poison is propagated so peers
/// blocked in `recv` unwind too, and the whole run returns
/// [`ClusterError::RanksFailed`] listing the *originally* failing ranks
/// (cascade victims are reported only if no originator is identifiable).
/// A rank that exceeds its [`Machine::recv_deadline`] surfaces as
/// [`ClusterError::DeadlineExceeded`].
pub fn run_spmd<T, F>(p: usize, machine: Machine, f: F) -> Result<Vec<SpmdResult<T>>, ClusterError>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    run_spmd_inner(p, machine, f, false, None).map(|(r, _, _)| r)
}

/// Results plus per-rank event traces from a traced run.
pub type TracedRun<T> = (Vec<SpmdResult<T>>, Vec<Vec<TraceEvent>>);

/// [`run_spmd`] with per-rank virtual-time event traces
/// (see [`crate::trace`]) for timeline analysis.
pub fn run_spmd_traced<T, F>(p: usize, machine: Machine, f: F) -> Result<TracedRun<T>, ClusterError>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    run_spmd_inner(p, machine, f, true, None)
        .map(|(r, t, _)| (r, t.expect("tracing was requested")))
}

/// [`run_spmd`] under a [`FaultPlan`]: scheduled crashes are caught and
/// reported in the outcome instead of failing the run, message
/// drops/delays are answered by the reliable-delivery layer, and
/// survivors (≥ 1 required) carry the result. With every rank crashed
/// the run degrades to a clean [`ClusterError::RanksFailed`] listing
/// the injected crashes.
pub fn run_spmd_ft<T, F>(
    p: usize,
    machine: Machine,
    plan: FaultPlan,
    f: F,
) -> Result<FtRunOutcome<T>, ClusterError>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    if let Some(r) = plan.max_crash_rank() {
        if r >= p {
            return Err(ClusterError::InvalidRank { rank: r, size: p });
        }
    }
    run_spmd_inner(p, machine, f, false, Some(Arc::new(plan)))
        .map(|(survivors, _, crashed)| FtRunOutcome { survivors, crashed })
}

#[allow(clippy::type_complexity)]
fn run_spmd_inner<T, F>(
    p: usize,
    machine: Machine,
    f: F,
    traced: bool,
    plan: Option<Arc<FaultPlan>>,
) -> Result<(Vec<SpmdResult<T>>, Option<Vec<Vec<TraceEvent>>>, Vec<CrashInfo>), ClusterError>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    if p == 0 {
        return Err(ClusterError::ZeroRanks);
    }
    // Build the mesh of channels: one inbox per rank, everyone holds a
    // sender clone for every inbox.
    let mut senders = Vec::with_capacity(p);
    let mut inboxes = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Message>();
        senders.push(tx);
        inboxes.push(rx);
    }

    let f = &f;
    let plan = &plan;
    let results: Vec<Result<(SpmdResult<T>, Vec<TraceEvent>), (usize, Failure)>> =
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let senders = senders.clone();
                handles.push(scope.spawn(move || {
                    let mut comm = ThreadComm::new(rank, p, machine, senders, inbox);
                    if traced {
                        comm.enable_trace();
                    }
                    if let Some(pl) = plan {
                        comm.enable_fault(Arc::clone(pl));
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                    match outcome {
                        Ok(value) => Ok((
                            SpmdResult {
                                rank,
                                value,
                                time: comm.clock,
                                stats: comm.stats,
                            },
                            comm.trace.take().unwrap_or_default(),
                        )),
                        Err(payload) => {
                            // Poison everyone else so blocked recvs unwind
                            // (or, under a plan, observe the death).
                            for (d, tx) in comm.senders.iter().enumerate() {
                                if d != rank {
                                    let _ = tx.send(Message {
                                        src: rank,
                                        tag: POISON_TAG,
                                        data: Box::new([]),
                                        sent_at: comm.clock,
                                        poison: true,
                                    });
                                }
                            }
                            let failure = if let Some(c) =
                                payload.downcast_ref::<InjectedCrash>()
                            {
                                Failure::Injected(Box::new(CrashInfo {
                                    rank,
                                    step: c.step,
                                    time: comm.clock,
                                    stats: comm.stats,
                                }))
                            } else if let Some(e) = payload.downcast_ref::<ClusterError>() {
                                Failure::Deadline(e.clone())
                            } else {
                                let msg = panic_message(payload.as_ref());
                                let cascade = msg.contains("aborting SPMD section");
                                Failure::Panic { msg, cascade }
                            };
                            Err((rank, failure))
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread itself must not die"))
                .collect()
        });

    let mut ok = Vec::with_capacity(p);
    let mut originators = Vec::new();
    let mut cascades = Vec::new();
    let mut crashes = Vec::new();
    let mut deadline = None;
    for r in results {
        match r {
            Ok(v) => ok.push(v),
            Err((rank, Failure::Panic { msg, cascade: true })) => cascades.push((rank, msg)),
            Err((rank, Failure::Panic { msg, cascade: false })) => originators.push((rank, msg)),
            Err((_, Failure::Deadline(e))) => {
                if deadline.is_none() {
                    deadline = Some(e);
                }
            }
            Err((_, Failure::Injected(ci))) => crashes.push(*ci),
        }
    }
    if !originators.is_empty() {
        return Err(ClusterError::RanksFailed(originators));
    }
    if let Some(e) = deadline {
        return Err(e);
    }
    if !cascades.is_empty() {
        return Err(ClusterError::RanksFailed(cascades));
    }
    if ok.is_empty() && !crashes.is_empty() {
        // Every rank died on schedule: degrade to a clean failure.
        return Err(ClusterError::RanksFailed(
            crashes
                .iter()
                .map(|c| (c.rank, format!("injected crash at step {}", c.step)))
                .collect(),
        ));
    }
    ok.sort_by_key(|(r, _)| r.rank);
    crashes.sort_by_key(|c| c.rank);
    let (res, traces): (Vec<_>, Vec<_>) = ok.into_iter().unzip();
    Ok((res, if traced { Some(traces) } else { None }, crashes))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs_sequentially() {
        let r = run_spmd(1, Machine::ideal(), |comm| {
            comm.compute(1.5);
            comm.rank() * 10 + comm.size()
        })
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, 1);
        assert_eq!(r[0].time, 1.5);
    }

    #[test]
    fn zero_ranks_rejected() {
        assert_eq!(
            run_spmd(0, Machine::ideal(), |_| ()).unwrap_err(),
            ClusterError::ZeroRanks
        );
    }

    #[test]
    fn ping_pong_transfers_payload() {
        let r = run_spmd(2, Machine::cluster2002(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let v = comm.recv(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, &doubled);
                doubled
            }
        })
        .unwrap();
        assert_eq!(r[0].value, vec![2.0, 4.0, 6.0]);
        assert_eq!(r[1].value, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn virtual_clock_is_deterministic_across_runs() {
        let times = |_: ()| {
            run_spmd(4, Machine::cluster2002(), |comm| {
                // Ring shift: each rank sends to the next, receives from prev.
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.compute(1e-3 * (comm.rank() + 1) as f64);
                comm.send(next, 1, &[comm.rank() as f64]);
                let v = comm.recv(prev, 1);
                v[0]
            })
            .unwrap()
            .into_iter()
            .map(|r| r.time)
            .collect::<Vec<f64>>()
        };
        let a = times(());
        let b = times(());
        assert_eq!(a, b, "virtual times must not depend on scheduling");
    }

    #[test]
    fn clock_respects_message_delivery_time() {
        let r = run_spmd(2, Machine::cluster2002(), |comm| {
            if comm.rank() == 0 {
                comm.compute(1.0); // sender is busy 1s before sending
                comm.send(1, 1, &[0.0]);
            } else {
                // Receiver idles; its clock must jump to ≥ 1s + msg cost.
                let _ = comm.recv(0, 1);
            }
            comm.now()
        })
        .unwrap();
        let msg_cost = Machine::cluster2002().message_time(Message::wire_bytes(1));
        assert!(
            (r[1].value - (1.0 + msg_cost)).abs() < 1e-12,
            "{}",
            r[1].value
        );
        assert!(r[1].stats.wait_time > 0.9);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let r = run_spmd(2, Machine::ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, &[10.0]);
                comm.send(1, 20, &[20.0]);
                0.0
            } else {
                // Receive in the opposite order.
                let b = comm.recv(0, 20);
                let a = comm.recv(0, 10);
                a[0] + b[0]
            }
        })
        .unwrap();
        assert_eq!(r[1].value, 30.0);
    }

    #[test]
    fn same_envelope_preserves_fifo() {
        let r = run_spmd(2, Machine::ideal(), |comm| {
            if comm.rank() == 0 {
                for k in 0..5 {
                    comm.send(1, 3, &[k as f64]);
                }
                vec![]
            } else {
                (0..5).map(|_| comm.recv(0, 3)[0]).collect::<Vec<f64>>()
            }
        })
        .unwrap();
        assert_eq!(r[1].value, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rank_panic_reports_originator() {
        let err = run_spmd(3, Machine::ideal(), |comm| {
            if comm.rank() == 1 {
                panic!("injected failure");
            }
            // Other ranks block on rank 1 and must be unwound by poison.
            let _ = comm.recv(1, 99);
        })
        .unwrap_err();
        match err {
            ClusterError::RanksFailed(rs) => {
                assert_eq!(rs.len(), 1, "{rs:?}");
                assert_eq!(rs[0].0, 1);
                assert!(rs[0].1.contains("injected"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let r = run_spmd(2, Machine::cluster2002(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0.0; 10]);
            } else {
                let _ = comm.recv(0, 1);
            }
        })
        .unwrap();
        assert_eq!(r[0].stats.msgs_sent, 1);
        assert_eq!(r[0].stats.bytes_sent, Message::wire_bytes(10) as u64);
        assert_eq!(r[1].stats.msgs_sent, 0);
    }

    #[test]
    fn many_ranks_oversubscribed() {
        // 32 ranks on however few cores: must still complete and agree.
        let r = run_spmd(32, Machine::ideal(), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, &[comm.rank() as f64]);
            comm.recv(prev, 1)[0] as usize
        })
        .unwrap();
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.value, (i + 32 - 1) % 32);
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn empty_plan_matches_plain_run_bitwise() {
        let body = |comm: &mut ThreadComm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.compute(1e-3);
            comm.send(next, 1, &[comm.rank() as f64]);
            comm.recv(prev, 1)[0]
        };
        let plain = run_spmd(4, Machine::cluster2002(), body).unwrap();
        let ft = run_spmd_ft(4, Machine::cluster2002(), FaultPlan::new(0), body).unwrap();
        assert!(ft.crashed.is_empty());
        for (a, b) in plain.iter().zip(&ft.survivors) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn drops_force_retransmits_and_still_deliver() {
        let plan = FaultPlan::new(11).with_drops(0.4);
        let run = |plan: FaultPlan| {
            run_spmd_ft(2, Machine::cluster2002(), plan, |comm| {
                if comm.rank() == 0 {
                    for k in 0..20 {
                        comm.send(1, 2, &[k as f64]);
                    }
                    0.0
                } else {
                    (0..20).map(|_| comm.recv(0, 2)[0]).sum::<f64>()
                }
            })
            .unwrap()
        };
        let out = run(plan.clone());
        assert_eq!(out.survivors[1].value, 190.0);
        let s0 = out.survivors[0].stats;
        assert!(s0.retransmits > 0, "0.4 drop rate over 20 msgs: {s0:?}");
        assert_eq!(s0.dropped_msgs, s0.retransmits, "each drop retransmits");
        assert_eq!(s0.ack_msgs, 20);
        assert!(s0.backoff_time > 0.0);
        // Exact replay: same plan, same counters, same virtual times.
        let again = run(plan);
        assert_eq!(again.survivors[0].stats, s0);
        assert_eq!(
            again.survivors[1].time.to_bits(),
            out.survivors[1].time.to_bits()
        );
    }

    #[test]
    fn delays_stretch_receiver_wait_deterministically() {
        let plan = FaultPlan::new(5).with_delays(1.0, 1e-2);
        let out = run_spmd_ft(2, Machine::cluster2002(), plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]);
                0.0
            } else {
                comm.recv(0, 1)[0]
            }
        })
        .unwrap();
        // With delay probability 1 the message arrives late; the
        // receiver's wait absorbs the injected delay.
        assert!(out.survivors[1].stats.wait_time > 1e-3);
    }

    #[test]
    fn exhausted_retries_fail_the_sender_cleanly() {
        let plan = FaultPlan::new(3).with_drops(0.999).with_max_retries(2);
        let err = run_spmd_ft(2, Machine::cluster2002(), plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0.0]);
            } else {
                let _ = comm.recv(0, 1);
            }
        })
        .unwrap_err();
        match err {
            ClusterError::RanksFailed(rs) => {
                assert!(rs.iter().any(|(r, m)| *r == 0 && m.contains("failed after")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scheduled_crash_is_reported_not_fatal() {
        let plan = FaultPlan::new(0).with_crash(1, 3);
        let out = run_spmd_ft(2, Machine::cluster2002(), plan, |comm| {
            for step in 0..6 {
                comm.fault_step(step);
                comm.compute(1e-4);
                // Survivor must not depend on the dead rank here; this
                // body only exercises the crash/report path.
            }
            comm.rank() as f64
        })
        .unwrap();
        assert_eq!(out.survivors.len(), 1);
        assert_eq!(out.survivors[0].rank, 0);
        assert_eq!(out.crashed.len(), 1);
        assert_eq!((out.crashed[0].rank, out.crashed[0].step), (1, 3));
        // Died after 3 completed steps of modelled work.
        assert!((out.crashed[0].time - 3e-4).abs() < 1e-12);
    }

    #[test]
    fn all_ranks_crashed_degrades_cleanly() {
        let plan = FaultPlan::new(0).with_crash(0, 1).with_crash(1, 1);
        let err = run_spmd_ft(2, Machine::ideal(), plan, |comm| {
            for step in 0..4 {
                comm.fault_step(step);
                comm.compute(1e-5);
            }
        })
        .unwrap_err();
        match err {
            ClusterError::RanksFailed(rs) => {
                assert_eq!(rs.len(), 2);
                assert!(rs.iter().all(|(_, m)| m.contains("injected crash")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn crash_rank_out_of_range_is_rejected() {
        let plan = FaultPlan::new(0).with_crash(5, 1);
        let err = run_spmd_ft(2, Machine::ideal(), plan, |_| ()).unwrap_err();
        assert_eq!(err, ClusterError::InvalidRank { rank: 5, size: 2 });
    }

    #[test]
    fn recv_ft_resolves_scheduled_death() {
        let plan = FaultPlan::new(0).with_crash(0, 0);
        let out = run_spmd_ft(2, Machine::cluster2002(), plan, |comm| {
            comm.compute(1e-3 * comm.rank() as f64);
            comm.fault_step(0);
            match comm.recv_ft(0, 9) {
                Ok(_) => panic!("rank 0 never sends"),
                Err(dead) => dead as f64,
            }
        })
        .unwrap();
        assert_eq!(out.survivors.len(), 1);
        assert_eq!(out.survivors[0].value, 0.0);
        // The survivor's clock advanced at least to the death time.
        assert!(out.survivors[0].time >= out.crashed[0].time);
    }

    #[test]
    fn deadline_surfaces_as_typed_error() {
        let machine = Machine::ideal().with_recv_deadline(0.2);
        let err = run_spmd(1, machine, |comm| {
            // Nobody will ever send this.
            let _ = comm.recv(0, 42);
        })
        .unwrap_err();
        match err {
            ClusterError::DeadlineExceeded {
                rank,
                src,
                tag,
                waited_ms,
            } => {
                assert_eq!((rank, src, tag), (0, 0, 42));
                assert_eq!(waited_ms, 200);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropped_send_to_finished_rank_is_counted() {
        let r = run_spmd(2, Machine::ideal(), |comm| {
            if comm.rank() == 0 {
                // Rank 1 exits immediately; once its inbox is gone our
                // sends are counted as dropped. Spin until observed so
                // the test is scheduling-independent.
                let mut tries = 0;
                while comm.stats().dropped_msgs == 0 && tries < 1_000_000 {
                    comm.send(1, 1, &[0.0]);
                    tries += 1;
                    std::thread::yield_now();
                }
                comm.stats().dropped_msgs
            } else {
                0
            }
        })
        .unwrap();
        assert!(r[0].value > 0, "drop to gone inbox must be counted");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::collectives;
    use crate::trace::{render_gantt, summarize, TraceEvent};

    #[test]
    fn traced_run_records_all_event_kinds() {
        let (results, traces) = run_spmd_traced(2, Machine::cluster2002(), |comm| {
            comm.compute(1e-3);
            if comm.rank() == 0 {
                comm.send(1, 5, &[1.0, 2.0]);
            } else {
                let _ = comm.recv(0, 5);
            }
            comm.compute(5e-4);
        })
        .unwrap();
        assert_eq!(traces.len(), 2);
        // Rank 0: compute, send, compute.
        let kinds0: Vec<&str> = traces[0]
            .iter()
            .map(|e| match e {
                TraceEvent::Compute { .. } => "c",
                TraceEvent::Send { .. } => "s",
                TraceEvent::Wait { .. } => "w",
                TraceEvent::Drop { .. } => "x",
            })
            .collect();
        assert_eq!(kinds0, vec!["c", "s", "c"]);
        // Rank 1 waited: its first compute ends at 1e-3 but the message
        // arrives later (sender computed 1e-3 then paid the transfer).
        assert!(traces[1]
            .iter()
            .any(|e| matches!(e, TraceEvent::Wait { .. })));
        // Summaries reconcile with the stats counters.
        for (r, tr) in results.iter().zip(&traces) {
            let s = summarize(r.rank, tr);
            assert!((s.compute - r.stats.compute_time).abs() < 1e-12);
            assert!((s.send - r.stats.send_time).abs() < 1e-12);
            assert!((s.wait - r.stats.wait_time).abs() < 1e-12);
            assert!((s.finish - r.time).abs() < 1e-12);
        }
    }

    #[test]
    fn back_to_back_compute_coalesces() {
        let (_, traces) = run_spmd_traced(1, Machine::ideal(), |comm| {
            for _ in 0..10 {
                comm.compute(1e-4);
            }
        })
        .unwrap();
        assert_eq!(traces[0].len(), 1, "{:?}", traces[0]);
        assert!((traces[0][0].duration() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn untraced_run_unchanged_and_trace_render_smoke() {
        // Virtual times must be identical with tracing on or off.
        let body = |comm: &mut ThreadComm| {
            comm.compute(1e-3 * (comm.rank() + 1) as f64);
            collectives::allreduce_sum(comm, &[comm.rank() as f64])[0]
        };
        let plain = run_spmd(3, Machine::cluster2002(), body).unwrap();
        let (traced, traces) = run_spmd_traced(3, Machine::cluster2002(), body).unwrap();
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.value, b.value);
        }
        let gantt = render_gantt(&traces, 60);
        assert!(gantt.lines().count() == 4, "{gantt}");
    }
}
