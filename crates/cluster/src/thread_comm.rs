//! Thread-backed SPMD runtime.
//!
//! [`run_spmd`] launches one OS thread per rank. Ranks exchange
//! [`Message`]s over unbounded crossbeam channels (one inbox per rank,
//! one sender handle per source so per-source FIFO order holds — the MPI
//! non-overtaking guarantee). Oversubscription is fine: on the single-core
//! build host 64 ranks simply time-slice, and because all *reported*
//! times come from the deterministic virtual clock, results are identical
//! to a run on a 64-core machine.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::comm::Communicator;
use crate::error::ClusterError;
use crate::machine::Machine;
use crate::message::{Message, Tag, POISON_TAG};
use crate::stats::{CommStats, SpmdResult};
use crate::trace::TraceEvent;

/// How long a `recv` may block before declaring the run wedged. Generous:
/// only reached on a genuine deadlock (mismatched send/recv program) or
/// if a peer died without poisoning us.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Per-rank communicator handle (see [`Communicator`] for semantics).
pub struct ThreadComm {
    rank: usize,
    size: usize,
    machine: Machine,
    clock: f64,
    stats: CommStats,
    /// senders[d] feeds rank d's inbox.
    senders: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// Out-of-order arrivals, keyed by envelope, FIFO within a key.
    pending: HashMap<(usize, Tag), VecDeque<Message>>,
    /// Virtual-time event log, when tracing is enabled.
    trace: Option<Vec<TraceEvent>>,
}

impl ThreadComm {
    fn new(
        rank: usize,
        size: usize,
        machine: Machine,
        senders: Vec<Sender<Message>>,
        inbox: Receiver<Message>,
    ) -> Self {
        ThreadComm {
            rank,
            size,
            machine,
            clock: 0.0,
            stats: CommStats::default(),
            senders,
            inbox,
            pending: HashMap::new(),
            trace: None,
        }
    }

    /// Enable event tracing for this rank.
    fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn handle_poison(&self, msg: &Message) -> ! {
        panic!(
            "rank {}: peer rank {} failed, aborting SPMD section",
            self.rank, msg.src
        );
    }

    /// Take the oldest buffered message matching the envelope, if any.
    fn take_pending(&mut self, src: usize, tag: Tag) -> Option<Message> {
        let queue = self.pending.get_mut(&(src, tag))?;
        let msg = queue.pop_front();
        if queue.is_empty() {
            self.pending.remove(&(src, tag));
        }
        msg
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn send(&mut self, dest: usize, tag: Tag, data: &[f64]) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        let bytes = Message::wire_bytes(data.len());
        let cost = self.machine.message_time(bytes);
        let start = self.clock;
        self.clock += cost;
        self.stats.send_time += cost;
        if let Some(tr) = &mut self.trace {
            tr.push(TraceEvent::Send {
                start,
                end: self.clock,
                dest,
                bytes,
            });
        }
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let msg = Message {
            src: self.rank,
            tag,
            data: data.into(),
            sent_at: self.clock,
            poison: false,
        };
        // Unbounded channel: never blocks; a send to a finished rank is
        // silently dropped on the floor when its inbox is gone.
        let _ = self.senders[dest].send(msg);
    }

    fn recv(&mut self, src: usize, tag: Tag) -> Vec<f64> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let msg = if let Some(m) = self.take_pending(src, tag) {
            m
        } else {
            loop {
                match self.inbox.recv_timeout(RECV_TIMEOUT) {
                    Ok(m) if m.poison => self.handle_poison(&m),
                    Ok(m) if m.src == src && m.tag == tag => break m,
                    Ok(m) => {
                        self.pending.entry((m.src, m.tag)).or_default().push_back(m);
                    }
                    Err(_) => panic!(
                        "rank {}: recv(src={src}, tag={tag}) timed out — deadlock?",
                        self.rank
                    ),
                }
            }
        };
        // Clock: arrival cannot precede the modelled delivery time.
        if msg.sent_at > self.clock {
            self.stats.wait_time += msg.sent_at - self.clock;
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent::Wait {
                    start: self.clock,
                    end: msg.sent_at,
                    src,
                });
            }
            self.clock = msg.sent_at;
        }
        msg.data.into_vec()
    }

    fn compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        let start = self.clock;
        self.clock += seconds;
        self.stats.compute_time += seconds;
        if let Some(tr) = &mut self.trace {
            // Coalesce back-to-back compute so traces stay compact.
            if let Some(TraceEvent::Compute { end, .. }) = tr.last_mut() {
                if (*end - start).abs() < 1e-15 {
                    *end = self.clock;
                    return;
                }
            }
            tr.push(TraceEvent::Compute {
                start,
                end: self.clock,
            });
        }
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn stats(&self) -> CommStats {
        self.stats
    }
}

/// Run `f` on `p` ranks under the given machine model and collect every
/// rank's result, virtual completion time and counters (ordered by rank).
///
/// If any rank panics, the panic is caught, poison is propagated so peers
/// blocked in `recv` unwind too, and the whole run returns
/// [`ClusterError::RanksFailed`] listing the *originally* failing ranks
/// (cascade victims are reported only if no originator is identifiable).
pub fn run_spmd<T, F>(p: usize, machine: Machine, f: F) -> Result<Vec<SpmdResult<T>>, ClusterError>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    run_spmd_inner(p, machine, f, false).map(|(r, _)| r)
}

/// Results plus per-rank event traces from a traced run.
pub type TracedRun<T> = (Vec<SpmdResult<T>>, Vec<Vec<TraceEvent>>);

/// [`run_spmd`] with per-rank virtual-time event traces
/// (see [`crate::trace`]) for timeline analysis.
pub fn run_spmd_traced<T, F>(p: usize, machine: Machine, f: F) -> Result<TracedRun<T>, ClusterError>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    run_spmd_inner(p, machine, f, true).map(|(r, t)| (r, t.expect("tracing was requested")))
}

#[allow(clippy::type_complexity)]
fn run_spmd_inner<T, F>(
    p: usize,
    machine: Machine,
    f: F,
    traced: bool,
) -> Result<(Vec<SpmdResult<T>>, Option<Vec<Vec<TraceEvent>>>), ClusterError>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    if p == 0 {
        return Err(ClusterError::ZeroRanks);
    }
    // Build the mesh of channels: one inbox per rank, everyone holds a
    // sender clone for every inbox.
    let mut senders = Vec::with_capacity(p);
    let mut inboxes = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Message>();
        senders.push(tx);
        inboxes.push(rx);
    }

    let f = &f;
    let results: Vec<Result<(SpmdResult<T>, Vec<TraceEvent>), (usize, String, bool)>> =
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let senders = senders.clone();
                handles.push(scope.spawn(move || {
                    let mut comm = ThreadComm::new(rank, p, machine, senders, inbox);
                    if traced {
                        comm.enable_trace();
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                    match outcome {
                        Ok(value) => Ok((
                            SpmdResult {
                                rank,
                                value,
                                time: comm.clock,
                                stats: comm.stats,
                            },
                            comm.trace.take().unwrap_or_default(),
                        )),
                        Err(payload) => {
                            let msg = panic_message(payload.as_ref());
                            let cascade = msg.contains("aborting SPMD section");
                            // Poison everyone else so blocked recvs unwind.
                            for (d, tx) in comm.senders.iter().enumerate() {
                                if d != rank {
                                    let _ = tx.send(Message {
                                        src: rank,
                                        tag: POISON_TAG,
                                        data: Box::new([]),
                                        sent_at: comm.clock,
                                        poison: true,
                                    });
                                }
                            }
                            Err((rank, msg, cascade))
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread itself must not die"))
                .collect()
        });

    let mut ok = Vec::with_capacity(p);
    let mut originators = Vec::new();
    let mut cascades = Vec::new();
    for r in results {
        match r {
            Ok(v) => ok.push(v),
            Err((rank, msg, cascade)) => {
                if cascade {
                    cascades.push((rank, msg));
                } else {
                    originators.push((rank, msg));
                }
            }
        }
    }
    if originators.is_empty() && cascades.is_empty() {
        ok.sort_by_key(|(r, _)| r.rank);
        let (res, traces): (Vec<_>, Vec<_>) = ok.into_iter().unzip();
        Ok((res, if traced { Some(traces) } else { None }))
    } else if !originators.is_empty() {
        Err(ClusterError::RanksFailed(originators))
    } else {
        Err(ClusterError::RanksFailed(cascades))
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs_sequentially() {
        let r = run_spmd(1, Machine::ideal(), |comm| {
            comm.compute(1.5);
            comm.rank() * 10 + comm.size()
        })
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, 1);
        assert_eq!(r[0].time, 1.5);
    }

    #[test]
    fn zero_ranks_rejected() {
        assert_eq!(
            run_spmd(0, Machine::ideal(), |_| ()).unwrap_err(),
            ClusterError::ZeroRanks
        );
    }

    #[test]
    fn ping_pong_transfers_payload() {
        let r = run_spmd(2, Machine::cluster2002(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let v = comm.recv(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, &doubled);
                doubled
            }
        })
        .unwrap();
        assert_eq!(r[0].value, vec![2.0, 4.0, 6.0]);
        assert_eq!(r[1].value, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn virtual_clock_is_deterministic_across_runs() {
        let times = |_: ()| {
            run_spmd(4, Machine::cluster2002(), |comm| {
                // Ring shift: each rank sends to the next, receives from prev.
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.compute(1e-3 * (comm.rank() + 1) as f64);
                comm.send(next, 1, &[comm.rank() as f64]);
                let v = comm.recv(prev, 1);
                v[0]
            })
            .unwrap()
            .into_iter()
            .map(|r| r.time)
            .collect::<Vec<f64>>()
        };
        let a = times(());
        let b = times(());
        assert_eq!(a, b, "virtual times must not depend on scheduling");
    }

    #[test]
    fn clock_respects_message_delivery_time() {
        let r = run_spmd(2, Machine::cluster2002(), |comm| {
            if comm.rank() == 0 {
                comm.compute(1.0); // sender is busy 1s before sending
                comm.send(1, 1, &[0.0]);
            } else {
                // Receiver idles; its clock must jump to ≥ 1s + msg cost.
                let _ = comm.recv(0, 1);
            }
            comm.now()
        })
        .unwrap();
        let msg_cost = Machine::cluster2002().message_time(Message::wire_bytes(1));
        assert!(
            (r[1].value - (1.0 + msg_cost)).abs() < 1e-12,
            "{}",
            r[1].value
        );
        assert!(r[1].stats.wait_time > 0.9);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let r = run_spmd(2, Machine::ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, &[10.0]);
                comm.send(1, 20, &[20.0]);
                0.0
            } else {
                // Receive in the opposite order.
                let b = comm.recv(0, 20);
                let a = comm.recv(0, 10);
                a[0] + b[0]
            }
        })
        .unwrap();
        assert_eq!(r[1].value, 30.0);
    }

    #[test]
    fn same_envelope_preserves_fifo() {
        let r = run_spmd(2, Machine::ideal(), |comm| {
            if comm.rank() == 0 {
                for k in 0..5 {
                    comm.send(1, 3, &[k as f64]);
                }
                vec![]
            } else {
                (0..5).map(|_| comm.recv(0, 3)[0]).collect::<Vec<f64>>()
            }
        })
        .unwrap();
        assert_eq!(r[1].value, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rank_panic_reports_originator() {
        let err = run_spmd(3, Machine::ideal(), |comm| {
            if comm.rank() == 1 {
                panic!("injected failure");
            }
            // Other ranks block on rank 1 and must be unwound by poison.
            let _ = comm.recv(1, 99);
        })
        .unwrap_err();
        match err {
            ClusterError::RanksFailed(rs) => {
                assert_eq!(rs.len(), 1, "{rs:?}");
                assert_eq!(rs[0].0, 1);
                assert!(rs[0].1.contains("injected"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let r = run_spmd(2, Machine::cluster2002(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0.0; 10]);
            } else {
                let _ = comm.recv(0, 1);
            }
        })
        .unwrap();
        assert_eq!(r[0].stats.msgs_sent, 1);
        assert_eq!(r[0].stats.bytes_sent, Message::wire_bytes(10) as u64);
        assert_eq!(r[1].stats.msgs_sent, 0);
    }

    #[test]
    fn many_ranks_oversubscribed() {
        // 32 ranks on however few cores: must still complete and agree.
        let r = run_spmd(32, Machine::ideal(), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, &[comm.rank() as f64]);
            comm.recv(prev, 1)[0] as usize
        })
        .unwrap();
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.value, (i + 32 - 1) % 32);
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::collectives;
    use crate::trace::{render_gantt, summarize, TraceEvent};

    #[test]
    fn traced_run_records_all_event_kinds() {
        let (results, traces) = run_spmd_traced(2, Machine::cluster2002(), |comm| {
            comm.compute(1e-3);
            if comm.rank() == 0 {
                comm.send(1, 5, &[1.0, 2.0]);
            } else {
                let _ = comm.recv(0, 5);
            }
            comm.compute(5e-4);
        })
        .unwrap();
        assert_eq!(traces.len(), 2);
        // Rank 0: compute, send, compute.
        let kinds0: Vec<&str> = traces[0]
            .iter()
            .map(|e| match e {
                TraceEvent::Compute { .. } => "c",
                TraceEvent::Send { .. } => "s",
                TraceEvent::Wait { .. } => "w",
            })
            .collect();
        assert_eq!(kinds0, vec!["c", "s", "c"]);
        // Rank 1 waited: its first compute ends at 1e-3 but the message
        // arrives later (sender computed 1e-3 then paid the transfer).
        assert!(traces[1]
            .iter()
            .any(|e| matches!(e, TraceEvent::Wait { .. })));
        // Summaries reconcile with the stats counters.
        for (r, tr) in results.iter().zip(&traces) {
            let s = summarize(r.rank, tr);
            assert!((s.compute - r.stats.compute_time).abs() < 1e-12);
            assert!((s.send - r.stats.send_time).abs() < 1e-12);
            assert!((s.wait - r.stats.wait_time).abs() < 1e-12);
            assert!((s.finish - r.time).abs() < 1e-12);
        }
    }

    #[test]
    fn back_to_back_compute_coalesces() {
        let (_, traces) = run_spmd_traced(1, Machine::ideal(), |comm| {
            for _ in 0..10 {
                comm.compute(1e-4);
            }
        })
        .unwrap();
        assert_eq!(traces[0].len(), 1, "{:?}", traces[0]);
        assert!((traces[0][0].duration() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn untraced_run_unchanged_and_trace_render_smoke() {
        // Virtual times must be identical with tracing on or off.
        let body = |comm: &mut ThreadComm| {
            comm.compute(1e-3 * (comm.rank() + 1) as f64);
            collectives::allreduce_sum(comm, &[comm.rank() as f64])[0]
        };
        let plain = run_spmd(3, Machine::cluster2002(), body).unwrap();
        let (traced, traces) = run_spmd_traced(3, Machine::cluster2002(), body).unwrap();
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.value, b.value);
        }
        let gantt = render_gantt(&traces, 60);
        assert!(gantt.lines().count() == 4, "{gantt}");
    }
}
