//! Errors surfaced by the SPMD runtime.

use std::fmt;

/// Failure of an SPMD run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// One or more ranks panicked; the payload lists `(rank, message)`.
    RanksFailed(Vec<(usize, String)>),
    /// `run_spmd` was asked for zero ranks.
    ZeroRanks,
    /// A rank index was out of range for the communicator size.
    InvalidRank { rank: usize, size: usize },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::RanksFailed(rs) => {
                write!(f, "{} rank(s) failed:", rs.len())?;
                for (r, m) in rs {
                    write!(f, " [rank {r}: {m}]")?;
                }
                Ok(())
            }
            ClusterError::ZeroRanks => write!(f, "an SPMD run needs at least one rank"),
            ClusterError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for size {size}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_failed_ranks() {
        let e = ClusterError::RanksFailed(vec![(2, "boom".into())]);
        let s = e.to_string();
        assert!(s.contains("rank 2"));
        assert!(s.contains("boom"));
    }
}
