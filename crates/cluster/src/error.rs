//! Errors surfaced by the SPMD runtime.

use std::fmt;

/// Failure of an SPMD run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// One or more ranks panicked; the payload lists `(rank, message)`.
    RanksFailed(Vec<(usize, String)>),
    /// `run_spmd` was asked for zero ranks.
    ZeroRanks,
    /// A rank index was out of range for the communicator size.
    InvalidRank { rank: usize, size: usize },
    /// A blocking `recv` exceeded the [`crate::Machine::recv_deadline`]
    /// without a matching message arriving — the run is wedged
    /// (mismatched send/recv program, or a peer vanished without
    /// poisoning us). Milliseconds so the variant stays `Eq`.
    DeadlineExceeded {
        /// Rank whose `recv` timed out.
        rank: usize,
        /// Rank it was waiting on.
        src: usize,
        /// Tag it was waiting for.
        tag: crate::message::Tag,
        /// Host wall-clock milliseconds waited before giving up.
        waited_ms: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::RanksFailed(rs) => {
                write!(f, "{} rank(s) failed:", rs.len())?;
                for (r, m) in rs {
                    write!(f, " [rank {r}: {m}]")?;
                }
                Ok(())
            }
            ClusterError::ZeroRanks => write!(f, "an SPMD run needs at least one rank"),
            ClusterError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for size {size}")
            }
            ClusterError::DeadlineExceeded {
                rank,
                src,
                tag,
                waited_ms,
            } => {
                write!(
                    f,
                    "rank {rank} exceeded its recv deadline waiting {waited_ms} ms \
                     for src {src} tag {tag}"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_failed_ranks() {
        let e = ClusterError::RanksFailed(vec![(2, "boom".into())]);
        let s = e.to_string();
        assert!(s.contains("rank 2"));
        assert!(s.contains("boom"));
    }

    #[test]
    fn deadline_display_names_the_blocked_pair() {
        let e = ClusterError::DeadlineExceeded {
            rank: 1,
            src: 3,
            tag: 7,
            waited_ms: 250,
        };
        let s = e.to_string();
        assert!(s.contains("rank 1"));
        assert!(s.contains("src 3"));
        assert!(s.contains("250 ms"));
    }
}
