//! Logical topologies: rank↔coordinate maps and neighbour calculus.
//!
//! The 2002-era machines exposed their interconnect topology to the
//! programmer; algorithms were written against hypercubes, rings and
//! meshes. These helpers keep that structure explicit — the collectives
//! use the hypercube arithmetic internally, and the PDE/lattice
//! decompositions are ring/mesh neighbourhoods.

/// Interconnect topology of a virtual machine, as seen by the cost
/// model and the collective engine.
///
/// The model is deliberately binary — a message is either **near**
/// (same SMP node / direct link) or **far** (crosses the interconnect
/// fabric). Wormhole routing on the 2002-era networks made latency
/// nearly distance-insensitive, so hop counts beyond the first switch
/// crossing add little; what matters is *whether* a message leaves the
/// node and how many concurrent senders share its uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Fully uniform fabric: every pair of ranks is equally close.
    /// This is the legacy model — all presets that predate the
    /// collective engine use it, and on it every algorithm costs
    /// exactly what it did before the engine existed.
    Uniform,
    /// Binary hypercube: ranks differing in exactly one bit are wired
    /// directly (near); all other pairs route through intermediate
    /// nodes (far). Recursive doubling maps perfectly onto this — each
    /// butterfly partner `rank ^ mask` is a direct neighbour.
    Hypercube,
    /// Cluster of SMP nodes: `node_size` consecutive ranks share one
    /// node (near: shared memory) and each node has a single uplink
    /// into the fabric (far). Concurrent far senders on one node
    /// serialise on the uplink — the effect hierarchical collectives
    /// exist to avoid.
    SmpCluster {
        /// Ranks per node; must be a power of two.
        node_size: usize,
    },
    /// 2-D torus, row-major ranks: Manhattan-distance-1 pairs
    /// (with wraparound) are near, everything else is far.
    Torus2d {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
}

impl TopologyKind {
    /// Node index of `rank` — the unit that shares a single uplink.
    /// Uniform and hypercube machines place every rank on its own
    /// node (no uplink sharing); an SMP cluster groups `node_size`
    /// consecutive ranks; a torus has one rank per node.
    pub fn node_of(&self, rank: usize) -> usize {
        match *self {
            TopologyKind::SmpCluster { node_size } => rank / node_size,
            _ => rank,
        }
    }

    /// Whether a message from `from` to `to` crosses the fabric (far)
    /// rather than staying on a node or direct link (near).
    pub fn is_far(&self, from: usize, to: usize) -> bool {
        if from == to {
            return false;
        }
        match *self {
            TopologyKind::Uniform => false,
            TopologyKind::Hypercube => !(from ^ to).is_power_of_two(),
            TopologyKind::SmpCluster { node_size } => from / node_size != to / node_size,
            TopologyKind::Torus2d { rows, cols } => {
                let (ar, ac) = (from / cols, from % cols);
                let (br, bc) = (to / cols, to % cols);
                let dr = ar.abs_diff(br).min(rows - ar.abs_diff(br));
                let dc = ac.abs_diff(bc).min(cols - ac.abs_diff(bc));
                dr + dc > 1
            }
        }
    }
}

/// A ring of `p` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    /// Rank count.
    pub size: usize,
}

impl Ring {
    /// Successor rank.
    pub fn next(&self, rank: usize) -> usize {
        assert!(rank < self.size);
        (rank + 1) % self.size
    }

    /// Predecessor rank.
    pub fn prev(&self, rank: usize) -> usize {
        assert!(rank < self.size);
        (rank + self.size - 1) % self.size
    }
}

/// A d-dimensional binary hypercube (`2^d` ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    /// Dimension d.
    pub dim: u32,
}

impl Hypercube {
    /// Hypercube that fits exactly `p` ranks.
    ///
    /// # Panics
    /// Panics unless `p` is a power of two.
    pub fn for_size(p: usize) -> Self {
        assert!(p.is_power_of_two(), "hypercube needs a power-of-two size");
        Hypercube {
            dim: p.trailing_zeros(),
        }
    }

    /// Number of ranks `2^d`.
    pub fn size(&self) -> usize {
        1 << self.dim
    }

    /// Neighbour across dimension `k`.
    pub fn neighbor(&self, rank: usize, k: u32) -> usize {
        assert!(rank < self.size());
        assert!(k < self.dim);
        rank ^ (1 << k)
    }

    /// All `d` neighbours of a rank.
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        (0..self.dim).map(|k| self.neighbor(rank, k)).collect()
    }

    /// Hamming distance between two ranks (routing hops).
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.size() && b < self.size());
        ((a ^ b) as u64).count_ones()
    }
}

/// A 2-D mesh (no wraparound) of `rows × cols` ranks, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2d {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
}

impl Mesh2d {
    /// Total ranks.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// Rank → (row, col).
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.size());
        (rank / self.cols, rank % self.cols)
    }

    /// (row, col) → rank.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// The 2–4 mesh neighbours of a rank (N, S, W, E; no wraparound).
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        let (r, c) = self.coords(rank);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(self.rank_of(r - 1, c));
        }
        if r + 1 < self.rows {
            out.push(self.rank_of(r + 1, c));
        }
        if c > 0 {
            out.push(self.rank_of(r, c - 1));
        }
        if c + 1 < self.cols {
            out.push(self.rank_of(r, c + 1));
        }
        out
    }

    /// Manhattan routing distance.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps() {
        let r = Ring { size: 5 };
        assert_eq!(r.next(4), 0);
        assert_eq!(r.prev(0), 4);
        assert_eq!(r.next(r.prev(3)), 3);
    }

    #[test]
    fn hypercube_neighbors_differ_in_one_bit() {
        let h = Hypercube::for_size(16);
        assert_eq!(h.dim, 4);
        for rank in 0..16 {
            let ns = h.neighbors(rank);
            assert_eq!(ns.len(), 4);
            for n in ns {
                assert_eq!(h.distance(rank, n), 1);
            }
        }
    }

    #[test]
    fn hypercube_distance_symmetric_triangle() {
        let h = Hypercube::for_size(8);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(h.distance(a, b), h.distance(b, a));
                for c in 0..8 {
                    assert!(h.distance(a, c) <= h.distance(a, b) + h.distance(b, c));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_non_power() {
        let _ = Hypercube::for_size(6);
    }

    #[test]
    fn mesh_coords_roundtrip_and_neighbors() {
        let m = Mesh2d { rows: 3, cols: 4 };
        assert_eq!(m.size(), 12);
        for rank in 0..12 {
            let (r, c) = m.coords(rank);
            assert_eq!(m.rank_of(r, c), rank);
        }
        // Corner has 2 neighbours, edge 3, interior 4.
        assert_eq!(m.neighbors(0).len(), 2);
        assert_eq!(m.neighbors(1).len(), 3);
        assert_eq!(m.neighbors(5).len(), 4);
        // Interior neighbours are at distance 1.
        for n in m.neighbors(5) {
            assert_eq!(m.distance(5, n), 1);
        }
    }

    #[test]
    fn uniform_topology_is_never_far() {
        let t = TopologyKind::Uniform;
        for a in 0..16 {
            for b in 0..16 {
                assert!(!t.is_far(a, b));
            }
        }
    }

    #[test]
    fn hypercube_topology_far_iff_not_a_neighbor() {
        let t = TopologyKind::Hypercube;
        let h = Hypercube::for_size(16);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.is_far(a, b), h.distance(a, b) > 1, "{a}->{b}");
            }
        }
    }

    #[test]
    fn smp_cluster_topology_groups_consecutive_ranks() {
        let t = TopologyKind::SmpCluster { node_size: 4 };
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert!(!t.is_far(0, 3));
        assert!(t.is_far(3, 4));
        assert!(!t.is_far(5, 5));
    }

    #[test]
    fn torus_topology_wraps_and_is_near_only_for_neighbors() {
        let t = TopologyKind::Torus2d { rows: 4, cols: 4 };
        // (0,0) and (0,3) are wraparound neighbours.
        assert!(!t.is_far(0, 3));
        // (0,0) and (3,0) likewise.
        assert!(!t.is_far(0, 12));
        // (0,0) and (1,1) are two hops.
        assert!(t.is_far(0, 5));
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let m = Mesh2d { rows: 4, cols: 4 };
        assert_eq!(m.distance(m.rank_of(0, 0), m.rank_of(3, 3)), 6);
        assert_eq!(m.distance(5, 5), 0);
    }
}
