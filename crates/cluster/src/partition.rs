//! Work-decomposition helpers shared by the parallel engines.

/// Balanced contiguous block `[lo, hi)` of `0..n` owned by `rank` among
/// `p` ranks. The first `n % p` ranks get one extra element.
///
/// # Panics
/// Panics when `p == 0` or `rank >= p`.
pub fn block_range(n: usize, p: usize, rank: usize) -> (usize, usize) {
    assert!(p > 0, "need at least one rank");
    assert!(rank < p, "rank {rank} out of range for {p}");
    let base = n / p;
    let extra = n % p;
    let lo = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    (lo, lo + len)
}

/// The rank owning element `i` under [`block_range`] decomposition.
///
/// # Panics
/// Panics when `i >= n` or `p == 0`.
pub fn block_owner(n: usize, p: usize, i: usize) -> usize {
    assert!(p > 0);
    assert!(i < n, "index {i} out of range for {n}");
    let base = n / p;
    let extra = n % p;
    let cutoff = extra * (base + 1);
    if i < cutoff {
        i / (base + 1)
    } else {
        extra + (i - cutoff) / base.max(1)
    }
}

/// Indices of `0..n` owned by `rank` under block-cyclic decomposition
/// with the given `block` size (ablation A2 compares this against the
/// contiguous layout for lattice slabs).
pub fn cyclic_indices(n: usize, p: usize, rank: usize, block: usize) -> Vec<usize> {
    assert!(p > 0 && rank < p && block > 0);
    let mut idx = Vec::new();
    let mut start = rank * block;
    while start < n {
        let end = (start + block).min(n);
        idx.extend(start..end);
        start += p * block;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_exactly_once() {
        for n in [0usize, 1, 7, 100, 101] {
            for p in [1usize, 2, 3, 7, 16] {
                let mut covered = vec![0u32; n];
                let mut prev_hi = 0;
                for r in 0..p {
                    let (lo, hi) = block_range(n, p, r);
                    assert_eq!(lo, prev_hi, "blocks must be contiguous");
                    prev_hi = hi;
                    for c in &mut covered[lo..hi] {
                        *c += 1;
                    }
                }
                assert_eq!(prev_hi, n);
                assert!(covered.iter().all(|&c| c == 1));
            }
        }
    }

    #[test]
    fn blocks_balanced_within_one() {
        for n in [10usize, 13, 100] {
            for p in [3usize, 4, 7] {
                let sizes: Vec<usize> = (0..p)
                    .map(|r| {
                        let (lo, hi) = block_range(n, p, r);
                        hi - lo
                    })
                    .collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} p={p}: {sizes:?}");
            }
        }
    }

    #[test]
    fn owner_is_inverse_of_range() {
        for n in [1usize, 9, 64, 101] {
            for p in [1usize, 2, 5, 8] {
                for i in 0..n {
                    let r = block_owner(n, p, i);
                    let (lo, hi) = block_range(n, p, r);
                    assert!(
                        (lo..hi).contains(&i),
                        "n={n} p={p} i={i}: owner {r} range {lo}..{hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn cyclic_partitions_cover_exactly_once() {
        let (n, p, b) = (23usize, 3usize, 4usize);
        let mut covered = vec![0u32; n];
        for r in 0..p {
            for i in cyclic_indices(n, p, r, b) {
                covered[i] += 1;
            }
        }
        let _ = &covered;
        assert!(covered.iter().all(|&c| c == 1), "{covered:?}");
    }

    #[test]
    fn cyclic_block_one_interleaves() {
        let idx = cyclic_indices(7, 3, 1, 1);
        assert_eq!(idx, vec![1, 4]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn rank_out_of_range_panics() {
        let _ = block_range(10, 2, 2);
    }
}
