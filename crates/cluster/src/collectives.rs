//! Collective operations built from point-to-point messages.
//!
//! Each collective exists in the algorithmic variants the 2002-era MPI
//! implementations actually used, because the evaluation's ablation A1
//! compares them under the machine model:
//!
//! | collective | variants | modelled cost (p ranks, n doubles) |
//! |---|---|---|
//! | broadcast | binomial tree, linear | ⌈log₂p⌉(α+βn) vs (p−1)(α+βn) |
//! | reduce | binomial tree, linear | ⌈log₂p⌉(α+βn) vs (p−1)(α+βn) |
//! | allreduce | recursive doubling, ring, reduce+bcast | log₂p(α+βn) vs 2(p−1)(α+βn/p) |
//! | barrier | dissemination | ⌈log₂p⌉ α |
//! | gather/scatter | linear rooted | (p−1)(α+βn) |
//! | alltoall | pairwise rounds | (p−1)(α+βn) |
//!
//! The default aliases ([`broadcast`], [`reduce_sum`], [`allreduce_sum`])
//! pick the tree/doubling variants, which is what MPICH did at the time.
//!
//! All functions must be called by **every** rank of the communicator
//! (standard collective semantics); tags are drawn from the reserved
//! collective range so they never collide with user traffic, and FIFO
//! matching per `(src, tag)` keeps back-to-back collectives separate.
//!
//! # The canonical reduction order
//!
//! Floating-point addition is commutative but not associative, so the
//! *shape* of the association tree decides the bits of a reduction.
//! Every reduction variant here (and every hierarchical algorithm in
//! [`crate::engine`]) commits to one **canonical association**: the one
//! recursive doubling produces. For `p` ranks with `p2` the largest
//! power of two ≤ `p` and `rem = p − p2`:
//!
//! 1. remainder pre-fold — leaf `r` (for `r < rem`) becomes
//!    `x_r ⊕ x_{r+p2}`;
//! 2. a perfect balanced binary tree over the `p2` folded leaves,
//!    combining adjacent blocks of doubling width (`(l ⊕ r)` with the
//!    lower-rank block on the left).
//!
//! IEEE-754 `+`, `max` and `min` are commutative *bitwise*, so an
//! algorithm may evaluate `r ⊕ l` where the canonical tree says
//! `l ⊕ r` and still produce identical bits — which is exactly why the
//! butterfly (where the two partners apply operands in opposite
//! orders) and the hierarchical group-leader schedules all land on the
//! same result. [`canonical_fold`] is the executable definition.
//!
//! # Uplink contention
//!
//! On [`crate::TopologyKind::SmpCluster`] machines, several ranks of
//! one node injecting far messages in the same schedule stage share
//! one uplink. Each collective knows its own stage structure, so
//! before a far send it charges a deterministic serialisation stall of
//! `pos × far_message_time` virtual seconds, where `pos` is the
//! rank's position among its node's far senders of that stage (see
//! [`Communicator::link_stall`]). On `Uniform` machines no message is
//! far and nothing changes; flat collectives at large P on SMP
//! clusters pay heavily, which is what the topology-aware engine
//! avoids.

use crate::comm::Communicator;
use crate::machine::Machine;
use crate::message::{Message, Tag, COLL_TAG_BASE};
use crate::topology::TopologyKind;

const T_BCAST: Tag = COLL_TAG_BASE;
const T_REDUCE: Tag = COLL_TAG_BASE + 1;
const T_BARRIER: Tag = COLL_TAG_BASE + 2;
const T_GATHER: Tag = COLL_TAG_BASE + 3;
const T_SCATTER: Tag = COLL_TAG_BASE + 4;
const T_ALLTOALL: Tag = COLL_TAG_BASE + 5;
const T_RING: Tag = COLL_TAG_BASE + 6;
const T_FOLD: Tag = COLL_TAG_BASE + 7;
const T_SCAN: Tag = COLL_TAG_BASE + 8;
const T_RING_CANON: Tag = COLL_TAG_BASE + 9;

/// Charge the deterministic uplink-serialisation stall for a far send
/// of `payload_len` doubles to `dest` in a schedule stage whose far
/// senders are characterised by `sends_far` (must be evaluable by
/// every rank from shared knowledge — the stage structure).
///
/// Only ranks on multi-rank nodes ([`TopologyKind::SmpCluster`]) can
/// share an uplink; everywhere else this is free.
pub(crate) fn charge_uplink_stall<C, F>(comm: &mut C, payload_len: usize, dest: usize, sends_far: F)
where
    C: Communicator + ?Sized,
    F: Fn(&Machine, usize) -> bool,
{
    let m = *comm.machine();
    let rank = comm.rank();
    if !m.is_far(rank, dest) {
        return;
    }
    let node_start = match m.topology {
        TopologyKind::SmpCluster { node_size } => (rank / node_size) * node_size,
        _ => return,
    };
    let pos = (node_start..rank).filter(|&r| sends_far(&m, r)).count();
    if pos > 0 {
        let stall = pos as f64 * m.far_message_time(Message::wire_bytes(payload_len));
        comm.link_stall(stall);
    }
}

/// Fold `parts` (one buffer per rank, in rank order) with the canonical
/// association described in the module docs: remainder pre-fold, then a
/// balanced binary tree over the power-of-two core. This is the
/// executable definition of the order every reduction variant and
/// every hierarchical schedule reproduces; reworked linear reductions
/// call it directly, tests use it as the bitwise oracle.
///
/// # Panics
/// Panics if `parts` is empty or lengths differ.
pub fn canonical_fold(parts: &[Vec<f64>], op: ReduceOp) -> Vec<f64> {
    assert!(!parts.is_empty(), "canonical_fold needs at least one part");
    let p = parts.len();
    let p2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let rem = p - p2;
    let mut level: Vec<Vec<f64>> = parts[..p2].to_vec();
    for r in 0..rem {
        let extra = &parts[r + p2];
        op.apply(&mut level[r], extra);
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks_exact(2) {
            let mut acc = pair[0].clone();
            op.apply(&mut acc, &pair[1]);
            next.push(acc);
        }
        level = next;
    }
    level.pop().expect("non-empty")
}

/// Element-wise binary operations for reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    pub(crate) fn apply(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.min(*b);
                }
            }
        }
    }
}

/// Dissemination barrier: ⌈log₂ p⌉ rounds, each rank sends to
/// `rank + 2^k` and receives from `rank − 2^k` (mod p).
pub fn barrier<C: Communicator + ?Sized>(comm: &mut C) {
    let p = comm.size();
    let rank = comm.rank();
    let mut k = 1usize;
    let mut round: Tag = 0;
    while k < p {
        let dest = (rank + k) % p;
        let src = (rank + p - k) % p;
        comm.send(dest, T_BARRIER + round * 16, &[]);
        let _ = comm.recv(src, T_BARRIER + round * 16);
        k <<= 1;
        round += 1;
    }
}

/// Binomial-tree broadcast from `root`; on non-root ranks `data` is
/// overwritten with the root's buffer (lengths must match on all ranks).
pub fn broadcast_tree<C: Communicator + ?Sized>(comm: &mut C, root: usize, data: &mut [f64]) {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if p == 1 {
        return;
    }
    let vr = (rank + p - root) % p; // virtual rank: root ↦ 0
    let mut mask = 1usize;
    // Receive once (if not root), then forward to higher virtual ranks.
    while mask < p {
        if vr < mask {
            let vdest = vr + mask;
            if vdest < p {
                let dest = (vdest + root) % p;
                charge_uplink_stall(comm, data.len(), dest, |m, r| {
                    let v = (r + p - root) % p;
                    v < mask && v + mask < p && m.is_far(r, (v + mask + root) % p)
                });
                comm.send(dest, T_BCAST, data);
            }
        } else if vr < 2 * mask {
            let vsrc = vr - mask;
            let src = (vsrc + root) % p;
            let recvd = comm.recv(src, T_BCAST);
            data.copy_from_slice(&recvd);
        }
        mask <<= 1;
    }
}

/// Linear broadcast: root sends to every rank individually.
pub fn broadcast_linear<C: Communicator + ?Sized>(comm: &mut C, root: usize, data: &mut [f64]) {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        for d in 0..p {
            if d != root {
                comm.send(d, T_BCAST, data);
            }
        }
    } else {
        let recvd = comm.recv(root, T_BCAST);
        data.copy_from_slice(&recvd);
    }
}

/// Binomial-tree reduction to `root` in the canonical association:
/// remainder ranks fold into the power-of-two core first, a binomial
/// tree reduces the core onto rank 0 with adjacent-block combining,
/// and rank 0 forwards the result to `root` when they differ. Same
/// ⌈log₂p⌉ depth and `p−1` tree messages as the classic rotated
/// binomial (plus one forward hop for non-zero roots), but the result
/// is bitwise-identical to [`allreduce_doubling`] for every `p` and
/// `root`. Returns `Some(result)` on the root, `None` elsewhere.
pub fn reduce_tree<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
    op: ReduceOp,
) -> Option<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    assert!(root < p);
    let mut acc = data.to_vec();
    if p == 1 {
        return Some(acc);
    }
    let p2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let rem = p - p2;
    // Remainder pre-fold, exactly as in the doubling allreduce.
    if rank >= p2 {
        charge_uplink_stall(comm, n, rank - p2, |m, r| r >= p2 && m.is_far(r, r - p2));
        comm.send(rank - p2, T_FOLD, &acc);
        return (rank == root).then(|| comm.recv(0, T_REDUCE));
    }
    if rank < rem {
        let part = comm.recv(rank + p2, T_FOLD);
        op.apply(&mut acc, &part);
    }
    // Binomial reduce of the core onto rank 0: at round `mask` the odd
    // multiples of `mask` send to their even-block sibling, so rank 0
    // accumulates the canonical adjacent-block tree.
    let mut mask = 1usize;
    while mask < p2 {
        if rank & mask != 0 {
            let dest = rank - mask;
            charge_uplink_stall(comm, n, dest, |m, r| {
                r < p2 && r & mask != 0 && r & (mask - 1) == 0 && m.is_far(r, r - mask)
            });
            comm.send(dest, T_REDUCE, &acc);
            break;
        }
        if rank + mask < p2 {
            let part = comm.recv(rank + mask, T_REDUCE);
            op.apply(&mut acc, &part);
        }
        mask <<= 1;
    }
    // Rank 0 now holds the canonical result; ship it to a non-zero root.
    if root == 0 {
        return (rank == 0).then_some(acc);
    }
    if rank == 0 {
        comm.send(root, T_REDUCE, &acc);
        return None;
    }
    (rank == root).then(|| comm.recv(0, T_REDUCE))
}

/// Linear reduction to `root`: root receives from everyone in rank
/// order and folds the collected parts with [`canonical_fold`] — the
/// same (p−1) messages and incast cost as the classic running-sum
/// linear reduce, but bitwise-identical to [`allreduce_doubling`].
pub fn reduce_linear<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
    op: ReduceOp,
) -> Option<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        let mut parts: Vec<Vec<f64>> = Vec::with_capacity(p);
        for src in 0..p {
            if src == root {
                parts.push(data.to_vec());
            } else {
                parts.push(comm.recv(src, T_REDUCE));
            }
        }
        Some(canonical_fold(&parts, op))
    } else {
        charge_uplink_stall(comm, data.len(), root, |m, r| {
            r != root && m.is_far(r, root)
        });
        comm.send(root, T_REDUCE, data);
        None
    }
}

/// Recursive-doubling allreduce. Handles non-power-of-two sizes by
/// folding the excess ranks into the power-of-two core first (the
/// classic MPICH approach).
pub fn allreduce_doubling<C: Communicator + ?Sized>(
    comm: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    let mut acc = data.to_vec();
    if p == 1 {
        return acc;
    }
    // Largest power of two ≤ p.
    let p2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let rem = p - p2;
    // Phase 1: ranks ≥ p2 fold into rank − p2.
    let n = data.len();
    if rank >= p2 {
        charge_uplink_stall(comm, n, rank - p2, |m, r| r >= p2 && m.is_far(r, r - p2));
        comm.send(rank - p2, T_FOLD, &acc);
        // Wait for the final result in phase 3.
        acc = comm.recv(rank - p2, T_FOLD);
        return acc;
    }
    if rank < rem {
        let part = comm.recv(rank + p2, T_FOLD);
        op.apply(&mut acc, &part);
    }
    // Phase 2: recursive doubling among the p2 core ranks. Every core
    // rank sends each round, so on an SMP cluster the high-mask rounds
    // put a whole node's worth of senders on one uplink at once.
    let mut mask = 1usize;
    while mask < p2 {
        let partner = rank ^ mask;
        charge_uplink_stall(comm, n, partner, |m, r| r < p2 && m.is_far(r, r ^ mask));
        comm.send(partner, T_REDUCE + mask as Tag * 16, &acc);
        let part = comm.recv(partner, T_REDUCE + mask as Tag * 16);
        op.apply(&mut acc, &part);
        mask <<= 1;
    }
    // Phase 3: return results to the folded ranks.
    if rank < rem {
        charge_uplink_stall(comm, n, rank + p2, |m, r| r < rem && m.is_far(r, r + p2));
        comm.send(rank + p2, T_FOLD, &acc);
    }
    acc
}

/// Ring allreduce: reduce-scatter pass followed by allgather pass,
/// 2(p−1) steps each moving ~n/p elements — bandwidth-optimal for large
/// payloads, latency-heavy for small ones.
pub fn allreduce_ring<C: Communicator + ?Sized>(
    comm: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    let mut acc = data.to_vec();
    if p == 1 || n == 0 {
        return acc;
    }
    let chunk = |i: usize| crate::partition::block_range(n, p, i % p);
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    // Reduce-scatter: after p−1 steps, rank r owns the full reduction of
    // chunk (r+1) mod p. Ring steps are neighbour sends: on an SMP
    // cluster only the last rank of each node crosses the fabric, so
    // the uplink never has more than one sender per step.
    for step in 0..p - 1 {
        let (slo, shi) = chunk(rank + p - step);
        let (rlo, rhi) = chunk(rank + p - step - 1);
        charge_uplink_stall(comm, shi - slo, next, |m, r| m.is_far(r, (r + 1) % p));
        comm.send(next, T_RING + step as Tag, &acc[slo..shi]);
        let part = comm.recv(prev, T_RING + step as Tag);
        op.apply(&mut acc[rlo..rhi], &part);
    }
    // Allgather: circulate the finished chunks.
    for step in 0..p - 1 {
        let (slo, shi) = chunk(rank + 1 + p - step);
        let (rlo, rhi) = chunk(rank + p - step);
        charge_uplink_stall(comm, shi - slo, next, |m, r| m.is_far(r, (r + 1) % p));
        comm.send(next, T_RING + (p + step) as Tag, &acc[slo..shi]);
        let part = comm.recv(prev, T_RING + (p + step) as Tag);
        acc[rlo..rhi].copy_from_slice(&part);
    }
    acc
}

/// Ring allreduce in the canonical association: a neighbour-ring
/// allgather circulates every rank's *unreduced* contribution for
/// `p−1` steps, then each rank folds the collected parts with
/// [`canonical_fold`]. Bitwise-identical to [`allreduce_doubling`]
/// (unlike [`allreduce_ring`], whose streaming reduce-scatter is
/// forced into a sequential left-fold association), at the price of
/// moving whole buffers instead of `n/p` chunks — the natural
/// small-payload algorithm on ring/mesh topologies, where every hop is
/// a direct link.
pub fn allreduce_ring_canonical<C: Communicator + ?Sized>(
    comm: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        return data.to_vec();
    }
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let mut parts: Vec<Vec<f64>> = vec![Vec::new(); p];
    parts[rank] = data.to_vec();
    for step in 0..p - 1 {
        let send_idx = (rank + p - step) % p;
        let recv_idx = (rank + p - step - 1) % p;
        charge_uplink_stall(comm, parts[send_idx].len(), next, |m, r| {
            m.is_far(r, (r + 1) % p)
        });
        comm.send(next, T_RING_CANON + step as Tag, &parts[send_idx]);
        parts[recv_idx] = comm.recv(prev, T_RING_CANON + step as Tag);
    }
    canonical_fold(&parts, op)
}

/// Allreduce as tree-reduce to rank 0 followed by tree-broadcast —
/// the "linear" baseline of ablation A1 in its rooted form.
pub fn allreduce_reduce_bcast<C: Communicator + ?Sized>(
    comm: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Vec<f64> {
    let mut buf = match reduce_linear(comm, 0, data, op) {
        Some(v) => v,
        None => vec![0.0; data.len()],
    };
    broadcast_linear(comm, 0, &mut buf);
    buf
}

/// Gather equal-length buffers to `root` in rank order. Returns
/// `Some(concatenated)` on root, `None` elsewhere.
pub fn gather<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
) -> Option<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        let mut out = Vec::with_capacity(p * data.len());
        for src in 0..p {
            if src == root {
                out.extend_from_slice(data);
            } else {
                out.extend(comm.recv(src, T_GATHER));
            }
        }
        Some(out)
    } else {
        charge_uplink_stall(comm, data.len(), root, |m, r| {
            r != root && m.is_far(r, root)
        });
        comm.send(root, T_GATHER, data);
        None
    }
}

/// Gather variable-length buffers to `root` in rank order, returning the
/// per-rank vectors.
pub fn gather_varied<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
) -> Option<Vec<Vec<f64>>> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        let mut out = Vec::with_capacity(p);
        for src in 0..p {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(comm.recv(src, T_GATHER));
            }
        }
        Some(out)
    } else {
        charge_uplink_stall(comm, data.len(), root, |m, r| {
            r != root && m.is_far(r, root)
        });
        comm.send(root, T_GATHER, data);
        None
    }
}

/// Scatter: root supplies one buffer per rank; every rank receives its
/// own. Non-root ranks pass `None`.
///
/// # Panics
/// Panics if the root does not supply exactly `p` chunks, or a non-root
/// rank supplies chunks.
pub fn scatter<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    chunks: Option<&[Vec<f64>]>,
) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        let chunks = chunks.expect("root must supply chunks");
        assert_eq!(chunks.len(), p, "need one chunk per rank");
        for (d, c) in chunks.iter().enumerate() {
            if d != root {
                comm.send(d, T_SCATTER, c);
            }
        }
        chunks[root].clone()
    } else {
        assert!(chunks.is_none(), "non-root ranks must pass None");
        comm.recv(root, T_SCATTER)
    }
}

/// All-to-all personalised exchange: `chunks[d]` goes to rank `d`;
/// returns the received vector per source rank.
///
/// # Panics
/// Panics if `chunks.len() != p`.
pub fn alltoall<C: Communicator + ?Sized>(comm: &mut C, chunks: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    assert_eq!(chunks.len(), p, "need one chunk per rank");
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    out[rank] = chunks[rank].clone();
    // p−1 rounds: in round k exchange with (rank+k) / (rank−k).
    for k in 1..p {
        let dest = (rank + k) % p;
        let src = (rank + p - k) % p;
        comm.send(dest, T_ALLTOALL + k as Tag, &chunks[dest]);
        out[src] = comm.recv(src, T_ALLTOALL + k as Tag);
    }
    out
}

/// Default broadcast (binomial tree).
pub fn broadcast<C: Communicator + ?Sized>(comm: &mut C, root: usize, data: &mut [f64]) {
    broadcast_tree(comm, root, data);
}

/// Default sum-reduction to root (binomial tree).
pub fn reduce_sum<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
) -> Option<Vec<f64>> {
    reduce_tree(comm, root, data, ReduceOp::Sum)
}

/// Default sum-allreduce (recursive doubling).
pub fn allreduce_sum<C: Communicator + ?Sized>(comm: &mut C, data: &[f64]) -> Vec<f64> {
    allreduce_doubling(comm, data, ReduceOp::Sum)
}

/// Default max-allreduce (recursive doubling). Used to agree on the
/// global virtual makespan and for convergence tests.
pub fn allreduce_max<C: Communicator + ?Sized>(comm: &mut C, data: &[f64]) -> Vec<f64> {
    allreduce_doubling(comm, data, ReduceOp::Max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::thread_comm::run_spmd;

    /// Every interesting rank count: powers of two, odds, primes.
    const SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 13, 16];

    #[test]
    fn broadcast_tree_delivers_to_all_roots() {
        for &p in SIZES {
            for root in [0, p - 1, p / 2] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let mut data = if comm.rank() == root {
                        vec![3.25, -1.5, 42.0]
                    } else {
                        vec![0.0; 3]
                    };
                    broadcast_tree(comm, root, &mut data);
                    data
                })
                .unwrap();
                for res in &r {
                    assert_eq!(res.value, vec![3.25, -1.5, 42.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn broadcast_linear_matches_tree() {
        let r = run_spmd(5, Machine::ideal(), |comm| {
            let mut data = if comm.rank() == 2 {
                vec![7.0]
            } else {
                vec![0.0]
            };
            broadcast_linear(comm, 2, &mut data);
            data[0]
        })
        .unwrap();
        assert!(r.iter().all(|res| res.value == 7.0));
    }

    #[test]
    fn reduce_tree_sums_rank_values() {
        for &p in SIZES {
            let expected = (0..p).map(|r| r as f64).sum::<f64>();
            let r = run_spmd(p, Machine::ideal(), move |comm| {
                reduce_tree(comm, 0, &[comm.rank() as f64, 1.0], ReduceOp::Sum)
            })
            .unwrap();
            let root_val = r[0].value.clone().expect("root gets the result");
            assert_eq!(root_val, vec![expected, p as f64], "p={p}");
            for res in &r[1..] {
                assert!(res.value.is_none());
            }
        }
    }

    #[test]
    fn reduce_linear_matches_tree() {
        let r = run_spmd(6, Machine::ideal(), |comm| {
            reduce_linear(
                comm,
                3,
                &[(comm.rank() * comm.rank()) as f64],
                ReduceOp::Sum,
            )
        })
        .unwrap();
        assert_eq!(r[3].value.as_ref().unwrap()[0], 55.0);
    }

    #[test]
    fn allreduce_doubling_all_sizes() {
        for &p in SIZES {
            let expected = (0..p).map(|r| r as f64).sum::<f64>();
            let r = run_spmd(p, Machine::ideal(), |comm| {
                allreduce_sum(comm, &[comm.rank() as f64])[0]
            })
            .unwrap();
            for res in &r {
                assert_eq!(res.value, expected, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_ring_all_sizes_and_lengths() {
        for &p in SIZES {
            for n in [0usize, 1, 3, p, 4 * p + 1] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let data: Vec<f64> = (0..n).map(|i| (comm.rank() + i) as f64).collect();
                    allreduce_ring(comm, &data, ReduceOp::Sum)
                })
                .unwrap();
                let expect: Vec<f64> = (0..n)
                    .map(|i| (0..p).map(|r| (r + i) as f64).sum())
                    .collect();
                for res in &r {
                    assert_eq!(res.value, expect, "p={p} n={n}");
                }
            }
        }
    }

    #[test]
    fn allreduce_variants_agree() {
        let p = 7;
        let r = run_spmd(p, Machine::ideal(), |comm| {
            let data = vec![comm.rank() as f64; 11];
            let a = allreduce_doubling(comm, &data, ReduceOp::Sum);
            let b = allreduce_ring(comm, &data, ReduceOp::Sum);
            let c = allreduce_reduce_bcast(comm, &data, ReduceOp::Sum);
            (a, b, c)
        })
        .unwrap();
        for res in &r {
            let (a, b, c) = &res.value;
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    /// Deterministic "random-looking" payload: values whose sums depend
    /// on association order, so bitwise agreement is meaningful.
    fn awkward_payload(rank: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = ((rank * 2654435761 + i * 40503) % 8191) as f64;
                (x - 4095.0) * (1.0 + 1e-13 * rank as f64) / 3.0
            })
            .collect()
    }

    #[test]
    fn canonical_fold_matches_doubling_bitwise() {
        // The executable canonical order and the distributed butterfly
        // must agree bit for bit, including non-powers-of-two.
        for &p in &[1usize, 2, 3, 5, 6, 7, 12, 16] {
            let parts: Vec<Vec<f64>> = (0..p).map(|r| awkward_payload(r, 9)).collect();
            let oracle = canonical_fold(&parts, ReduceOp::Sum);
            let r = run_spmd(p, Machine::ideal(), |comm| {
                let data = awkward_payload(comm.rank(), 9);
                allreduce_doubling(comm, &data, ReduceOp::Sum)
            })
            .unwrap();
            for res in &r {
                for (a, b) in res.value.iter().zip(&oracle) {
                    assert_eq!(a.to_bits(), b.to_bits(), "p={p} rank={}", res.rank);
                }
            }
        }
    }

    #[test]
    fn allreduce_doubling_non_power_of_two_regression() {
        // Satellite regression: the remainder fold must be deterministic
        // and canonical at every awkward rank count. P = 257 exercises a
        // one-rank remainder above a 256 core.
        for &p in &[3usize, 5, 6, 7, 12, 257] {
            let parts: Vec<Vec<f64>> = (0..p).map(|r| awkward_payload(r, 3)).collect();
            let oracle = canonical_fold(&parts, ReduceOp::Sum);
            let r = run_spmd(p, Machine::ideal(), |comm| {
                let data = awkward_payload(comm.rank(), 3);
                allreduce_doubling(comm, &data, ReduceOp::Sum)
            })
            .unwrap();
            assert_eq!(r.len(), p);
            for res in &r {
                for (a, b) in res.value.iter().zip(&oracle) {
                    assert_eq!(a.to_bits(), b.to_bits(), "p={p} rank={}", res.rank);
                }
            }
        }
    }

    #[test]
    fn reduce_variants_bitwise_match_doubling() {
        // After the canonical rework, both rooted reductions agree with
        // the doubling allreduce bit for bit, for every root.
        for &p in &[2usize, 3, 5, 7, 8, 12] {
            for root in [0, p / 2, p - 1] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let data = awkward_payload(comm.rank(), 5);
                    let dbl = allreduce_doubling(comm, &data, ReduceOp::Sum);
                    let tree = reduce_tree(comm, root, &data, ReduceOp::Sum);
                    let lin = reduce_linear(comm, root, &data, ReduceOp::Sum);
                    (dbl, tree, lin)
                })
                .unwrap();
                for res in &r {
                    let (dbl, tree, lin) = &res.value;
                    assert_eq!(tree.is_some(), res.rank == root, "p={p} root={root}");
                    assert_eq!(lin.is_some(), res.rank == root);
                    if let (Some(t), Some(l)) = (tree, lin) {
                        for ((a, b), c) in dbl.iter().zip(t).zip(l) {
                            assert_eq!(a.to_bits(), b.to_bits(), "tree p={p} root={root}");
                            assert_eq!(a.to_bits(), c.to_bits(), "linear p={p} root={root}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ring_canonical_bitwise_matches_doubling() {
        for &p in &[1usize, 2, 3, 5, 8, 13] {
            let r = run_spmd(p, Machine::ideal(), |comm| {
                let data = awkward_payload(comm.rank(), 7);
                let a = allreduce_doubling(comm, &data, ReduceOp::Sum);
                let b = allreduce_ring_canonical(comm, &data, ReduceOp::Sum);
                (a, b)
            })
            .unwrap();
            for res in &r {
                let (a, b) = &res.value;
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "p={p} rank={}", res.rank);
                }
            }
        }
    }

    #[test]
    fn uniform_machines_never_stall_on_uplinks() {
        let r = run_spmd(8, Machine::cluster2002(), |comm| {
            let data = awkward_payload(comm.rank(), 64);
            let _ = allreduce_doubling(comm, &data, ReduceOp::Sum);
            let mut b = data.clone();
            broadcast_tree(comm, 0, &mut b);
            comm.stats()
        })
        .unwrap();
        for res in &r {
            assert_eq!(res.value.link_stall_time, 0.0);
            assert_eq!(res.value.far_msgs, 0);
        }
    }

    #[test]
    fn smp_cluster_flat_doubling_pays_uplink_stalls() {
        // On a 2-node SMP cluster, the high-mask butterfly round puts
        // all four ranks of a node on one uplink: ranks with a higher
        // intra-node position must stall longer.
        let r = run_spmd(8, Machine::smp_cluster2002(4), |comm| {
            let data = awkward_payload(comm.rank(), 16);
            let _ = allreduce_doubling(comm, &data, ReduceOp::Sum);
            comm.stats()
        })
        .unwrap();
        // Intra-node position r%4 = 0 never stalls; position 3 stalls 3
        // message-times.
        assert_eq!(r[0].value.link_stall_time, 0.0);
        assert!(r[3].value.link_stall_time > r[1].value.link_stall_time);
        assert!(r[1].value.link_stall_time > 0.0);
        // Only the cross-node butterfly round is far: one far message
        // per core rank.
        for res in &r {
            assert_eq!(res.value.far_msgs, 1, "rank {}", res.rank);
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let r = run_spmd(5, Machine::ideal(), |comm| {
            let v = comm.rank() as f64;
            let mx = allreduce_doubling(comm, &[v], ReduceOp::Max)[0];
            let mn = allreduce_doubling(comm, &[v], ReduceOp::Min)[0];
            (mx, mn)
        })
        .unwrap();
        for res in &r {
            assert_eq!(res.value, (4.0, 0.0));
        }
    }

    #[test]
    fn gather_preserves_rank_order() {
        let r = run_spmd(4, Machine::ideal(), |comm| {
            gather(comm, 0, &[comm.rank() as f64, -(comm.rank() as f64)])
        })
        .unwrap();
        assert_eq!(
            r[0].value.as_ref().unwrap(),
            &vec![0.0, 0.0, 1.0, -1.0, 2.0, -2.0, 3.0, -3.0]
        );
    }

    #[test]
    fn gather_varied_lengths() {
        let r = run_spmd(3, Machine::ideal(), |comm| {
            let data = vec![comm.rank() as f64; comm.rank()];
            gather_varied(comm, 1, &data)
        })
        .unwrap();
        let v = r[1].value.as_ref().unwrap();
        assert_eq!(v[0], Vec::<f64>::new());
        assert_eq!(v[1], vec![1.0]);
        assert_eq!(v[2], vec![2.0, 2.0]);
    }

    #[test]
    fn scatter_routes_chunks() {
        let r = run_spmd(3, Machine::ideal(), |comm| {
            let chunks = if comm.rank() == 0 {
                Some(vec![vec![0.0], vec![10.0], vec![20.0]])
            } else {
                None
            };
            scatter(comm, 0, chunks.as_deref())
        })
        .unwrap();
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.value, vec![10.0 * i as f64]);
        }
    }

    #[test]
    fn alltoall_transpose() {
        let p = 4;
        let r = run_spmd(p, Machine::ideal(), move |comm| {
            // chunks[d] = [rank*10 + d]
            let chunks: Vec<Vec<f64>> = (0..p)
                .map(|d| vec![(comm.rank() * 10 + d) as f64])
                .collect();
            alltoall(comm, &chunks)
        })
        .unwrap();
        for (rank, res) in r.iter().enumerate() {
            for (src, v) in res.value.iter().enumerate() {
                assert_eq!(v, &vec![(src * 10 + rank) as f64], "rank={rank} src={src}");
            }
        }
    }

    #[test]
    fn barrier_completes_for_awkward_sizes() {
        for &p in SIZES {
            run_spmd(p, Machine::ideal(), |comm| {
                barrier(comm);
                barrier(comm);
            })
            .unwrap();
        }
    }

    #[test]
    fn tree_broadcast_cheaper_than_linear_in_model() {
        // Modelled time: binomial log₂p rounds vs p−1 sends at the root.
        let p = 16;
        let payload = vec![0.0; 1000];
        let t_tree = {
            let payload = payload.clone();
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let mut d = payload.clone();
                broadcast_tree(comm, 0, &mut d);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        let t_linear = {
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let mut d = payload.clone();
                broadcast_linear(comm, 0, &mut d);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        assert!(
            t_tree < t_linear,
            "tree {t_tree} should beat linear {t_linear}"
        );
    }

    #[test]
    fn ring_beats_doubling_for_large_payloads() {
        // Bandwidth-dominated regime: ring moves n/p per step.
        let p = 8;
        let n = 100_000;
        let t_ring = {
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let data = vec![1.0; n];
                let _ = allreduce_ring(comm, &data, ReduceOp::Sum);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        let t_dbl = {
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let data = vec![1.0; n];
                let _ = allreduce_doubling(comm, &data, ReduceOp::Sum);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        assert!(
            t_ring < t_dbl,
            "ring {t_ring} should beat doubling {t_dbl} at n={n}"
        );
    }

    #[test]
    fn doubling_beats_ring_for_tiny_payloads() {
        // Latency-dominated regime.
        let p = 8;
        let t_ring = {
            let r = run_spmd(p, Machine::cluster2002(), |comm| {
                let _ = allreduce_ring(comm, &[1.0], ReduceOp::Sum);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        let t_dbl = {
            let r = run_spmd(p, Machine::cluster2002(), |comm| {
                let _ = allreduce_doubling(comm, &[1.0], ReduceOp::Sum);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        assert!(
            t_dbl < t_ring,
            "doubling {t_dbl} should beat ring {t_ring} at n=1"
        );
    }
}

/// Inclusive prefix-sum scan: rank r receives the element-wise sum of
/// the buffers of ranks `0..=r` (Hillis–Steele doubling: ⌈log₂p⌉ rounds).
pub fn scan_sum<C: Communicator + ?Sized>(comm: &mut C, data: &[f64]) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    let mut acc = data.to_vec();
    let mut dist = 1usize;
    let mut round: Tag = 0;
    while dist < p {
        // Send my running prefix to rank + dist; receive from rank − dist.
        if rank + dist < p {
            comm.send(rank + dist, T_SCAN + round * 16, &acc);
        }
        if rank >= dist {
            let part = comm.recv(rank - dist, T_SCAN + round * 16);
            ReduceOp::Sum.apply(&mut acc, &part);
        }
        dist <<= 1;
        round += 1;
    }
    acc
}

/// Allgather of equal-length buffers: every rank receives the
/// concatenation in rank order (tree-gather to rank 0 + broadcast).
pub fn allgather<C: Communicator + ?Sized>(comm: &mut C, data: &[f64]) -> Vec<f64> {
    let p = comm.size();
    let len = data.len();
    let mut buf = match gather(comm, 0, data) {
        Some(v) => v,
        None => vec![0.0; p * len],
    };
    broadcast(comm, 0, &mut buf);
    buf
}

#[cfg(test)]
mod scan_tests {
    use super::*;
    use crate::machine::Machine;
    use crate::thread_comm::run_spmd;

    #[test]
    fn scan_sum_matches_prefix_fold() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            let r = run_spmd(p, Machine::ideal(), |comm| {
                let mine = vec![comm.rank() as f64 + 1.0, 1.0];
                scan_sum(comm, &mine)
            })
            .unwrap();
            for (rank, res) in r.iter().enumerate() {
                let expect0: f64 = (0..=rank).map(|k| k as f64 + 1.0).sum();
                assert_eq!(
                    res.value,
                    vec![expect0, rank as f64 + 1.0],
                    "p={p} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        for p in [1usize, 3, 6] {
            let r = run_spmd(p, Machine::ideal(), |comm| {
                allgather(comm, &[comm.rank() as f64, -(comm.rank() as f64)])
            })
            .unwrap();
            let expect: Vec<f64> = (0..p).flat_map(|k| vec![k as f64, -(k as f64)]).collect();
            for res in &r {
                assert_eq!(res.value, expect, "p={p}");
            }
        }
    }
}
