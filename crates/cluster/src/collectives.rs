//! Collective operations built from point-to-point messages.
//!
//! Each collective exists in the algorithmic variants the 2002-era MPI
//! implementations actually used, because the evaluation's ablation A1
//! compares them under the machine model:
//!
//! | collective | variants | modelled cost (p ranks, n doubles) |
//! |---|---|---|
//! | broadcast | binomial tree, linear | ⌈log₂p⌉(α+βn) vs (p−1)(α+βn) |
//! | reduce | binomial tree, linear | ⌈log₂p⌉(α+βn) vs (p−1)(α+βn) |
//! | allreduce | recursive doubling, ring, reduce+bcast | log₂p(α+βn) vs 2(p−1)(α+βn/p) |
//! | barrier | dissemination | ⌈log₂p⌉ α |
//! | gather/scatter | linear rooted | (p−1)(α+βn) |
//! | alltoall | pairwise rounds | (p−1)(α+βn) |
//!
//! The default aliases ([`broadcast`], [`reduce_sum`], [`allreduce_sum`])
//! pick the tree/doubling variants, which is what MPICH did at the time.
//!
//! All functions must be called by **every** rank of the communicator
//! (standard collective semantics); tags are drawn from the reserved
//! collective range so they never collide with user traffic, and FIFO
//! matching per `(src, tag)` keeps back-to-back collectives separate.

use crate::comm::Communicator;
use crate::message::{Tag, COLL_TAG_BASE};

const T_BCAST: Tag = COLL_TAG_BASE;
const T_REDUCE: Tag = COLL_TAG_BASE + 1;
const T_BARRIER: Tag = COLL_TAG_BASE + 2;
const T_GATHER: Tag = COLL_TAG_BASE + 3;
const T_SCATTER: Tag = COLL_TAG_BASE + 4;
const T_ALLTOALL: Tag = COLL_TAG_BASE + 5;
const T_RING: Tag = COLL_TAG_BASE + 6;
const T_FOLD: Tag = COLL_TAG_BASE + 7;
const T_SCAN: Tag = COLL_TAG_BASE + 8;

/// Element-wise binary operations for reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    pub(crate) fn apply(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.min(*b);
                }
            }
        }
    }
}

/// Dissemination barrier: ⌈log₂ p⌉ rounds, each rank sends to
/// `rank + 2^k` and receives from `rank − 2^k` (mod p).
pub fn barrier<C: Communicator + ?Sized>(comm: &mut C) {
    let p = comm.size();
    let rank = comm.rank();
    let mut k = 1usize;
    let mut round: Tag = 0;
    while k < p {
        let dest = (rank + k) % p;
        let src = (rank + p - k) % p;
        comm.send(dest, T_BARRIER + round * 16, &[]);
        let _ = comm.recv(src, T_BARRIER + round * 16);
        k <<= 1;
        round += 1;
    }
}

/// Binomial-tree broadcast from `root`; on non-root ranks `data` is
/// overwritten with the root's buffer (lengths must match on all ranks).
pub fn broadcast_tree<C: Communicator + ?Sized>(comm: &mut C, root: usize, data: &mut [f64]) {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if p == 1 {
        return;
    }
    let vr = (rank + p - root) % p; // virtual rank: root ↦ 0
    let mut mask = 1usize;
    // Receive once (if not root), then forward to higher virtual ranks.
    while mask < p {
        if vr < mask {
            let vdest = vr + mask;
            if vdest < p {
                let dest = (vdest + root) % p;
                comm.send(dest, T_BCAST, data);
            }
        } else if vr < 2 * mask {
            let vsrc = vr - mask;
            let src = (vsrc + root) % p;
            let recvd = comm.recv(src, T_BCAST);
            data.copy_from_slice(&recvd);
        }
        mask <<= 1;
    }
}

/// Linear broadcast: root sends to every rank individually.
pub fn broadcast_linear<C: Communicator + ?Sized>(comm: &mut C, root: usize, data: &mut [f64]) {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        for d in 0..p {
            if d != root {
                comm.send(d, T_BCAST, data);
            }
        }
    } else {
        let recvd = comm.recv(root, T_BCAST);
        data.copy_from_slice(&recvd);
    }
}

/// Binomial-tree reduction to `root`. Returns `Some(result)` on the root,
/// `None` elsewhere.
pub fn reduce_tree<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
    op: ReduceOp,
) -> Option<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    let vr = (rank + p - root) % p;
    let mut acc = data.to_vec();
    let mut mask = 1usize;
    while mask < p {
        if vr & mask != 0 {
            let vdest = vr - mask;
            let dest = (vdest + root) % p;
            comm.send(dest, T_REDUCE, &acc);
            return None;
        }
        let vsrc = vr + mask;
        if vsrc < p {
            let src = (vsrc + root) % p;
            let part = comm.recv(src, T_REDUCE);
            op.apply(&mut acc, &part);
        }
        mask <<= 1;
    }
    Some(acc)
}

/// Linear reduction to `root` (root receives from everyone in rank order).
pub fn reduce_linear<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
    op: ReduceOp,
) -> Option<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        let mut acc = data.to_vec();
        for src in 0..p {
            if src != root {
                let part = comm.recv(src, T_REDUCE);
                op.apply(&mut acc, &part);
            }
        }
        Some(acc)
    } else {
        comm.send(root, T_REDUCE, data);
        None
    }
}

/// Recursive-doubling allreduce. Handles non-power-of-two sizes by
/// folding the excess ranks into the power-of-two core first (the
/// classic MPICH approach).
pub fn allreduce_doubling<C: Communicator + ?Sized>(
    comm: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    let mut acc = data.to_vec();
    if p == 1 {
        return acc;
    }
    // Largest power of two ≤ p.
    let p2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let rem = p - p2;
    // Phase 1: ranks ≥ p2 fold into rank − p2.
    if rank >= p2 {
        comm.send(rank - p2, T_FOLD, &acc);
        // Wait for the final result in phase 3.
        acc = comm.recv(rank - p2, T_FOLD);
        return acc;
    }
    if rank < rem {
        let part = comm.recv(rank + p2, T_FOLD);
        op.apply(&mut acc, &part);
    }
    // Phase 2: recursive doubling among the p2 core ranks.
    let mut mask = 1usize;
    while mask < p2 {
        let partner = rank ^ mask;
        comm.send(partner, T_REDUCE + mask as Tag * 16, &acc);
        let part = comm.recv(partner, T_REDUCE + mask as Tag * 16);
        op.apply(&mut acc, &part);
        mask <<= 1;
    }
    // Phase 3: return results to the folded ranks.
    if rank < rem {
        comm.send(rank + p2, T_FOLD, &acc);
    }
    acc
}

/// Ring allreduce: reduce-scatter pass followed by allgather pass,
/// 2(p−1) steps each moving ~n/p elements — bandwidth-optimal for large
/// payloads, latency-heavy for small ones.
pub fn allreduce_ring<C: Communicator + ?Sized>(
    comm: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    let mut acc = data.to_vec();
    if p == 1 || n == 0 {
        return acc;
    }
    let chunk = |i: usize| crate::partition::block_range(n, p, i % p);
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    // Reduce-scatter: after p−1 steps, rank r owns the full reduction of
    // chunk (r+1) mod p.
    for step in 0..p - 1 {
        let (slo, shi) = chunk(rank + p - step);
        let (rlo, rhi) = chunk(rank + p - step - 1);
        comm.send(next, T_RING + step as Tag, &acc[slo..shi]);
        let part = comm.recv(prev, T_RING + step as Tag);
        op.apply(&mut acc[rlo..rhi], &part);
    }
    // Allgather: circulate the finished chunks.
    for step in 0..p - 1 {
        let (slo, shi) = chunk(rank + 1 + p - step);
        let (rlo, rhi) = chunk(rank + p - step);
        comm.send(next, T_RING + (p + step) as Tag, &acc[slo..shi]);
        let part = comm.recv(prev, T_RING + (p + step) as Tag);
        acc[rlo..rhi].copy_from_slice(&part);
    }
    acc
}

/// Allreduce as tree-reduce to rank 0 followed by tree-broadcast —
/// the "linear" baseline of ablation A1 in its rooted form.
pub fn allreduce_reduce_bcast<C: Communicator + ?Sized>(
    comm: &mut C,
    data: &[f64],
    op: ReduceOp,
) -> Vec<f64> {
    let mut buf = match reduce_linear(comm, 0, data, op) {
        Some(v) => v,
        None => vec![0.0; data.len()],
    };
    broadcast_linear(comm, 0, &mut buf);
    buf
}

/// Gather equal-length buffers to `root` in rank order. Returns
/// `Some(concatenated)` on root, `None` elsewhere.
pub fn gather<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
) -> Option<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        let mut out = Vec::with_capacity(p * data.len());
        for src in 0..p {
            if src == root {
                out.extend_from_slice(data);
            } else {
                out.extend(comm.recv(src, T_GATHER));
            }
        }
        Some(out)
    } else {
        comm.send(root, T_GATHER, data);
        None
    }
}

/// Gather variable-length buffers to `root` in rank order, returning the
/// per-rank vectors.
pub fn gather_varied<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
) -> Option<Vec<Vec<f64>>> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        let mut out = Vec::with_capacity(p);
        for src in 0..p {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(comm.recv(src, T_GATHER));
            }
        }
        Some(out)
    } else {
        comm.send(root, T_GATHER, data);
        None
    }
}

/// Scatter: root supplies one buffer per rank; every rank receives its
/// own. Non-root ranks pass `None`.
///
/// # Panics
/// Panics if the root does not supply exactly `p` chunks, or a non-root
/// rank supplies chunks.
pub fn scatter<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    chunks: Option<&[Vec<f64>]>,
) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    assert!(root < p);
    if rank == root {
        let chunks = chunks.expect("root must supply chunks");
        assert_eq!(chunks.len(), p, "need one chunk per rank");
        for (d, c) in chunks.iter().enumerate() {
            if d != root {
                comm.send(d, T_SCATTER, c);
            }
        }
        chunks[root].clone()
    } else {
        assert!(chunks.is_none(), "non-root ranks must pass None");
        comm.recv(root, T_SCATTER)
    }
}

/// All-to-all personalised exchange: `chunks[d]` goes to rank `d`;
/// returns the received vector per source rank.
///
/// # Panics
/// Panics if `chunks.len() != p`.
pub fn alltoall<C: Communicator + ?Sized>(comm: &mut C, chunks: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    assert_eq!(chunks.len(), p, "need one chunk per rank");
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    out[rank] = chunks[rank].clone();
    // p−1 rounds: in round k exchange with (rank+k) / (rank−k).
    for k in 1..p {
        let dest = (rank + k) % p;
        let src = (rank + p - k) % p;
        comm.send(dest, T_ALLTOALL + k as Tag, &chunks[dest]);
        out[src] = comm.recv(src, T_ALLTOALL + k as Tag);
    }
    out
}

/// Default broadcast (binomial tree).
pub fn broadcast<C: Communicator + ?Sized>(comm: &mut C, root: usize, data: &mut [f64]) {
    broadcast_tree(comm, root, data);
}

/// Default sum-reduction to root (binomial tree).
pub fn reduce_sum<C: Communicator + ?Sized>(
    comm: &mut C,
    root: usize,
    data: &[f64],
) -> Option<Vec<f64>> {
    reduce_tree(comm, root, data, ReduceOp::Sum)
}

/// Default sum-allreduce (recursive doubling).
pub fn allreduce_sum<C: Communicator + ?Sized>(comm: &mut C, data: &[f64]) -> Vec<f64> {
    allreduce_doubling(comm, data, ReduceOp::Sum)
}

/// Default max-allreduce (recursive doubling). Used to agree on the
/// global virtual makespan and for convergence tests.
pub fn allreduce_max<C: Communicator + ?Sized>(comm: &mut C, data: &[f64]) -> Vec<f64> {
    allreduce_doubling(comm, data, ReduceOp::Max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::thread_comm::run_spmd;

    /// Every interesting rank count: powers of two, odds, primes.
    const SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 13, 16];

    #[test]
    fn broadcast_tree_delivers_to_all_roots() {
        for &p in SIZES {
            for root in [0, p - 1, p / 2] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let mut data = if comm.rank() == root {
                        vec![3.25, -1.5, 42.0]
                    } else {
                        vec![0.0; 3]
                    };
                    broadcast_tree(comm, root, &mut data);
                    data
                })
                .unwrap();
                for res in &r {
                    assert_eq!(res.value, vec![3.25, -1.5, 42.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn broadcast_linear_matches_tree() {
        let r = run_spmd(5, Machine::ideal(), |comm| {
            let mut data = if comm.rank() == 2 {
                vec![7.0]
            } else {
                vec![0.0]
            };
            broadcast_linear(comm, 2, &mut data);
            data[0]
        })
        .unwrap();
        assert!(r.iter().all(|res| res.value == 7.0));
    }

    #[test]
    fn reduce_tree_sums_rank_values() {
        for &p in SIZES {
            let expected = (0..p).map(|r| r as f64).sum::<f64>();
            let r = run_spmd(p, Machine::ideal(), move |comm| {
                reduce_tree(comm, 0, &[comm.rank() as f64, 1.0], ReduceOp::Sum)
            })
            .unwrap();
            let root_val = r[0].value.clone().expect("root gets the result");
            assert_eq!(root_val, vec![expected, p as f64], "p={p}");
            for res in &r[1..] {
                assert!(res.value.is_none());
            }
        }
    }

    #[test]
    fn reduce_linear_matches_tree() {
        let r = run_spmd(6, Machine::ideal(), |comm| {
            reduce_linear(
                comm,
                3,
                &[(comm.rank() * comm.rank()) as f64],
                ReduceOp::Sum,
            )
        })
        .unwrap();
        assert_eq!(r[3].value.as_ref().unwrap()[0], 55.0);
    }

    #[test]
    fn allreduce_doubling_all_sizes() {
        for &p in SIZES {
            let expected = (0..p).map(|r| r as f64).sum::<f64>();
            let r = run_spmd(p, Machine::ideal(), |comm| {
                allreduce_sum(comm, &[comm.rank() as f64])[0]
            })
            .unwrap();
            for res in &r {
                assert_eq!(res.value, expected, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_ring_all_sizes_and_lengths() {
        for &p in SIZES {
            for n in [0usize, 1, 3, p, 4 * p + 1] {
                let r = run_spmd(p, Machine::ideal(), move |comm| {
                    let data: Vec<f64> = (0..n).map(|i| (comm.rank() + i) as f64).collect();
                    allreduce_ring(comm, &data, ReduceOp::Sum)
                })
                .unwrap();
                let expect: Vec<f64> = (0..n)
                    .map(|i| (0..p).map(|r| (r + i) as f64).sum())
                    .collect();
                for res in &r {
                    assert_eq!(res.value, expect, "p={p} n={n}");
                }
            }
        }
    }

    #[test]
    fn allreduce_variants_agree() {
        let p = 7;
        let r = run_spmd(p, Machine::ideal(), |comm| {
            let data = vec![comm.rank() as f64; 11];
            let a = allreduce_doubling(comm, &data, ReduceOp::Sum);
            let b = allreduce_ring(comm, &data, ReduceOp::Sum);
            let c = allreduce_reduce_bcast(comm, &data, ReduceOp::Sum);
            (a, b, c)
        })
        .unwrap();
        for res in &r {
            let (a, b, c) = &res.value;
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let r = run_spmd(5, Machine::ideal(), |comm| {
            let v = comm.rank() as f64;
            let mx = allreduce_doubling(comm, &[v], ReduceOp::Max)[0];
            let mn = allreduce_doubling(comm, &[v], ReduceOp::Min)[0];
            (mx, mn)
        })
        .unwrap();
        for res in &r {
            assert_eq!(res.value, (4.0, 0.0));
        }
    }

    #[test]
    fn gather_preserves_rank_order() {
        let r = run_spmd(4, Machine::ideal(), |comm| {
            gather(comm, 0, &[comm.rank() as f64, -(comm.rank() as f64)])
        })
        .unwrap();
        assert_eq!(
            r[0].value.as_ref().unwrap(),
            &vec![0.0, 0.0, 1.0, -1.0, 2.0, -2.0, 3.0, -3.0]
        );
    }

    #[test]
    fn gather_varied_lengths() {
        let r = run_spmd(3, Machine::ideal(), |comm| {
            let data = vec![comm.rank() as f64; comm.rank()];
            gather_varied(comm, 1, &data)
        })
        .unwrap();
        let v = r[1].value.as_ref().unwrap();
        assert_eq!(v[0], Vec::<f64>::new());
        assert_eq!(v[1], vec![1.0]);
        assert_eq!(v[2], vec![2.0, 2.0]);
    }

    #[test]
    fn scatter_routes_chunks() {
        let r = run_spmd(3, Machine::ideal(), |comm| {
            let chunks = if comm.rank() == 0 {
                Some(vec![vec![0.0], vec![10.0], vec![20.0]])
            } else {
                None
            };
            scatter(comm, 0, chunks.as_deref())
        })
        .unwrap();
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.value, vec![10.0 * i as f64]);
        }
    }

    #[test]
    fn alltoall_transpose() {
        let p = 4;
        let r = run_spmd(p, Machine::ideal(), move |comm| {
            // chunks[d] = [rank*10 + d]
            let chunks: Vec<Vec<f64>> = (0..p)
                .map(|d| vec![(comm.rank() * 10 + d) as f64])
                .collect();
            alltoall(comm, &chunks)
        })
        .unwrap();
        for (rank, res) in r.iter().enumerate() {
            for (src, v) in res.value.iter().enumerate() {
                assert_eq!(v, &vec![(src * 10 + rank) as f64], "rank={rank} src={src}");
            }
        }
    }

    #[test]
    fn barrier_completes_for_awkward_sizes() {
        for &p in SIZES {
            run_spmd(p, Machine::ideal(), |comm| {
                barrier(comm);
                barrier(comm);
            })
            .unwrap();
        }
    }

    #[test]
    fn tree_broadcast_cheaper_than_linear_in_model() {
        // Modelled time: binomial log₂p rounds vs p−1 sends at the root.
        let p = 16;
        let payload = vec![0.0; 1000];
        let t_tree = {
            let payload = payload.clone();
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let mut d = payload.clone();
                broadcast_tree(comm, 0, &mut d);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        let t_linear = {
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let mut d = payload.clone();
                broadcast_linear(comm, 0, &mut d);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        assert!(
            t_tree < t_linear,
            "tree {t_tree} should beat linear {t_linear}"
        );
    }

    #[test]
    fn ring_beats_doubling_for_large_payloads() {
        // Bandwidth-dominated regime: ring moves n/p per step.
        let p = 8;
        let n = 100_000;
        let t_ring = {
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let data = vec![1.0; n];
                let _ = allreduce_ring(comm, &data, ReduceOp::Sum);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        let t_dbl = {
            let r = run_spmd(p, Machine::cluster2002(), move |comm| {
                let data = vec![1.0; n];
                let _ = allreduce_doubling(comm, &data, ReduceOp::Sum);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        assert!(
            t_ring < t_dbl,
            "ring {t_ring} should beat doubling {t_dbl} at n={n}"
        );
    }

    #[test]
    fn doubling_beats_ring_for_tiny_payloads() {
        // Latency-dominated regime.
        let p = 8;
        let t_ring = {
            let r = run_spmd(p, Machine::cluster2002(), |comm| {
                let _ = allreduce_ring(comm, &[1.0], ReduceOp::Sum);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        let t_dbl = {
            let r = run_spmd(p, Machine::cluster2002(), |comm| {
                let _ = allreduce_doubling(comm, &[1.0], ReduceOp::Sum);
            })
            .unwrap();
            crate::stats::TimeModel::from_results(&r).makespan
        };
        assert!(
            t_dbl < t_ring,
            "doubling {t_dbl} should beat ring {t_ring} at n=1"
        );
    }
}

/// Inclusive prefix-sum scan: rank r receives the element-wise sum of
/// the buffers of ranks `0..=r` (Hillis–Steele doubling: ⌈log₂p⌉ rounds).
pub fn scan_sum<C: Communicator + ?Sized>(comm: &mut C, data: &[f64]) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    let mut acc = data.to_vec();
    let mut dist = 1usize;
    let mut round: Tag = 0;
    while dist < p {
        // Send my running prefix to rank + dist; receive from rank − dist.
        if rank + dist < p {
            comm.send(rank + dist, T_SCAN + round * 16, &acc);
        }
        if rank >= dist {
            let part = comm.recv(rank - dist, T_SCAN + round * 16);
            ReduceOp::Sum.apply(&mut acc, &part);
        }
        dist <<= 1;
        round += 1;
    }
    acc
}

/// Allgather of equal-length buffers: every rank receives the
/// concatenation in rank order (tree-gather to rank 0 + broadcast).
pub fn allgather<C: Communicator + ?Sized>(comm: &mut C, data: &[f64]) -> Vec<f64> {
    let p = comm.size();
    let len = data.len();
    let mut buf = match gather(comm, 0, data) {
        Some(v) => v,
        None => vec![0.0; p * len],
    };
    broadcast(comm, 0, &mut buf);
    buf
}

#[cfg(test)]
mod scan_tests {
    use super::*;
    use crate::machine::Machine;
    use crate::thread_comm::run_spmd;

    #[test]
    fn scan_sum_matches_prefix_fold() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            let r = run_spmd(p, Machine::ideal(), |comm| {
                let mine = vec![comm.rank() as f64 + 1.0, 1.0];
                scan_sum(comm, &mine)
            })
            .unwrap();
            for (rank, res) in r.iter().enumerate() {
                let expect0: f64 = (0..=rank).map(|k| k as f64 + 1.0).sum();
                assert_eq!(
                    res.value,
                    vec![expect0, rank as f64 + 1.0],
                    "p={p} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        for p in [1usize, 3, 6] {
            let r = run_spmd(p, Machine::ideal(), |comm| {
                allgather(comm, &[comm.rank() as f64, -(comm.rank() as f64)])
            })
            .unwrap();
            let expect: Vec<f64> = (0..p).flat_map(|k| vec![k as f64, -(k as f64)]).collect();
            for res in &r {
                assert_eq!(res.value, expect, "p={p}");
            }
        }
    }
}
