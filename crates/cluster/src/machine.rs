//! Machine models: the parameters of the virtual-time execution model.
//!
//! The Hockney model prices a point-to-point message of `n` bytes at
//! `α + β·n` seconds (`α` latency, `β` inverse bandwidth). These two
//! numbers plus a floating-point throughput describe a machine well
//! enough to reproduce the *shape* of speedup curves; the presets span
//! the design space the evaluation sweeps (ablation A4).

/// Parameters of a modelled parallel machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Message latency α in seconds.
    pub latency: f64,
    /// Inverse bandwidth β in seconds per byte.
    pub inv_bandwidth: f64,
    /// Seconds per abstract "work unit" (calibrated flop-equivalents);
    /// engines use [`Machine::work_time`] to convert counted work into
    /// virtual seconds.
    pub sec_per_unit: f64,
    /// *Wall-clock* (host) seconds a blocking `recv` may wait before the
    /// run is declared wedged and aborted with
    /// [`crate::ClusterError::DeadlineExceeded`]. This is host time, not
    /// virtual time: it bounds real deadlocks (mismatched send/recv
    /// programs, a peer that died without poisoning us), not the modelled
    /// communication cost.
    pub recv_deadline: f64,
}

/// Default `recv` deadline: generous enough that only a genuine deadlock
/// ever reaches it (the old hard-coded constant, now per-[`Machine`]).
pub const DEFAULT_RECV_DEADLINE: f64 = 120.0;

impl Machine {
    /// A 2002-era Beowulf-class cluster: 50 µs MPI latency, 100 MB/s
    /// effective bandwidth, ~100 Mflop/s effective per-node throughput
    /// on pricing kernels.
    pub fn cluster2002() -> Self {
        Machine {
            name: "cluster2002",
            latency: 50e-6,
            inv_bandwidth: 10e-9,
            sec_per_unit: 10e-9,
            recv_deadline: DEFAULT_RECV_DEADLINE,
        }
    }

    /// A shared-memory SMP node: 2 µs latency, 2 GB/s.
    pub fn smp() -> Self {
        Machine {
            name: "smp",
            latency: 2e-6,
            inv_bandwidth: 0.5e-9,
            sec_per_unit: 10e-9,
            recv_deadline: DEFAULT_RECV_DEADLINE,
        }
    }

    /// An idealised PRAM-like machine: communication is free.
    /// Speedup measured on it isolates load imbalance from comm cost.
    pub fn ideal() -> Self {
        Machine {
            name: "ideal",
            latency: 0.0,
            inv_bandwidth: 0.0,
            sec_per_unit: 10e-9,
            recv_deadline: DEFAULT_RECV_DEADLINE,
        }
    }

    /// Copy of `self` with latency scaled by `f` (ablation A4).
    pub fn with_latency_factor(mut self, f: f64) -> Self {
        self.latency *= f;
        self.name = "custom";
        self
    }

    /// Copy of `self` with the `recv` deadline set to `seconds` of host
    /// wall-clock time. Chaos/fault tests shorten this so a wedged run
    /// surfaces as a typed [`crate::ClusterError::DeadlineExceeded`]
    /// quickly instead of stalling the suite.
    pub fn with_recv_deadline(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "deadline must be positive");
        self.recv_deadline = seconds;
        self
    }

    /// Copy of `self` with bandwidth scaled by `f` (β divided by `f`).
    pub fn with_bandwidth_factor(mut self, f: f64) -> Self {
        self.inv_bandwidth /= f;
        self.name = "custom";
        self
    }

    /// Virtual seconds for a message of `bytes` bytes.
    #[inline]
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency + self.inv_bandwidth * bytes as f64
    }

    /// Virtual seconds for `units` abstract work units.
    #[inline]
    pub fn work_time(&self, units: f64) -> f64 {
        self.sec_per_unit * units
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::cluster2002()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_affine() {
        let m = Machine::cluster2002();
        let t0 = m.message_time(0);
        let t1k = m.message_time(1000);
        assert_eq!(t0, 50e-6);
        assert!((t1k - t0 - 1000.0 * 10e-9).abs() < 1e-18);
    }

    #[test]
    fn ideal_machine_communicates_for_free() {
        let m = Machine::ideal();
        assert_eq!(m.message_time(1 << 20), 0.0);
        assert!(m.work_time(100.0) > 0.0);
    }

    #[test]
    fn factors_scale_the_right_knob() {
        let m = Machine::cluster2002().with_latency_factor(10.0);
        assert_eq!(m.latency, 500e-6);
        assert_eq!(m.inv_bandwidth, 10e-9);
        let m2 = Machine::cluster2002().with_bandwidth_factor(10.0);
        assert_eq!(m2.inv_bandwidth, 1e-9);
    }

    #[test]
    fn presets_ordered_by_latency() {
        assert!(Machine::ideal().latency < Machine::smp().latency);
        assert!(Machine::smp().latency < Machine::cluster2002().latency);
    }
}
