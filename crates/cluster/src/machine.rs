//! Machine models: the parameters of the virtual-time execution model.
//!
//! The Hockney model prices a point-to-point message of `n` bytes at
//! `α + β·n` seconds (`α` latency, `β` inverse bandwidth). These two
//! numbers plus a floating-point throughput describe a machine well
//! enough to reproduce the *shape* of speedup curves; the presets span
//! the design space the evaluation sweeps (ablation A4).
//!
//! Since the collective-engine refactor a machine also carries a
//! [`TopologyKind`] and a second (α, β) pair for **far** links — those
//! that leave an SMP node or a direct topology link. Legacy presets are
//! [`TopologyKind::Uniform`] with far == near, so every pre-engine cost
//! is reproduced bit for bit.

use crate::topology::TopologyKind;

/// How the collective engine should pick algorithms on this machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveChoice {
    /// Let the engine key the algorithm off the machine topology.
    Auto,
    /// Force the flat (pre-engine) algorithms regardless of topology.
    /// Used by the scalability sweep to measure what hierarchy buys.
    FlatOnly,
}

/// Parameters of a modelled parallel machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Message latency α in seconds (near links).
    pub latency: f64,
    /// Inverse bandwidth β in seconds per byte (near links).
    pub inv_bandwidth: f64,
    /// Seconds per abstract "work unit" (calibrated flop-equivalents);
    /// engines use [`Machine::work_time`] to convert counted work into
    /// virtual seconds.
    pub sec_per_unit: f64,
    /// *Wall-clock* (host) seconds a blocking `recv` may wait before the
    /// run is declared wedged and aborted with
    /// [`crate::ClusterError::DeadlineExceeded`]. This is host time, not
    /// virtual time: it bounds real deadlocks (mismatched send/recv
    /// programs, a peer that died without poisoning us), not the modelled
    /// communication cost.
    pub recv_deadline: f64,
    /// Interconnect topology; decides which rank pairs are near/far and
    /// which collective algorithms the engine selects.
    pub topology: TopologyKind,
    /// Message latency α in seconds for far links.
    pub far_latency: f64,
    /// Inverse bandwidth β in seconds per byte for far links.
    pub far_inv_bandwidth: f64,
    /// Collective-algorithm selection policy for the engine.
    pub collectives: CollectiveChoice,
}

/// Default `recv` deadline: generous enough that only a genuine deadlock
/// ever reaches it (the old hard-coded constant, now per-[`Machine`]).
pub const DEFAULT_RECV_DEADLINE: f64 = 120.0;

impl Machine {
    /// Uniform-topology machine with the given near parameters; far
    /// links are identical to near ones, which makes every cost
    /// identical to the pre-topology model.
    fn uniform(name: &'static str, latency: f64, inv_bandwidth: f64, sec_per_unit: f64) -> Self {
        Machine {
            name,
            latency,
            inv_bandwidth,
            sec_per_unit,
            recv_deadline: DEFAULT_RECV_DEADLINE,
            topology: TopologyKind::Uniform,
            far_latency: latency,
            far_inv_bandwidth: inv_bandwidth,
            collectives: CollectiveChoice::Auto,
        }
    }

    /// A 2002-era Beowulf-class cluster: 50 µs MPI latency, 100 MB/s
    /// effective bandwidth, ~100 Mflop/s effective per-node throughput
    /// on pricing kernels.
    pub fn cluster2002() -> Self {
        Machine::uniform("cluster2002", 50e-6, 10e-9, 10e-9)
    }

    /// A shared-memory SMP node: 2 µs latency, 2 GB/s.
    pub fn smp() -> Self {
        Machine::uniform("smp", 2e-6, 0.5e-9, 10e-9)
    }

    /// An idealised PRAM-like machine: communication is free.
    /// Speedup measured on it isolates load imbalance from comm cost.
    pub fn ideal() -> Self {
        Machine::uniform("ideal", 0.0, 0.0, 10e-9)
    }

    /// A cluster of SMP nodes, `node_size` ranks each: intra-node
    /// messages at shared-memory cost (2 µs, 2 GB/s), inter-node
    /// messages over the 2002-era fabric (50 µs, 100 MB/s) through one
    /// uplink per node. This is the machine the 1024-rank scalability
    /// sweep runs on; concurrent far senders on a node serialise on the
    /// uplink (see `collectives`).
    ///
    /// # Panics
    /// Panics unless `node_size` is a power of two.
    pub fn smp_cluster2002(node_size: usize) -> Self {
        assert!(
            node_size.is_power_of_two(),
            "node_size must be a power of two"
        );
        Machine {
            name: "smp_cluster2002",
            latency: 2e-6,
            inv_bandwidth: 0.5e-9,
            sec_per_unit: 10e-9,
            recv_deadline: DEFAULT_RECV_DEADLINE,
            topology: TopologyKind::SmpCluster { node_size },
            far_latency: 50e-6,
            far_inv_bandwidth: 10e-9,
            collectives: CollectiveChoice::Auto,
        }
    }

    /// A hypercube-wired machine with 2002-era link parameters:
    /// dimension-neighbour messages are direct (near), everything else
    /// routes through intermediate nodes (far at double latency).
    /// Recursive doubling runs entirely on near links here.
    pub fn hypercube2002() -> Self {
        Machine {
            name: "hypercube2002",
            latency: 50e-6,
            inv_bandwidth: 10e-9,
            sec_per_unit: 10e-9,
            recv_deadline: DEFAULT_RECV_DEADLINE,
            topology: TopologyKind::Hypercube,
            far_latency: 100e-6,
            far_inv_bandwidth: 10e-9,
            collectives: CollectiveChoice::Auto,
        }
    }

    /// Copy of `self` with latency scaled by `f` (ablation A4); scales
    /// near and far latency together.
    pub fn with_latency_factor(mut self, f: f64) -> Self {
        self.latency *= f;
        self.far_latency *= f;
        self.name = "custom";
        self
    }

    /// Copy of `self` with the `recv` deadline set to `seconds` of host
    /// wall-clock time. Chaos/fault tests shorten this so a wedged run
    /// surfaces as a typed [`crate::ClusterError::DeadlineExceeded`]
    /// quickly instead of stalling the suite.
    pub fn with_recv_deadline(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "deadline must be positive");
        self.recv_deadline = seconds;
        self
    }

    /// Copy of `self` with bandwidth scaled by `f` (β divided by `f`);
    /// scales near and far bandwidth together.
    pub fn with_bandwidth_factor(mut self, f: f64) -> Self {
        self.inv_bandwidth /= f;
        self.far_inv_bandwidth /= f;
        self.name = "custom";
        self
    }

    /// Copy of `self` with the collective-selection policy replaced.
    pub fn with_collectives(mut self, choice: CollectiveChoice) -> Self {
        self.collectives = choice;
        self
    }

    /// Virtual seconds for a message of `bytes` bytes on a near link.
    #[inline]
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency + self.inv_bandwidth * bytes as f64
    }

    /// Virtual seconds for a message of `bytes` bytes on a far link.
    #[inline]
    pub fn far_message_time(&self, bytes: usize) -> f64 {
        self.far_latency + self.far_inv_bandwidth * bytes as f64
    }

    /// Whether a `from → to` message crosses the fabric on this machine.
    #[inline]
    pub fn is_far(&self, from: usize, to: usize) -> bool {
        self.topology.is_far(from, to)
    }

    /// Virtual seconds for a `from → to` message of `bytes` bytes,
    /// picking the near or far link parameters from the topology. On
    /// [`TopologyKind::Uniform`] machines this equals
    /// [`Machine::message_time`] exactly.
    #[inline]
    pub fn message_time_between(&self, from: usize, to: usize, bytes: usize) -> f64 {
        if self.is_far(from, to) {
            self.far_message_time(bytes)
        } else {
            self.message_time(bytes)
        }
    }

    /// Virtual seconds for `units` abstract work units.
    #[inline]
    pub fn work_time(&self, units: f64) -> f64 {
        self.sec_per_unit * units
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::cluster2002()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_affine() {
        let m = Machine::cluster2002();
        let t0 = m.message_time(0);
        let t1k = m.message_time(1000);
        assert_eq!(t0, 50e-6);
        assert!((t1k - t0 - 1000.0 * 10e-9).abs() < 1e-18);
    }

    #[test]
    fn ideal_machine_communicates_for_free() {
        let m = Machine::ideal();
        assert_eq!(m.message_time(1 << 20), 0.0);
        assert!(m.work_time(100.0) > 0.0);
    }

    #[test]
    fn factors_scale_the_right_knob() {
        let m = Machine::cluster2002().with_latency_factor(10.0);
        assert_eq!(m.latency, 500e-6);
        assert_eq!(m.inv_bandwidth, 10e-9);
        let m2 = Machine::cluster2002().with_bandwidth_factor(10.0);
        assert_eq!(m2.inv_bandwidth, 1e-9);
    }

    #[test]
    fn presets_ordered_by_latency() {
        assert!(Machine::ideal().latency < Machine::smp().latency);
        assert!(Machine::smp().latency < Machine::cluster2002().latency);
    }

    #[test]
    fn uniform_presets_charge_far_same_as_near() {
        for m in [Machine::cluster2002(), Machine::smp(), Machine::ideal()] {
            assert_eq!(m.topology, TopologyKind::Uniform);
            for (a, b) in [(0, 1), (0, 63), (7, 12)] {
                assert_eq!(
                    m.message_time_between(a, b, 4096).to_bits(),
                    m.message_time(4096).to_bits(),
                    "{}: {a}->{b}",
                    m.name
                );
            }
        }
    }

    #[test]
    fn smp_cluster_charges_far_across_nodes_only() {
        let m = Machine::smp_cluster2002(8);
        assert!(m.message_time_between(0, 7, 1000) < m.message_time_between(0, 8, 1000));
        assert_eq!(
            m.message_time_between(0, 8, 1000),
            m.far_message_time(1000)
        );
        assert_eq!(m.message_time_between(1, 5, 1000), m.message_time(1000));
    }

    #[test]
    fn hypercube_machine_keeps_doubling_partners_near() {
        let m = Machine::hypercube2002();
        for k in 0..6 {
            assert!(!m.is_far(0, 1 << k), "dimension {k} partner");
        }
        assert!(m.is_far(0, 3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn smp_cluster_rejects_odd_node_size() {
        let _ = Machine::smp_cluster2002(6);
    }
}
