//! # mdp-cluster — a message-passing substrate with a virtual-time model
//!
//! The ICPP 2002 evaluation this workspace reproduces ran MPI programs on
//! a distributed-memory multiprocessor. This crate recreates that
//! programming model from scratch:
//!
//! * **SPMD execution** — [`run_spmd`] launches `p` ranks as OS threads,
//!   each holding a [`ThreadComm`]; the same closure runs on every rank
//!   exactly as an MPI program would (`rank()`, `size()`, `send`, `recv`,
//!   collectives).
//! * **Typed point-to-point messages** over lock-free channels with
//!   selective receive by `(source, tag)` — the MPI envelope discipline.
//! * **Collectives** ([`collectives`]) — barrier, broadcast, reduce,
//!   allreduce, gather, scatter and all-to-all, each built from
//!   point-to-point sends with the classic binomial-tree / recursive
//!   doubling / ring algorithms (several variants, for the ablation
//!   experiments).
//! * **A virtual-time execution model** — the substitution for real
//!   hardware (see DESIGN.md). Each rank owns a virtual clock; computation
//!   advances it explicitly via [`Communicator::compute`], and every
//!   message advances it by the Hockney cost `α + β·bytes` of the chosen
//!   [`Machine`]. Message timestamps travel with the payload, so the
//!   virtual time of a run is **deterministic** — independent of how the
//!   host OS schedules the worker threads, and therefore reproducible on
//!   any machine, including this single-core build host.
//!
//! The modelled execution time of a run is the `max` over ranks of each
//! rank's clock at finish; parallel speedup reported by the benches is
//! `T_model(1) / T_model(p)`, exactly the quantity the paper measures,
//! with communication structure — not host core count — determining the
//! curve.
//!
//! ```
//! use mdp_cluster::{run_spmd, Machine, Communicator};
//!
//! // Sum 0..400 split over 4 ranks, with a modelled 2002-era cluster.
//! let results = run_spmd(4, Machine::cluster2002(), |comm| {
//!     let (lo, hi) = mdp_cluster::partition::block_range(400, comm.size(), comm.rank());
//!     let local: f64 = (lo..hi).map(|i| i as f64).sum();
//!     comm.compute(1e-9 * (hi - lo) as f64);
//!     mdp_cluster::collectives::allreduce_sum(comm, &[local])[0]
//! })
//! .unwrap();
//! assert!(results.iter().all(|r| r.value == 79800.0));
//! ```

pub mod checkpoint;
pub mod collectives;
pub mod comm;
pub mod engine;
pub mod error;
pub mod fault;
pub mod machine;
pub mod message;
pub mod partition;
pub mod stats;
pub mod thread_comm;
pub mod topology;
pub mod trace;

pub use checkpoint::{CheckpointMode, CheckpointRecord, CheckpointStore, Recovery, Supervisor};
pub use collectives::{canonical_fold, ReduceOp};
pub use comm::Communicator;
pub use engine::{CollectiveAlgo, CollectiveEngine};
pub use error::ClusterError;
pub use fault::{FaultPlan, InjectedCrash};
pub use machine::{CollectiveChoice, Machine};
pub use message::Tag;
pub use topology::TopologyKind;
pub use stats::{CommStats, SpmdResult, TimeModel};
pub use thread_comm::{run_spmd, run_spmd_ft, run_spmd_traced, CrashInfo, FtRunOutcome, ThreadComm};
