//! Coordinated checkpoints and deterministic rank recovery.
//!
//! The pricing drivers all advance in lock-step over a step index
//! (lattice/FD time steps, MC batch boundaries). That structure makes
//! *coordinated* checkpointing trivial and cheap: at every boundary
//! that is a multiple of the checkpoint interval, each rank snapshots
//! its shard into a [`CheckpointStore`] (a model of stable storage —
//! the parallel file system of a 2002-era cluster), paying the
//! modelled cost of shipping the snapshot off-node.
//!
//! Recovery preserves **bitwise determinism** because of three facts:
//!
//! 1. Crashes fire only at step boundaries ([`crate::ThreadComm::fault_step`]),
//!    and every message sent inside a step is received inside the same
//!    step — so at the moment survivors roll back, no user message is
//!    in flight and no receive can observe pre-crash traffic.
//! 2. The checkpoint at a boundary is written *before* the crash
//!    injection point, so the final checkpoint set always covers the
//!    whole problem domain, including the dying rank's shard.
//! 3. Survivors repartition the domain over the *sorted list of
//!    surviving ranks* with the same block partition arithmetic used
//!    at startup, and every per-element update is arithmetic on values
//!    that do not depend on which rank owns the element. Replayed
//!    steps therefore produce bit-identical intermediate states, and
//!    the final price is bit-identical to a fault-free run.
//!
//! Failure agreement cannot reuse the tree allreduce in
//! [`crate::collectives`] directly: a tree over the *full* communicator
//! is not death-robust (contributions routed through the dead rank
//! would vanish). Instead the exchange runs only among ranks already
//! known to survive the boundary: below
//! [`AGREE_HIER_THRESHOLD`] survivors, a flat all-to-all of death
//! bitmasks (O(s²) messages, the original scheme); at or above it, a
//! two-level group-leader union — members ship their mask to a group
//! leader, the leaders exchange group unions pairwise, then fan the
//! result back out — which is O(s + (s/Q)²) messages and safe because
//! every relay is a guaranteed survivor. The exchange runs only at
//! boundaries where the fault plan schedules a crash — detection
//! itself is honest (survivors consume the dying rank's poison marker
//! at the message level), the plan only tells the runtime *when* to
//! look, keeping fault-free steps free of agreement traffic.
//!
//! # Synchronous vs asynchronous checkpointing
//!
//! The original scheme ([`CheckpointMode::Sync`]) blocks each rank for
//! the full modelled transfer of its shard at every due boundary —
//! measured at ~6.5% of t6b makespan at large P.
//! [`CheckpointMode::AsyncIncremental`] cuts that two ways:
//!
//! * **Incremental**: the shard is diffed against the previous
//!   snapshot in [`DIRTY_CHUNK`]-double chunks and only dirty chunks
//!   are charged to the wire (the first write of an era, or one whose
//!   domain offset moved after a repartition, is always full).
//! * **Asynchronous**: the boundary charges only the initiation
//!   latency; the payload drain proceeds in the background and is
//!   *settled* — any not-yet-overlapped remainder charged — at the
//!   next due boundary, before any failure agreement, or at an
//!   explicit [`Supervisor::flush`]. Compute between boundaries thus
//!   hides the transfer.
//!
//! Stable storage semantics are unchanged in both modes: the store
//! always receives **full**, era-keyed records, so recovery reads the
//! same pool and replays bit-identically; the mode moves virtual-time
//! cost, never data.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::comm::Communicator;
use crate::message::{Message, Tag, FT_TAG_BASE};
use crate::thread_comm::ThreadComm;

/// Tag for the failure-agreement bitmask exchange.
const AGREE_TAG: Tag = FT_TAG_BASE;
/// Tag for recovery-time subgroup broadcast.
const BCAST_TAG: Tag = FT_TAG_BASE + 1;
/// Tag for recovery-time subgroup gather.
const GATHER_TAG: Tag = FT_TAG_BASE + 2;
/// Tag for hierarchical agreement: member mask → group leader.
const AGREE_UP_TAG: Tag = FT_TAG_BASE + 3;
/// Tag for hierarchical agreement: leader ↔ leader group unions.
const AGREE_X_TAG: Tag = FT_TAG_BASE + 4;
/// Tag for hierarchical agreement: final union → group members.
const AGREE_DOWN_TAG: Tag = FT_TAG_BASE + 5;

/// Survivor count at which failure agreement switches from the flat
/// all-to-all mask exchange to the two-level group-leader union.
pub const AGREE_HIER_THRESHOLD: usize = 32;

/// Group size of the hierarchical agreement exchange.
const AGREE_GROUP: usize = 32;

/// Chunk granularity (in doubles) of the incremental dirty diff in
/// [`CheckpointMode::AsyncIncremental`].
pub const DIRTY_CHUNK: usize = 64;

/// How a [`Supervisor`] charges checkpoint cost (stored data is
/// identical in both modes — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointMode {
    /// Blocking full-shard write at every due boundary (the original
    /// coordinated scheme).
    #[default]
    Sync,
    /// Initiation latency up front, dirty-chunk payload drained in the
    /// background and settled at the next boundary / agreement /
    /// [`Supervisor::flush`].
    AsyncIncremental,
}

/// One rank's snapshot at a checkpoint boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// The step boundary this snapshot was taken at.
    pub step: usize,
    /// Recovery era: how many recoveries preceded this write. Records
    /// of an older era at the same step are stale (they describe a
    /// partition over a rank set that has since shrunk) and are
    /// excluded by [`CheckpointStore::read_step`].
    pub era: usize,
    /// Domain offset of the shard (first row / grid point / block id).
    pub lo: usize,
    /// The shard's state, flattened to doubles.
    pub data: Vec<f64>,
}

/// A model of stable storage shared by all ranks (the cluster's
/// parallel file system). Snapshots are keyed by `(rank, step, era)`
/// and never overwritten: a survivor replaying past a boundary writes
/// a *new-era* record there, so a slower survivor can still read the
/// old era's complete pool — overwriting in place would race. Writes
/// are charged to the writer's virtual clock by
/// [`ThreadComm::checkpoint_write`].
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<CheckpointMap>>,
}

/// Records keyed by `(rank, step, era)`.
type CheckpointMap = HashMap<(usize, usize, usize), CheckpointRecord>;

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Persist `rank`'s snapshot for its `(step, era)` slot.
    pub fn write(&self, rank: usize, record: CheckpointRecord) {
        self.inner
            .lock()
            .unwrap()
            .insert((rank, record.step, record.era), record);
    }

    /// All snapshots taken at `step` in `era`, sorted by rank. The
    /// reader names the era it recovered in — selecting "newest" would
    /// race with fast survivors that already replayed past this
    /// boundary and deposited next-era records.
    ///
    /// Safe for survivors to call during recovery: every era-`era`
    /// participant of the failure-agreement exchange wrote its
    /// boundary snapshot before exchanging, and the dying rank wrote
    /// its snapshot before reaching the crash injection point, so the
    /// lock acquisition happens-after every relevant write.
    pub fn read_step(&self, step: usize, era: usize) -> Vec<(usize, CheckpointRecord)> {
        let mut v: Vec<(usize, CheckpointRecord)> = self
            .inner
            .lock()
            .unwrap()
            .iter()
            .filter(|(&(_, st, er), _)| st == step && er == era)
            .map(|(&(rank, _, _), r)| (rank, r.clone()))
            .collect();
        v.sort_by_key(|&(rank, _)| rank);
        v
    }

    /// Number of snapshots currently held (for tests).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no snapshot has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ThreadComm {
    /// Write a checkpoint record to stable storage, charging the
    /// modelled transfer cost (`α + β·bytes`, as if shipped to the
    /// file system over the interconnect) to this rank's clock and
    /// `ckpt_time` counter.
    pub fn checkpoint_write(&mut self, store: &CheckpointStore, record: CheckpointRecord) {
        let cost = self
            .machine()
            .message_time(Message::wire_bytes(record.data.len()));
        self.charge_checkpoint(cost);
        store.write(self.rank(), record);
    }
}

/// The instruction a driver receives from [`Supervisor::boundary`]
/// when ranks died: roll back and repartition.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Step to resume from: the last coordinated checkpoint. `None`
    /// means no checkpoint exists yet — reinitialise from scratch.
    pub from_step: Option<usize>,
    /// The pooled checkpoint records at `from_step`, sorted by the
    /// writing rank (covers the whole domain, dead ranks included).
    pub records: Vec<(usize, CheckpointRecord)>,
}

/// Per-rank driver-side coordinator for checkpointing and recovery.
///
/// Drivers construct one per rank, call [`Supervisor::boundary`] at
/// every step boundary, and react to the returned [`Recovery`] by
/// rebuilding their shard from the pooled records over the shrunken
/// [`Supervisor::active`] set.
#[derive(Debug)]
pub struct Supervisor {
    interval: usize,
    store: CheckpointStore,
    plan_crashes: Vec<(usize, usize)>,
    active: Vec<usize>,
    last_ckpt: Option<usize>,
    era: usize,
    mode: CheckpointMode,
    /// Previous snapshot `(lo, data)` for the incremental diff.
    prev: Option<(usize, Vec<f64>)>,
    /// Virtual time at which the in-flight background write lands.
    drain_deadline: f64,
}

impl Supervisor {
    /// A supervisor for `comm`'s run, checkpointing every `interval`
    /// steps into `store` with the original synchronous scheme.
    pub fn new(comm: &ThreadComm, interval: usize, store: &CheckpointStore) -> Self {
        Self::new_with_mode(comm, interval, store, CheckpointMode::Sync)
    }

    /// A supervisor with an explicit [`CheckpointMode`].
    pub fn new_with_mode(
        comm: &ThreadComm,
        interval: usize,
        store: &CheckpointStore,
        mode: CheckpointMode,
    ) -> Self {
        assert!(interval >= 1, "checkpoint interval must be >= 1");
        Supervisor {
            interval,
            store: store.clone(),
            plan_crashes: comm
                .fault_plan()
                .map(|p| p.crashes.clone())
                .unwrap_or_default(),
            active: (0..comm.size()).collect(),
            last_ckpt: None,
            era: 0,
            mode,
            prev: None,
            drain_deadline: 0.0,
        }
    }

    /// The configured checkpoint mode.
    pub fn mode(&self) -> CheckpointMode {
        self.mode
    }

    /// Charge any not-yet-overlapped remainder of the in-flight
    /// background checkpoint write. No-op under [`CheckpointMode::Sync`]
    /// or when compute since initiation already covered the drain.
    pub fn flush(&mut self, comm: &mut ThreadComm) {
        let due = self.drain_deadline - comm.now();
        if due > 0.0 {
            comm.charge_checkpoint(due);
        }
        self.drain_deadline = 0.0;
    }

    /// Ranks still alive, sorted ascending. Identical on every
    /// survivor after each boundary — this list (not the original
    /// size) is what drivers partition over.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// The step of the most recent coordinated checkpoint.
    pub fn last_checkpoint(&self) -> Option<usize> {
        self.last_ckpt
    }

    /// Dense index of `rank` within the active list.
    pub fn dense_index(&self, rank: usize) -> usize {
        self.active
            .iter()
            .position(|&r| r == rank)
            .expect("rank must be active")
    }

    fn crash_step_of(&self, rank: usize) -> Option<usize> {
        self.plan_crashes
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, s)| s)
            .min()
    }

    fn any_crash_at(&self, step: usize) -> bool {
        self.plan_crashes.iter().any(|&(_, s)| s == step)
    }

    /// One step boundary: checkpoint if due, inject this rank's
    /// scheduled crash, and — at boundaries where the plan schedules a
    /// death — run the failure-agreement exchange. Returns a
    /// [`Recovery`] when ranks died and the driver must roll back.
    ///
    /// `snapshot` produces `(lo, data)` for this rank's shard; it is
    /// only invoked when a checkpoint is due at this boundary.
    pub fn boundary(
        &mut self,
        comm: &mut ThreadComm,
        step: usize,
        snapshot: impl FnOnce() -> (usize, Vec<f64>),
    ) -> Option<Recovery> {
        // Checkpoint before the crash point: a rank dying at this
        // boundary still contributes its shard to the recovery pool.
        if step % self.interval == 0 {
            let (lo, data) = snapshot();
            let era = self.era;
            match self.mode {
                CheckpointMode::Sync => {
                    comm.checkpoint_write(&self.store, CheckpointRecord { step, era, lo, data });
                }
                CheckpointMode::AsyncIncremental => {
                    // The previous background write must land before
                    // the next one starts (one outstanding write).
                    self.flush(comm);
                    let dirty = dirty_values(self.prev.as_ref(), lo, &data);
                    let init = comm.machine().message_time(Message::wire_bytes(0));
                    comm.charge_checkpoint(init);
                    let drain = comm.machine().message_time(Message::wire_bytes(dirty));
                    self.drain_deadline = comm.now() + drain;
                    // Stable storage gets the FULL record either way:
                    // the diff moves cost, never data.
                    self.prev = Some((lo, data.clone()));
                    self.store
                        .write(comm.rank(), CheckpointRecord { step, era, lo, data });
                }
            }
            self.last_ckpt = Some(step);
        }
        comm.fault_step(step);
        if !self.any_crash_at(step) {
            return None;
        }
        // Stable storage must be consistent before survivors read the
        // recovery pool: settle the in-flight background write.
        self.flush(comm);
        let newly_dead = self.agree_on_dead(comm, step);
        if newly_dead.is_empty() {
            return None;
        }
        self.active.retain(|r| !newly_dead.contains(r));
        // Read the pool of the era we are leaving, *then* bump the era
        // so replayed boundaries deposit fresh records alongside it.
        let records = match self.last_ckpt {
            Some(s) => self.store.read_step(s, self.era),
            None => Vec::new(),
        };
        self.era += 1;
        // Repartitioning moves shard boundaries: the next incremental
        // diff would compare unrelated offsets, so force a full write.
        self.prev = None;
        Some(Recovery {
            from_step: self.last_ckpt,
            records,
        })
    }

    /// Flat failure-agreement exchange at a crash boundary. Every
    /// survivor (a) consumes the poison marker of each active rank
    /// whose scheduled death is due, directly observing its death
    /// clock, then (b) exchanges death bitmasks with every expected
    /// survivor and unions them. The result — identical on all
    /// survivors — is the list of ranks to bury. Only deaths scheduled
    /// at or before `step` are reported, so a poison marker consumed
    /// early from a wall-clock-ahead rank never leaks into an earlier
    /// boundary's agreement.
    fn agree_on_dead(&self, comm: &mut ThreadComm, step: usize) -> Vec<usize> {
        let me = comm.rank();
        let size = comm.size();
        let due: Vec<usize> = self
            .active
            .iter()
            .copied()
            .filter(|&r| r != me && matches!(self.crash_step_of(r), Some(c) if c <= step))
            .collect();
        let expected: Vec<usize> = self
            .active
            .iter()
            .copied()
            .filter(|&r| r != me && !due.contains(&r))
            .collect();
        let mut dead = vec![false; size];
        for &d in &due {
            // The dying rank sends nothing at this boundary; only its
            // poison marker can resolve this receive.
            if comm.recv_ft(d, AGREE_TAG).is_err() {
                dead[d] = true;
            }
        }
        let mask: Vec<f64> = dead.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        // `alive` — the identical-on-every-survivor exchange roster:
        // every active rank whose scheduled death is not due, self
        // included. (`expected` is `alive` minus self.)
        let alive: Vec<usize> = self
            .active
            .iter()
            .copied()
            .filter(|&r| !matches!(self.crash_step_of(r), Some(c) if c <= step) || r == me)
            .collect();
        if alive.len() >= AGREE_HIER_THRESHOLD {
            let union = hierarchical_union(comm, &alive, &mask);
            for (i, v) in union.iter().enumerate() {
                if *v != 0.0 {
                    dead[i] = true;
                }
            }
        } else {
            for &r in &expected {
                comm.send(r, AGREE_TAG, &mask);
            }
            for &r in &expected {
                // Plain receive: an expected survivor always sends its
                // mask before it can die (its scheduled crash, if any,
                // is at a later boundary). `recv_ft` would be wrong
                // here — it resolves early-observed poison from a
                // wall-clock-ahead rank whose *future* death must not
                // surface yet.
                let theirs = comm.recv(r, AGREE_TAG);
                for (i, v) in theirs.iter().enumerate() {
                    if *v != 0.0 {
                        dead[i] = true;
                    }
                }
            }
        }
        (0..size).filter(|&r| dead[r]).collect()
    }
}

/// Two-level union of per-rank masks over `roster` (sorted, identical
/// on every participant, self included): groups of [`AGREE_GROUP`]
/// consecutive roster entries ship their masks to the group's first
/// rank, the leaders exchange group unions pairwise, and the result
/// fans back out. Every relay is a guaranteed survivor, so no
/// contribution can vanish. Returns the element-wise union on every
/// participant.
fn hierarchical_union(comm: &mut ThreadComm, roster: &[usize], mask: &[f64]) -> Vec<f64> {
    let me = comm.rank();
    let mi = roster
        .iter()
        .position(|&r| r == me)
        .expect("caller must be on the roster");
    let gi = mi / AGREE_GROUP;
    let gstart = gi * AGREE_GROUP;
    let gend = (gstart + AGREE_GROUP).min(roster.len());
    let leader = roster[gstart];
    let mut acc = mask.to_vec();
    let or_into = |acc: &mut [f64], other: &[f64]| {
        for (a, b) in acc.iter_mut().zip(other) {
            if *b != 0.0 {
                *a = 1.0;
            }
        }
    };
    if me != leader {
        comm.send(leader, AGREE_UP_TAG, mask);
        return comm.recv(leader, AGREE_DOWN_TAG);
    }
    for &member in &roster[gstart + 1..gend] {
        let theirs = comm.recv(member, AGREE_UP_TAG);
        or_into(&mut acc, &theirs);
    }
    let n_groups = roster.len().div_ceil(AGREE_GROUP);
    let group_union = acc.clone();
    for og in 0..n_groups {
        if og != gi {
            comm.send(roster[og * AGREE_GROUP], AGREE_X_TAG, &group_union);
        }
    }
    for og in 0..n_groups {
        if og != gi {
            let theirs = comm.recv(roster[og * AGREE_GROUP], AGREE_X_TAG);
            or_into(&mut acc, &theirs);
        }
    }
    for &member in &roster[gstart + 1..gend] {
        comm.send(member, AGREE_DOWN_TAG, &acc);
    }
    acc
}

/// Count the values charged to the wire by an incremental checkpoint:
/// the data diffed against the previous snapshot in [`DIRTY_CHUNK`]
/// chunks, falling back to a full write when there is no comparable
/// snapshot (first write, post-recovery, moved offset, resized shard).
fn dirty_values(prev: Option<&(usize, Vec<f64>)>, lo: usize, data: &[f64]) -> usize {
    match prev {
        Some((plo, pdata)) if *plo == lo && pdata.len() == data.len() => {
            let mut dirty = 0;
            let mut i = 0;
            while i < data.len() {
                let end = (i + DIRTY_CHUNK).min(data.len());
                if data[i..end]
                    .iter()
                    .zip(&pdata[i..end])
                    .any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    dirty += end - i;
                }
                i = end;
            }
            dirty
        }
        _ => data.len(),
    }
}

/// Active-set size at which [`broadcast_active`] switches from the
/// linear fan-out to a binomial tree over dense indices.
pub const BCAST_TREE_THRESHOLD: usize = 64;

/// Broadcast `data` from `root` to every rank in `active`
/// (deterministic order). Recovery-path collective: the tree
/// algorithms in [`crate::collectives`] assume the full communicator,
/// so this one runs over dense active-list indices instead — linear
/// below [`BCAST_TREE_THRESHOLD`] ranks, a binomial tree at or above
/// (O(log s) depth instead of an O(s) root serial fan-out).
pub fn broadcast_active(
    comm: &mut ThreadComm,
    active: &[usize],
    root: usize,
    data: &[f64],
) -> Vec<f64> {
    let n = active.len();
    if n < BCAST_TREE_THRESHOLD {
        return if comm.rank() == root {
            for &r in active {
                if r != root {
                    comm.send(r, BCAST_TAG, data);
                }
            }
            data.to_vec()
        } else {
            comm.recv(root, BCAST_TAG)
        };
    }
    let me = comm.rank();
    let mi = active
        .iter()
        .position(|&r| r == me)
        .expect("caller must be active");
    let ri = active
        .iter()
        .position(|&r| r == root)
        .expect("root must be active");
    let vi = (mi + n - ri) % n;
    let mut out = data.to_vec();
    let mut mask = 1usize;
    while mask < n {
        if vi < mask {
            let vdest = vi + mask;
            if vdest < n {
                comm.send(active[(vdest + ri) % n], BCAST_TAG, &out);
            }
        } else if vi < 2 * mask {
            out = comm.recv(active[(vi - mask + ri) % n], BCAST_TAG);
        }
        mask <<= 1;
    }
    out
}

/// Gather each active rank's `data` to `root` (linear, in active-list
/// order). Returns the per-rank payloads on `root`, empty elsewhere.
pub fn gather_active(
    comm: &mut ThreadComm,
    active: &[usize],
    root: usize,
    data: &[f64],
) -> Vec<Vec<f64>> {
    if comm.rank() == root {
        active
            .iter()
            .map(|&r| {
                if r == root {
                    data.to_vec()
                } else {
                    comm.recv(r, GATHER_TAG)
                }
            })
            .collect()
    } else {
        comm.send(root, GATHER_TAG, data);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::machine::Machine;
    use crate::thread_comm::{run_spmd, run_spmd_ft};

    #[test]
    fn store_keeps_history_and_filters_by_step_and_era() {
        let store = CheckpointStore::new();
        store.write(
            0,
            CheckpointRecord {
                step: 0,
                era: 0,
                lo: 0,
                data: vec![1.0],
            },
        );
        store.write(
            1,
            CheckpointRecord {
                step: 0,
                era: 0,
                lo: 4,
                data: vec![2.0],
            },
        );
        store.write(
            0,
            CheckpointRecord {
                step: 8,
                era: 0,
                lo: 0,
                data: vec![3.0],
            },
        );
        assert_eq!(store.len(), 3, "history is kept, never overwritten");
        let at8 = store.read_step(8, 0);
        assert_eq!(at8.len(), 1);
        assert_eq!(at8[0].0, 0);
        assert_eq!(at8[0].1.data, vec![3.0]);
        let at0 = store.read_step(0, 0);
        assert_eq!(at0.len(), 2, "both ranks' step-0 records survive");
        assert_eq!((at0[0].0, at0[1].0), (0, 1));
        assert!(store.read_step(0, 1).is_empty(), "era filter is exact");
    }

    #[test]
    fn checkpoint_write_charges_virtual_time() {
        let store = CheckpointStore::new();
        let st = store.clone();
        let r = run_spmd(1, Machine::cluster2002(), move |comm| {
            comm.checkpoint_write(
                &st,
                CheckpointRecord {
                    step: 0,
                    era: 0,
                    lo: 0,
                    data: vec![0.0; 100],
                },
            );
            comm.now()
        })
        .unwrap();
        let expect = Machine::cluster2002().message_time(Message::wire_bytes(100));
        assert!((r[0].value - expect).abs() < 1e-15);
        assert!((r[0].stats.ckpt_time - expect).abs() < 1e-15);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn supervisor_checkpoints_on_interval_only() {
        let store = CheckpointStore::new();
        let st = store.clone();
        let out = run_spmd_ft(
            2,
            Machine::ideal(),
            FaultPlan::new(0),
            move |comm| {
                let mut sup = Supervisor::new(comm, 4, &st);
                let mut snaps = 0;
                for step in 0..10 {
                    let r = sup.boundary(comm, step, || {
                        snaps += 1;
                        (comm_rank_lo(step), vec![step as f64])
                    });
                    assert!(r.is_none(), "no crashes scheduled");
                }
                (snaps, sup.last_checkpoint())
            },
        )
        .unwrap();
        for s in &out.survivors {
            assert_eq!(s.value.0, 3, "steps 0, 4, 8");
            assert_eq!(s.value.1, Some(8));
        }
    }

    fn comm_rank_lo(step: usize) -> usize {
        step // arbitrary payload for the snapshot closure
    }

    #[test]
    fn single_crash_is_agreed_and_repartitioned() {
        let store = CheckpointStore::new();
        let st = store.clone();
        let plan = FaultPlan::new(0).with_crash(1, 5);
        let out = run_spmd_ft(4, Machine::cluster2002(), plan, move |comm| {
            let me = comm.rank() as f64;
            let mut sup = Supervisor::new(comm, 4, &st);
            let mut recovered_at = None;
            let mut step = 0;
            while step < 10 {
                if let Some(rec) = sup.boundary(comm, step, || (0, vec![me])) {
                    recovered_at = Some((step, rec.from_step, rec.records.len()));
                    step = rec.from_step.expect("checkpoint exists");
                    continue;
                }
                comm.compute(1e-4);
                step += 1;
            }
            (recovered_at, sup.active().to_vec())
        })
        .unwrap();
        assert_eq!(out.crashed.len(), 1);
        assert_eq!(out.survivors.len(), 3);
        for s in &out.survivors {
            let (rec, active) = &s.value;
            // All survivors detected the death at step 5, rolled back
            // to the step-4 checkpoint, and saw all 4 shards pooled.
            assert_eq!(*rec, Some((5, Some(4), 4)));
            assert_eq!(active, &vec![0, 2, 3]);
        }
        // Deterministic agreement: identical virtual clocks per rank
        // across replays of the same plan.
        let t: Vec<u64> = out.survivors.iter().map(|s| s.time.to_bits()).collect();
        let st2 = store.clone();
        let plan2 = FaultPlan::new(0).with_crash(1, 5);
        let out2 = run_spmd_ft(4, Machine::cluster2002(), plan2, move |comm| {
            let me = comm.rank() as f64;
            let mut sup = Supervisor::new(comm, 4, &st2);
            let mut step = 0;
            while step < 10 {
                if let Some(rec) = sup.boundary(comm, step, || (0, vec![me])) {
                    step = rec.from_step.unwrap();
                    continue;
                }
                comm.compute(1e-4);
                step += 1;
            }
            sup.active().to_vec()
        })
        .unwrap();
        let t2: Vec<u64> = out2.survivors.iter().map(|s| s.time.to_bits()).collect();
        assert_eq!(t, t2, "recovery makespan must replay bit-identically");
    }

    #[test]
    fn two_crashes_at_different_steps() {
        let store = CheckpointStore::new();
        let st = store.clone();
        let plan = FaultPlan::new(0).with_crash(3, 2).with_crash(1, 6);
        let out = run_spmd_ft(4, Machine::cluster2002(), plan, move |comm| {
            let mut sup = Supervisor::new(comm, 2, &st);
            let mut step = 0;
            while step < 8 {
                if let Some(rec) = sup.boundary(comm, step, || (0, vec![0.0])) {
                    step = rec.from_step.unwrap();
                    continue;
                }
                comm.compute(1e-4);
                step += 1;
            }
            sup.active().to_vec()
        })
        .unwrap();
        assert_eq!(out.crashed.len(), 2);
        assert_eq!(out.survivors.len(), 2);
        for s in &out.survivors {
            assert_eq!(s.value, vec![0, 2]);
        }
    }

    #[test]
    fn async_incremental_charges_less_than_sync_and_recovers_identically() {
        // Fault-free: clean data after the first write → later async
        // boundaries charge only initiation (+ the settle of a zero…
        // actually a 16-byte-envelope drain), far below the sync full
        // write.
        let run = |mode: CheckpointMode| {
            let store = CheckpointStore::new();
            let st = store.clone();
            let out = run_spmd_ft(2, Machine::cluster2002(), FaultPlan::new(0), move |comm| {
                let mut sup = Supervisor::new_with_mode(comm, 1, &st, mode);
                let data = vec![1.25; 4096];
                for step in 0..8 {
                    sup.boundary(comm, step, || (0, data.clone()));
                    comm.compute(1e-3);
                }
                sup.flush(comm);
                comm.stats().ckpt_time
            })
            .unwrap();
            out.survivors[0].value
        };
        let sync = run(CheckpointMode::Sync);
        let async_ = run(CheckpointMode::AsyncIncremental);
        assert!(
            async_ < sync * 0.25,
            "async incremental ckpt_time {async_} should be well below sync {sync}"
        );

        // With a crash: recovery under async mode replays the same
        // active set and pools a full record set.
        let store = CheckpointStore::new();
        let st = store.clone();
        let plan = FaultPlan::new(0).with_crash(1, 5);
        let out = run_spmd_ft(4, Machine::cluster2002(), plan, move |comm| {
            let me = comm.rank() as f64;
            let mut sup =
                Supervisor::new_with_mode(comm, 4, &st, CheckpointMode::AsyncIncremental);
            let mut recovered = None;
            let mut step = 0;
            while step < 10 {
                if let Some(rec) = sup.boundary(comm, step, || (0, vec![me; 64])) {
                    recovered = Some((step, rec.from_step, rec.records.len()));
                    step = rec.from_step.expect("checkpoint exists");
                    continue;
                }
                comm.compute(1e-4);
                step += 1;
            }
            sup.flush(comm);
            (recovered, sup.active().to_vec())
        })
        .unwrap();
        assert_eq!(out.survivors.len(), 3);
        for s in &out.survivors {
            assert_eq!(s.value.0, Some((5, Some(4), 4)));
            assert_eq!(s.value.1, vec![0, 2, 3]);
        }
    }

    #[test]
    fn dirty_diff_counts_chunks_and_falls_back_to_full() {
        let a = vec![1.0; 200];
        assert_eq!(dirty_values(None, 0, &a), 200, "first write is full");
        let prev = (0usize, a.clone());
        assert_eq!(dirty_values(Some(&prev), 0, &a), 0, "clean shard is free");
        assert_eq!(
            dirty_values(Some(&prev), 8, &a),
            200,
            "moved offset forces full"
        );
        let mut b = a.clone();
        b[70] = 2.0; // dirties the second 64-chunk only
        assert_eq!(dirty_values(Some(&prev), 0, &b), 64);
        b[0] = 3.0; // and the first
        assert_eq!(dirty_values(Some(&prev), 0, &b), 128);
    }

    #[test]
    fn hierarchical_agreement_matches_flat_outcome_at_scale() {
        // 72 survivors ≥ AGREE_HIER_THRESHOLD → the two-level union
        // path runs; every survivor must still agree on the dead set.
        let store = CheckpointStore::new();
        let st = store.clone();
        let plan = FaultPlan::new(0).with_crash(17, 3).with_crash(40, 3);
        let out = run_spmd_ft(72, Machine::cluster2002(), plan, move |comm| {
            let mut sup = Supervisor::new(comm, 2, &st);
            let mut step = 0;
            while step < 6 {
                if let Some(rec) = sup.boundary(comm, step, || (0, vec![0.0])) {
                    step = rec.from_step.unwrap();
                    continue;
                }
                comm.compute(1e-5);
                step += 1;
            }
            sup.active().len()
        })
        .unwrap();
        assert_eq!(out.crashed.len(), 2);
        assert_eq!(out.survivors.len(), 70);
        for s in &out.survivors {
            assert_eq!(s.value, 70, "all survivors agree on both deaths");
        }
    }

    #[test]
    fn broadcast_active_tree_delivers_above_threshold() {
        let p = 80;
        let r = run_spmd(p, Machine::cluster2002(), move |comm| {
            // Roster skips rank 7 to exercise the dense-index mapping.
            let active: Vec<usize> = (0..p).filter(|&r| r != 7).collect();
            if comm.rank() == 7 {
                return vec![];
            }
            let data = if comm.rank() == 3 { vec![42.0, -1.0] } else { vec![] };
            broadcast_active(comm, &active, 3, &data)
        })
        .unwrap();
        for res in &r {
            if res.rank != 7 {
                assert_eq!(res.value, vec![42.0, -1.0]);
            }
        }
    }

    #[test]
    fn subgroup_collectives_cover_active_set() {
        let r = run_spmd(4, Machine::cluster2002(), |comm| {
            let active = [0usize, 2, 3]; // rank 1 sits out
            if comm.rank() == 1 {
                return (vec![], vec![]);
            }
            let got = broadcast_active(comm, &active, 0, &[7.5]);
            let gathered = gather_active(comm, &active, 0, &[comm.rank() as f64]);
            (got, gathered.into_iter().flatten().collect::<Vec<f64>>())
        })
        .unwrap();
        assert_eq!(r[0].value.0, vec![7.5]);
        assert_eq!(r[2].value.0, vec![7.5]);
        assert_eq!(r[3].value.0, vec![7.5]);
        assert_eq!(r[0].value.1, vec![0.0, 2.0, 3.0]);
        assert!(r[2].value.1.is_empty());
    }
}
