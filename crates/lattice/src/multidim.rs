//! The Boyle–Evnine–Gibbs (BEG, 1989) multidimensional recombining
//! lattice.
//!
//! Every asset moves up or down by `uᵢ = e^{σᵢ√Δt}` each step, giving
//! `2^d` joint branches with probabilities
//!
//! ```text
//! p_δ = 2^{−d} ( 1 + Σ_{i<j} δᵢδⱼ ρᵢⱼ + √Δt · Σᵢ δᵢ μᵢ/σᵢ ),
//! μᵢ = r − qᵢ − σᵢ²/2,   δᵢ ∈ {−1, +1}
//! ```
//!
//! which match the first two joint moments of the log-returns. The grid
//! at step `n` has `(n+1)^d` nodes (asset `i`'s state is its up-move count
//! `jᵢ ∈ 0..=n`), laid out row-major with **axis 0 outermost** — that is
//! the axis the parallel engines decompose.
//!
//! A single slab kernel ([`StepCtx::compute_slab`]) computes one axis-0
//! row of step `n` from two consecutive axis-0 rows of step `n+1`. The
//! sequential driver, the rayon driver and the message-passing driver
//! (in [`crate::cluster`]) all call exactly this kernel, so the parallel
//! engines are bit-identical to the sequential baseline by construction.
//!
//! # Run-contiguous layout invariant
//!
//! Grids are row-major with **axis 0 outermost** and **axis `d−1`
//! innermost at stride 1** — in both the current grid and the next. For
//! fixed outer indices `(j₀..j_{d−2})` the innermost axis is therefore a
//! contiguous *run* of `step+1` values whose `2^d` children are `2^d`
//! contiguous runs of the next grid (the innermost branch bit only
//! shifts a run's start by one). [`StepCtx::compute_slab`] exploits
//! this: instead of an odometer and `2^d` gathers per node, it performs
//! `2^d` AXPY-style passes over whole runs, which the compiler
//! vectorizes under the workspace's `target-cpu=x86-64-v3` pin. Every
//! node still accumulates its branches in exactly the same order as the
//! retained scalar oracle ([`StepCtx::compute_slab_scalar`]), so the
//! blocked kernel is bitwise identical to it — the same
//! equality-by-construction discipline the batched MC kernel follows.

// The slab kernels walk several strided arrays in lockstep; index loops
// are the clear form here.
#![allow(clippy::needless_range_loop)]

use crate::LatticeError;
use mdp_model::{ExerciseStyle, GbmMarket, MarketDelta, Product, TickOutcome};
use rayon::prelude::*;
use std::cell::RefCell;

/// Default cap on the final-step grid size.
pub const DEFAULT_NODE_BUDGET: u128 = 200_000_000;

/// A configured BEG multidimensional lattice pricer.
///
/// ```
/// use mdp_lattice::MultiLattice;
/// use mdp_model::{GbmMarket, Payoff, Product};
///
/// let market = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.5).unwrap();
/// let product = Product::american(Payoff::MinPut { strike: 110.0 }, 1.0);
/// let r = MultiLattice::new(64).price(&market, &product).unwrap();
/// assert!(r.price >= 10.0); // at least intrinsic
/// ```
#[derive(Debug, Clone)]
pub struct MultiLattice {
    /// Number of time steps N.
    pub steps: usize,
    /// Refuse grids whose final step exceeds this many nodes.
    pub node_budget: u128,
}

/// Outcome of a multidimensional lattice pricing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiLatticeResult {
    /// Present value.
    pub price: f64,
    /// Node updates performed across all steps (terminal evaluation
    /// counts as one update per node).
    pub nodes_processed: u64,
    /// Branch evaluations (`2^d` per interior node update) — the unit of
    /// compute-work the virtual-time model is calibrated in.
    pub branch_evals: u64,
}

/// Per-step context shared by all drivers: probabilities, strides,
/// discounting and spot tables.
pub struct StepCtx<'a> {
    /// Current step n (grid has `(n+1)^d` nodes).
    pub step: usize,
    dim: usize,
    disc: f64,
    probs: Vec<f64>,
    /// Child offset within the *inner* (axes ≥ 1) index space of the
    /// next grid, and whether the branch moves axis 0 up.
    branch_offsets: Vec<(usize, usize)>,
    /// Per-branch start offset into a two-row window of the next grid:
    /// `up0·row_next + off` — the base every run adds its outer offset
    /// to. Precomputed so the run loop carries no per-branch arithmetic.
    branch_starts: Vec<usize>,
    /// Inner strides of the next grid: axis `k ≥ 1` has stride
    /// `(step+2)^{d−1−k}`, stored at `inner_strides[k−1]` (innermost is
    /// stride 1 — the run axis).
    inner_strides: Vec<usize>,
    /// Row sizes: nodes per axis-0 row in the current and next grids.
    row_cur: usize,
    /// Nodes per axis-0 row of the next grid.
    pub row_next: usize,
    /// Per-axis spot ladders at this step: `spots[i][jᵢ]`.
    spot_tables: Vec<Vec<f64>>,
    product: &'a Product,
    american: bool,
}

/// Reusable per-worker workspace for the slab kernels: the outer-axis
/// odometer and the spot vector, hoisted out of the per-slab hot path so
/// a driver allocates them once instead of once per slab.
#[derive(Debug, Default, Clone)]
pub struct StepScratch {
    /// Odometer over the middle axes `1..=d−2` (the run axis `d−1` and
    /// the slab axis 0 are not part of it).
    idx: Vec<usize>,
    /// Spot vector handed to the payoff; axis `d−1` is rewritten per
    /// node from the innermost spot ladder.
    spot: Vec<f64>,
}

impl StepScratch {
    /// An empty workspace; sized on first use.
    pub fn new() -> Self {
        StepScratch::default()
    }

    /// Size for dimension `d` and reset the odometer.
    fn prepare(&mut self, d: usize) {
        self.idx.clear();
        self.idx.resize(d.saturating_sub(2), 0);
        self.spot.resize(d, 0.0);
    }
}

thread_local! {
    /// Per-thread scratch for the rayon driver (the shimmed rayon has no
    /// `for_each_init`, and scoped workers are fresh threads per step, so
    /// this amortises allocations across the slabs of one step).
    static TLS_SCRATCH: RefCell<StepScratch> = RefCell::new(StepScratch::new());
}

/// Per-axis spot ladders at one step: `ladders[i][jᵢ] = s0ᵢ·e^{σᵢ√Δt(2jᵢ−n)}`
/// — exactly the arithmetic [`StepCtx::new`] performs, exposed so a
/// [`LatticePlan`] can precompute every step's ladders once and share
/// them across executes (the tables depend on the market and horizon,
/// never the payoff).
pub fn spot_ladders(
    market: &GbmMarket,
    maturity: f64,
    steps: usize,
    step: usize,
) -> Vec<Vec<f64>> {
    let dt = maturity / steps as f64;
    let sqdt = dt.sqrt();
    (0..market.dim())
        .map(|i| {
            let s0 = market.spots()[i];
            let sig = market.vols()[i];
            (0..=step)
                .map(|j| s0 * (sig * sqdt * (2.0 * j as f64 - step as f64)).exp())
                .collect()
        })
        .collect()
}

impl<'a> StepCtx<'a> {
    /// Build the context for step `n` of an N-step, d-asset lattice.
    pub fn new(
        market: &GbmMarket,
        product: &'a Product,
        steps: usize,
        step: usize,
        probs: &[f64],
        disc: f64,
    ) -> Self {
        let spot_tables = spot_ladders(market, product.maturity, steps, step);
        Self::with_tables(market, product, step, probs, disc, spot_tables)
    }

    /// Build the context for step `n` from precomputed spot ladders
    /// ([`spot_ladders`]); the plan/execute path uses this to skip the
    /// per-step `exp` ladder rebuild.
    pub fn with_tables(
        market: &GbmMarket,
        product: &'a Product,
        step: usize,
        probs: &[f64],
        disc: f64,
        spot_tables: Vec<Vec<f64>>,
    ) -> Self {
        let d = market.dim();
        // Strides of the next grid (step+2 points per axis), axis 0
        // outermost; inner strides exclude axis 0.
        let next_pts = step + 2;
        let mut strides = vec![1usize; d];
        for i in (0..d - 1).rev() {
            strides[i] = strides[i + 1] * next_pts;
        }
        let row_next = strides[0];
        let row_cur = (step + 1).pow((d - 1) as u32);
        let branch_offsets: Vec<(usize, usize)> = (0..1usize << d)
            .map(|m| {
                let up0 = (m >> (d - 1)) & 1; // axis 0 uses the top bit
                let mut off = 0usize;
                for i in 1..d {
                    let bit = (m >> (d - 1 - i)) & 1;
                    off += bit * strides[i];
                }
                (up0, off)
            })
            .collect();
        let branch_starts = branch_offsets
            .iter()
            .map(|&(up0, off)| up0 * row_next + off)
            .collect();
        // Inner strides of the next grid (axis k≥1 has stride next_pts^{d-1-k}).
        let mut inner_strides = vec![1usize; d.saturating_sub(1)];
        if d >= 2 {
            for k in (0..d - 2).rev() {
                inner_strides[k] = inner_strides[k + 1] * next_pts;
            }
        }
        StepCtx {
            step,
            dim: d,
            disc,
            probs: probs.to_vec(),
            branch_offsets,
            branch_starts,
            inner_strides,
            row_cur,
            row_next,
            spot_tables,
            product,
            american: product.exercise == ExerciseStyle::American,
        }
    }

    /// Nodes per axis-0 row of the current grid.
    pub fn row_cur(&self) -> usize {
        self.row_cur
    }

    /// Walk the axis-0 row `j0` of the current grid as innermost-axis
    /// runs, calling `f(run, base, spot, inner_spots)` for each run:
    ///
    /// * `run` — the run's contiguous slice of `out` (length `step+1`,
    ///   or 1 when `d == 1`);
    /// * `base` — flat offset of the run's first child in the next
    ///   grid's inner index space (add a [`Self::branch_starts`] entry
    ///   to address one branch's children inside a two-row window);
    /// * `spot` — the spot vector with axes `0..d−1` set; the callee
    ///   writes axis `d−1` per node from
    /// * `inner_spots` — the innermost spot ladder aligned with `run`.
    ///
    /// Both the backward-induction kernel and the terminal evaluation
    /// iterate spots through this single walker, so the layout invariant
    /// lives in exactly one place.
    fn for_each_run<F>(&self, j0: usize, out: &mut [f64], scratch: &mut StepScratch, mut f: F)
    where
        F: FnMut(&mut [f64], usize, &mut [f64], &[f64]),
    {
        debug_assert_eq!(out.len(), self.row_cur);
        let d = self.dim;
        let pts = self.step + 1; // points per inner axis in current grid
        let (run_len, inner_spots): (usize, &[f64]) = if d == 1 {
            // No inner axes: the slab is a single node and the "run
            // spot" is axis 0 itself at this slab's index.
            (1, &self.spot_tables[0][j0..=j0])
        } else {
            (pts, &self.spot_tables[d - 1][..pts])
        };
        scratch.prepare(d);
        let StepScratch { idx, spot } = scratch;
        spot[0] = self.spot_tables[0][j0];
        for k in 1..d.saturating_sub(1) {
            spot[k] = self.spot_tables[k][0];
        }
        // `base` advances incrementally with the middle-axis odometer.
        let mut base = 0usize;
        for run in out.chunks_mut(run_len) {
            f(run, base, spot, inner_spots);
            for k in (0..idx.len()).rev() {
                idx[k] += 1;
                if idx[k] < pts {
                    base += self.inner_strides[k];
                    spot[k + 1] = self.spot_tables[k + 1][idx[k]];
                    break;
                }
                idx[k] = 0;
                base -= (pts - 1) * self.inner_strides[k];
                spot[k + 1] = self.spot_tables[k + 1][0];
            }
        }
    }

    /// Compute one axis-0 row `j0` of the current grid (the blocked,
    /// run-contiguous kernel every driver uses).
    ///
    /// `next_two_rows` must hold rows `j0` and `j0+1` of the next grid
    /// concatenated (`2·row_next` values); `out` receives `row_cur`
    /// values. Bitwise identical to [`Self::compute_slab_scalar`]: each
    /// node accumulates its `2^d` branches in the same order, only
    /// restructured into contiguous per-branch passes over whole runs.
    pub fn compute_slab(
        &self,
        j0: usize,
        next_two_rows: &[f64],
        out: &mut [f64],
        scratch: &mut StepScratch,
    ) {
        debug_assert_eq!(next_two_rows.len(), 2 * self.row_next);
        if self.dim == 1 {
            // Degenerate runs of one node: the blocked per-branch passes
            // only add memory traffic over the register-resident scalar
            // walk (a measured ~0.9× at d=1), so dispatch to the oracle —
            // the same arithmetic, hence the same bits.
            return self.compute_slab_scalar(j0, next_two_rows, out);
        }
        self.for_each_run(j0, out, scratch, |run, base, spot, inner_spots| {
            run.fill(0.0);
            for (p, start) in self.probs.iter().zip(&self.branch_starts) {
                let src = &next_two_rows[start + base..][..run.len()];
                for (o, s) in run.iter_mut().zip(src) {
                    *o += p * s;
                }
            }
            let last = spot.len() - 1;
            if self.american {
                for (o, s_in) in run.iter_mut().zip(inner_spots) {
                    spot[last] = *s_in;
                    *o = (self.disc * *o).max(self.product.payoff.eval(spot));
                }
            } else {
                for o in run.iter_mut() {
                    *o *= self.disc;
                }
            }
        });
    }

    /// The scalar per-node oracle the blocked kernel is validated and
    /// benchmarked against: an odometer walk with `2^d` gathers per
    /// node, exactly the pre-blocking implementation. Retained for the
    /// equivalence tests and the t4b kernel experiment; drivers use
    /// [`Self::compute_slab`].
    pub fn compute_slab_scalar(&self, j0: usize, next_two_rows: &[f64], out: &mut [f64]) {
        debug_assert_eq!(next_two_rows.len(), 2 * self.row_next);
        debug_assert_eq!(out.len(), self.row_cur);
        let d = self.dim;
        let pts = self.step + 1; // points per inner axis in current grid
        // Odometer over the inner axes; `base` tracks the flat index of
        // the (j1..j_{d-1}) corner in the next grid's inner space.
        let mut idx = vec![0usize; d.saturating_sub(1)];
        let mut spot = vec![0.0; d];
        spot[0] = self.spot_tables[0][j0];
        for s in 1..d {
            spot[s] = self.spot_tables[s][0];
        }
        for o in out.iter_mut() {
            let base: usize = idx.iter().zip(&self.inner_strides).map(|(j, s)| j * s).sum();
            let mut acc = 0.0;
            for (p, (up0, off)) in self.probs.iter().zip(&self.branch_offsets) {
                acc += p * next_two_rows[up0 * self.row_next + base + off];
            }
            let mut v = self.disc * acc;
            if self.american {
                v = v.max(self.product.payoff.eval(&spot));
            }
            *o = v;
            // Advance the odometer (innermost axis fastest).
            for k in (0..idx.len()).rev() {
                idx[k] += 1;
                if idx[k] < pts {
                    spot[k + 1] = self.spot_tables[k + 1][idx[k]];
                    break;
                }
                idx[k] = 0;
                spot[k + 1] = self.spot_tables[k + 1][0];
            }
        }
    }

    /// Evaluate the terminal payoff layer for axis-0 row `j0` (used at
    /// step N where there is no continuation value). Shares the
    /// run-contiguous spot iteration with [`Self::compute_slab`].
    pub fn eval_terminal_slab(&self, j0: usize, out: &mut [f64], scratch: &mut StepScratch) {
        self.for_each_run(j0, out, scratch, |run, _base, spot, inner_spots| {
            let last = spot.len() - 1;
            for (o, s_in) in run.iter_mut().zip(inner_spots) {
                spot[last] = *s_in;
                *o = self.product.payoff.eval(spot);
            }
        });
    }
}

/// BEG branch probabilities for a market and time step; validated to lie
/// in `[0, 1]`.
pub fn branch_probabilities(market: &GbmMarket, dt: f64) -> Result<Vec<f64>, LatticeError> {
    let d = market.dim();
    let sqdt = dt.sqrt();
    let corr = market.correlation();
    let mut probs = Vec::with_capacity(1 << d);
    for m in 0..1usize << d {
        // δᵢ from bit (d-1-i): axis 0 is the top bit, matching StepCtx.
        let delta = |i: usize| -> f64 {
            if (m >> (d - 1 - i)) & 1 == 1 {
                1.0
            } else {
                -1.0
            }
        };
        let mut s = 1.0;
        for i in 0..d {
            for j in (i + 1)..d {
                s += delta(i) * delta(j) * corr[(i, j)];
            }
            s += sqdt * delta(i) * market.log_drift(i) / market.vols()[i];
        }
        let p = s / (1 << d) as f64;
        if !(0.0..=1.0).contains(&p) {
            return Err(LatticeError::NegativeProbability { prob: p, branch: m });
        }
        probs.push(p);
    }
    Ok(probs)
}

impl MultiLattice {
    /// Lattice with `steps` steps and the default node budget.
    pub fn new(steps: usize) -> Self {
        MultiLattice {
            steps,
            node_budget: DEFAULT_NODE_BUDGET,
        }
    }

    /// Total node count of an N-step, d-asset lattice:
    /// `Σ_{n=0}^{N} (n+1)^d`.
    pub fn total_nodes(steps: usize, dim: usize) -> u128 {
        (0..=steps as u128).map(|n| (n + 1).pow(dim as u32)).sum()
    }

    /// Build the payoff-independent plan for this lattice on a market
    /// with horizon `maturity`: branch probabilities, per-step discount
    /// and every step's spot ladders, computed once and shared by all
    /// executes.
    pub fn plan(&self, market: &GbmMarket, maturity: f64) -> Result<LatticePlan, LatticeError> {
        if self.steps == 0 {
            return Err(LatticeError::ZeroSteps);
        }
        let final_nodes = ((self.steps + 1) as u128).pow(market.dim() as u32);
        if final_nodes > self.node_budget {
            return Err(LatticeError::TooManyNodes {
                nodes: final_nodes,
                budget: self.node_budget,
            });
        }
        if !maturity.is_finite() || maturity <= 0.0 {
            return Err(LatticeError::Model(mdp_model::ModelError::InvalidParameter {
                what: "maturity",
                value: maturity,
            }));
        }
        let dt = maturity / self.steps as f64;
        let probs = branch_probabilities(market, dt)?;
        let disc = (-market.rate() * dt).exp();
        let ladders = (0..=self.steps)
            .map(|step| spot_ladders(market, maturity, self.steps, step))
            .collect();
        Ok(LatticePlan {
            lat: self.clone(),
            market: market.clone(),
            maturity,
            probs,
            disc,
            ladders,
            cancel: mdp_math::CancelToken::never(),
        })
    }

    /// Sequential backward induction.
    pub fn price(
        &self,
        market: &GbmMarket,
        product: &Product,
    ) -> Result<MultiLatticeResult, LatticeError> {
        self.run(market, product, false)
    }

    /// Shared-memory parallel backward induction (rayon), parallelising
    /// over axis-0 slabs within each time step. Bit-identical to
    /// [`MultiLattice::price`].
    pub fn price_rayon(
        &self,
        market: &GbmMarket,
        product: &Product,
    ) -> Result<MultiLatticeResult, LatticeError> {
        self.run(market, product, true)
    }

    fn run(
        &self,
        market: &GbmMarket,
        product: &Product,
        parallel: bool,
    ) -> Result<MultiLatticeResult, LatticeError> {
        product.validate_for(market)?;
        if product.payoff.is_path_dependent() {
            return Err(LatticeError::Model(mdp_model::ModelError::Unsupported {
                engine: "BEG lattice",
                why: "path-dependent payoff".into(),
            }));
        }
        let plan = self.plan(market, product.maturity)?;
        plan.execute(product, parallel, &mut LatticeScratch::default())
    }
}

/// Planned state of a BEG lattice run: branch probabilities, per-step
/// discount factor and every step's spot ladders — all independent of
/// the payoff. Build once with [`MultiLattice::plan`], execute per
/// product with [`LatticePlan::execute`]; results are bitwise-identical
/// to the one-shot [`MultiLattice::price`] /
/// [`MultiLattice::price_rayon`].
#[derive(Debug, Clone)]
pub struct LatticePlan {
    lat: MultiLattice,
    market: GbmMarket,
    maturity: f64,
    probs: Vec<f64>,
    disc: f64,
    /// `ladders[step][axis][jᵢ]` — per-step spot ladders.
    ladders: Vec<Vec<Vec<f64>>>,
    /// Cooperative cancellation, polled once per time step. Inert by
    /// default; the serving layer installs a live token per request.
    cancel: mdp_math::CancelToken,
}

/// Reusable buffers for [`LatticePlan::execute`]: the two ping-pong grid
/// layers and the per-slab odometer/spot workspace.
#[derive(Debug, Default, Clone)]
pub struct LatticeScratch {
    values: Vec<f64>,
    spare: Vec<f64>,
    step: StepScratch,
}

impl LatticePlan {
    /// Horizon the plan was built for.
    pub fn maturity(&self) -> f64 {
        self.maturity
    }

    /// Steps of the underlying lattice.
    pub fn steps(&self) -> usize {
        self.lat.steps
    }

    /// Install a cooperative cancel token, polled once per backward
    /// time step; a tripped token aborts the run with
    /// [`LatticeError::Cancelled`]. Runs that complete are
    /// bitwise-identical to runs without a token.
    pub fn set_cancel(&mut self, cancel: mdp_math::CancelToken) {
        self.cancel = cancel;
    }

    /// The market snapshot the plan currently prices on (kept in sync
    /// by [`LatticePlan::apply_tick`]).
    pub fn market(&self) -> &GbmMarket {
        &self.market
    }

    /// Absorb one market tick, rebuilding only the invalidated tables:
    ///
    /// * **Spot** — the branch probabilities (drift/vol/correlation
    ///   only) and the per-step discount survive; only the spot ladders
    ///   are recomputed.
    /// * **Vol** — probabilities and ladders are rebuilt; the discount
    ///   survives.
    /// * **Rate** — probabilities and the discount are rebuilt; the
    ///   ladders survive.
    /// * **Correlation** — only the probabilities are rebuilt.
    ///
    /// Each rebuilt table goes through the same arithmetic as
    /// [`MultiLattice::plan`], so the patched plan is bitwise-equal to
    /// a fresh plan on the ticked market. A tick that drives a branch
    /// probability out of `[0, 1]` fails without modifying the plan.
    pub fn apply_tick(&mut self, delta: &MarketDelta) -> Result<TickOutcome, LatticeError> {
        let market = self.market.apply_delta(delta).map_err(LatticeError::Model)?;
        let dt = self.maturity / self.lat.steps as f64;
        match delta {
            MarketDelta::Spot { .. } => {
                self.ladders = (0..=self.lat.steps)
                    .map(|step| spot_ladders(&market, self.maturity, self.lat.steps, step))
                    .collect();
            }
            MarketDelta::Vol { .. } => {
                let probs = branch_probabilities(&market, dt)?;
                self.ladders = (0..=self.lat.steps)
                    .map(|step| spot_ladders(&market, self.maturity, self.lat.steps, step))
                    .collect();
                self.probs = probs;
            }
            MarketDelta::Rate { .. } => {
                self.probs = branch_probabilities(&market, dt)?;
                self.disc = (-market.rate() * dt).exp();
            }
            MarketDelta::Correlation { .. } => {
                self.probs = branch_probabilities(&market, dt)?;
            }
        }
        self.market = market;
        Ok(TickOutcome::Patched)
    }

    /// Run planned backward induction for one product. Bitwise-identical
    /// to the corresponding one-shot price on the same inputs.
    pub fn execute(
        &self,
        product: &Product,
        parallel: bool,
        scratch: &mut LatticeScratch,
    ) -> Result<MultiLatticeResult, LatticeError> {
        product.validate_for(&self.market)?;
        if product.payoff.is_path_dependent() {
            return Err(LatticeError::Model(mdp_model::ModelError::Unsupported {
                engine: "BEG lattice",
                why: "path-dependent payoff".into(),
            }));
        }
        if product.maturity != self.maturity {
            return Err(LatticeError::Model(mdp_model::ModelError::Unsupported {
                engine: "BEG lattice",
                why: format!(
                    "plan built for maturity {}, product has {}",
                    self.maturity, product.maturity
                ),
            }));
        }
        let market = &self.market;
        let (probs, disc) = (&self.probs, self.disc);
        let d = market.dim();
        let n = self.lat.steps;

        // Two ping-pong grid buffers sized once at the two largest
        // layers (terminal (n+1)^d and its predecessor n^d); every step
        // writes into a prefix of the spare buffer and swaps.
        let term_ctx =
            StepCtx::with_tables(market, product, n, probs, disc, self.ladders[n].clone());
        let term_row = term_ctx.row_cur();
        let LatticeScratch {
            values,
            spare,
            step: step_scratch,
        } = scratch;
        values.clear();
        values.resize((n + 1) * term_row, 0.0);
        spare.clear();
        spare.resize((n as u128).pow(d as u32) as usize, 0.0);
        if parallel {
            values
                .par_chunks_mut(term_row)
                .enumerate()
                .for_each(|(j0, out)| {
                    TLS_SCRATCH
                        .with(|s| term_ctx.eval_terminal_slab(j0, out, &mut s.borrow_mut()))
                });
        } else {
            for (j0, out) in values.chunks_mut(term_row).enumerate() {
                term_ctx.eval_terminal_slab(j0, out, step_scratch);
            }
        }
        let mut nodes = (values.len()) as u64;
        let mut branches = 0u64;

        for step in (0..n).rev() {
            if self.cancel.is_cancelled() {
                return Err(LatticeError::Cancelled);
            }
            let ctx =
                StepCtx::with_tables(market, product, step, probs, disc, self.ladders[step].clone());
            let row_cur = ctx.row_cur();
            let row_next = ctx.row_next;
            let len = (step + 1) * row_cur;
            let new_values = &mut spare[..len];
            if parallel {
                let values_ref = &*values;
                new_values
                    .par_chunks_mut(row_cur)
                    .enumerate()
                    .for_each(|(j0, out)| {
                        let next = &values_ref[j0 * row_next..(j0 + 2) * row_next];
                        TLS_SCRATCH
                            .with(|s| ctx.compute_slab(j0, next, out, &mut s.borrow_mut()))
                    });
            } else {
                for (j0, out) in new_values.chunks_mut(row_cur).enumerate() {
                    let next = &values[j0 * row_next..(j0 + 2) * row_next];
                    ctx.compute_slab(j0, next, out, step_scratch);
                }
            }
            nodes += len as u64;
            branches += len as u64 * (1u64 << d);
            std::mem::swap(values, spare);
        }
        Ok(MultiLatticeResult {
            price: values[0],
            nodes_processed: nodes,
            branch_evals: branches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_math::approx_eq;
    use mdp_model::analytic;
    use mdp_model::Payoff;

    fn call1(strike: f64) -> Product {
        Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike,
            },
            1.0,
        )
    }

    #[test]
    fn probabilities_sum_to_one() {
        for d in 1..=4 {
            let m = GbmMarket::symmetric(d, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
            let probs = branch_probabilities(&m, 0.01).unwrap();
            assert_eq!(probs.len(), 1 << d);
            let s: f64 = probs.iter().sum();
            assert!(approx_eq(s, 1.0, 1e-12), "d={d}: {s}");
        }
    }

    #[test]
    fn apply_tick_bitwise_equals_fresh_plan() {
        let lat = MultiLattice::new(40);
        let m0 = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let p = Product::american(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let mut corr = mdp_math::linalg::Matrix::identity(2);
        corr[(0, 1)] = 0.1;
        corr[(1, 0)] = 0.1;
        let ticks = [
            MarketDelta::Spot {
                asset: 0,
                spot: 102.5,
            },
            MarketDelta::Rate { rate: 0.04 },
            MarketDelta::Vol {
                asset: 1,
                vol: 0.25,
            },
            MarketDelta::Correlation { correlation: corr },
        ];
        let mut ticked = lat.plan(&m0, 1.0).unwrap();
        let mut mk = m0;
        for delta in &ticks {
            assert_eq!(ticked.apply_tick(delta).unwrap(), TickOutcome::Patched);
            mk = mk.apply_delta(delta).unwrap();
            let fresh = lat.plan(&mk, 1.0).unwrap();
            let pt = ticked
                .execute(&p, false, &mut LatticeScratch::default())
                .unwrap();
            let pf = fresh
                .execute(&p, false, &mut LatticeScratch::default())
                .unwrap();
            assert_eq!(pt.price.to_bits(), pf.price.to_bits(), "{delta:?}");
        }
    }

    #[test]
    fn one_dimension_matches_crr_shape() {
        // BEG with d=1 is a drift-in-probability binomial lattice; it must
        // converge to the same Black–Scholes limit.
        let m = GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap();
        let exact = analytic::black_scholes_call(100.0, 100.0, 0.05, 0.0, 0.2, 1.0);
        let r = MultiLattice::new(1000).price(&m, &call1(100.0)).unwrap();
        assert!(approx_eq(r.price, exact, 2e-3), "{} vs {exact}", r.price);
    }

    #[test]
    fn two_assets_geometric_converges_to_closed_form() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.5).unwrap();
        let p = Product::european(Payoff::GeometricCall { strike: 100.0 }, 1.0);
        let exact = analytic::geometric_basket_call(&m, &[0.5, 0.5], 100.0, 1.0);
        let mut prev = f64::INFINITY;
        for n in [25usize, 50, 100, 200] {
            let r = MultiLattice::new(n).price(&m, &p).unwrap();
            let err = (r.price - exact).abs();
            assert!(err < prev * 1.05, "n={n}: {err} vs prev {prev}");
            prev = err;
        }
        assert!(prev < 0.02, "error at n=200: {prev}");
    }

    #[test]
    fn two_assets_max_call_converges_to_stulz() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.5).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let exact =
            analytic::max_call_two_assets(100.0, 0.0, 0.2, 100.0, 0.0, 0.2, 0.5, 0.05, 100.0, 1.0);
        let r = MultiLattice::new(150).price(&m, &p).unwrap();
        assert!(approx_eq(r.price, exact, 5e-3), "{} vs {exact}", r.price);
    }

    #[test]
    fn two_assets_exchange_converges_to_margrabe() {
        let m = GbmMarket::symmetric(2, 100.0, 0.25, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::Exchange, 1.0);
        let exact = analytic::margrabe_exchange(100.0, 0.0, 0.25, 100.0, 0.0, 0.25, 0.3, 1.0);
        let r = MultiLattice::new(128).price(&m, &p).unwrap();
        assert!(approx_eq(r.price, exact, 5e-3), "{} vs {exact}", r.price);
    }

    #[test]
    fn three_assets_geometric_converges() {
        let m = GbmMarket::symmetric(3, 100.0, 0.3, 0.0, 0.05, 0.25).unwrap();
        let p = Product::european(Payoff::GeometricCall { strike: 95.0 }, 1.0);
        let exact = analytic::geometric_basket_call(&m, &Product::equal_weights(3), 95.0, 1.0);
        let r = MultiLattice::new(60).price(&m, &p).unwrap();
        assert!(approx_eq(r.price, exact, 1e-2), "{} vs {exact}", r.price);
    }

    #[test]
    fn american_at_least_european() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let pay = Payoff::MinPut { strike: 110.0 };
        let lat = MultiLattice::new(64);
        let eu = lat
            .price(&m, &Product::european(pay.clone(), 1.0))
            .unwrap()
            .price;
        let am = lat.price(&m, &Product::american(pay, 1.0)).unwrap().price;
        assert!(am >= eu - 1e-12, "{am} vs {eu}");
        assert!(am >= 10.0 - 1e-12, "at least intrinsic");
    }

    /// Sweep every slab of one backward step with both kernels and
    /// demand bitwise-equal rows.
    fn assert_kernels_agree(d: usize, steps: usize, product: &Product) {
        let m = GbmMarket::symmetric(d, 100.0, 0.25, 0.01, 0.04, 0.2).unwrap();
        let dt = product.maturity / steps as f64;
        let probs = branch_probabilities(&m, dt).unwrap();
        let disc = (-m.rate() * dt).exp();
        let step = steps - 1; // largest interior step
        let next_ctx = StepCtx::new(&m, product, steps, steps, &probs, disc);
        let ctx = StepCtx::new(&m, product, steps, step, &probs, disc);
        let mut scratch = StepScratch::new();
        let row_next = ctx.row_next;
        let mut next = vec![0.0; (steps + 1) * row_next];
        for (j0, out) in next.chunks_mut(row_next).enumerate() {
            next_ctx.eval_terminal_slab(j0, out, &mut scratch);
        }
        let row_cur = ctx.row_cur();
        let mut blocked = vec![0.0; row_cur];
        let mut scalar = vec![0.0; row_cur];
        for j0 in 0..=step {
            let window = &next[j0 * row_next..(j0 + 2) * row_next];
            ctx.compute_slab(j0, window, &mut blocked, &mut scratch);
            ctx.compute_slab_scalar(j0, window, &mut scalar);
            for (k, (b, s)) in blocked.iter().zip(&scalar).enumerate() {
                assert_eq!(
                    b.to_bits(),
                    s.to_bits(),
                    "d={d} j0={j0} node {k}: {b} vs {s}"
                );
            }
        }
    }

    #[test]
    fn blocked_kernel_matches_scalar_oracle_european() {
        for (d, steps) in [(1usize, 9usize), (2, 8), (3, 6), (4, 5)] {
            assert_kernels_agree(
                d,
                steps,
                &Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0),
            );
        }
    }

    #[test]
    fn blocked_kernel_matches_scalar_oracle_american() {
        for (d, steps) in [(1usize, 9usize), (2, 8), (3, 6), (4, 5)] {
            assert_kernels_agree(
                d,
                steps,
                &Product::american(Payoff::MinPut { strike: 110.0 }, 1.0),
            );
        }
    }

    #[test]
    fn rayon_matches_sequential_bitwise() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.01, 0.04, 0.3).unwrap();
        let p = Product::american(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let lat = MultiLattice::new(24);
        let a = lat.price(&m, &p).unwrap();
        let b = lat.price_rayon(&m, &p).unwrap();
        assert_eq!(a.price.to_bits(), b.price.to_bits());
        assert_eq!(a.nodes_processed, b.nodes_processed);
    }

    #[test]
    fn node_counting() {
        // d=2, N=2: 1 + 4 + 9 = 14 nodes.
        assert_eq!(MultiLattice::total_nodes(2, 2), 14);
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let p = Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0);
        let r = MultiLattice::new(2).price(&m, &p).unwrap();
        assert_eq!(r.nodes_processed, 14);
        assert_eq!(r.branch_evals, (1 + 4) * 4);
    }

    #[test]
    fn negative_probability_detected() {
        // Alternating-sign branches make Σδδρ = −2ρ for d=4; ρ=0.6 ⇒ −1.2.
        let m = GbmMarket::symmetric(4, 100.0, 0.2, 0.0, 0.05, 0.6).unwrap();
        let e = MultiLattice::new(16).price(
            &m,
            &Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0),
        );
        assert!(matches!(e, Err(LatticeError::NegativeProbability { .. })));
    }

    #[test]
    fn node_budget_enforced() {
        let m = GbmMarket::symmetric(4, 100.0, 0.2, 0.0, 0.05, 0.2).unwrap();
        let mut lat = MultiLattice::new(400);
        lat.node_budget = 1_000_000;
        let e = lat.price(
            &m,
            &Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0),
        );
        assert!(matches!(e, Err(LatticeError::TooManyNodes { .. })));
    }

    #[test]
    fn asian_rejected() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let e = MultiLattice::new(8).price(
            &m,
            &Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0),
        );
        assert!(matches!(e, Err(LatticeError::Model(_))));
    }

    #[test]
    fn plan_execute_bitwise_matches_one_shot() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.3).unwrap();
        let lat = MultiLattice::new(24);
        let plan = lat.plan(&m, 1.0).unwrap();
        let mut scratch = LatticeScratch::default();
        for p in [
            Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0),
            Product::american(Payoff::MinPut { strike: 110.0 }, 1.0),
        ] {
            let one_shot = lat.price(&m, &p).unwrap();
            for parallel in [false, true] {
                let a = plan.execute(&p, parallel, &mut scratch).unwrap();
                let b = plan.execute(&p, parallel, &mut scratch).unwrap();
                assert_eq!(a.price.to_bits(), one_shot.price.to_bits());
                assert_eq!(b.price.to_bits(), one_shot.price.to_bits());
                assert_eq!(a.nodes_processed, one_shot.nodes_processed);
                assert_eq!(a.branch_evals, one_shot.branch_evals);
            }
        }
        let short = Product::european(Payoff::MaxCall { strike: 100.0 }, 0.5);
        assert!(plan.execute(&short, false, &mut scratch).is_err());
    }

    #[test]
    fn price_decreases_in_strike() {
        let m = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.5).unwrap();
        let lat = MultiLattice::new(40);
        let mut prev = f64::INFINITY;
        for k in [90.0, 100.0, 110.0, 120.0] {
            let p = Product::european(Payoff::MaxCall { strike: k }, 1.0);
            let v = lat.price(&m, &p).unwrap().price;
            assert!(v < prev, "k={k}: {v} !< {prev}");
            prev = v;
        }
    }
}
