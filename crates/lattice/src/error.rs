//! Lattice-engine errors.

use mdp_model::ModelError;
use std::fmt;

/// Failures specific to lattice construction and pricing.
#[derive(Debug, Clone, PartialEq)]
pub enum LatticeError {
    /// A branch probability left `[0, 1]` — the time step is too coarse
    /// for the given volatilities/correlations (a known limitation of the
    /// BEG construction). Refine `steps` or reduce `|ρ|`.
    NegativeProbability {
        /// The offending probability.
        prob: f64,
        /// Branch index (bitmask of per-asset up-moves).
        branch: usize,
    },
    /// Zero time steps requested.
    ZeroSteps,
    /// The grid would exceed the node budget (guards against `(N+1)^d`
    /// blow-ups that would OOM rather than price).
    TooManyNodes {
        /// Nodes the request implies at the final step.
        nodes: u128,
        /// The configured budget.
        budget: u128,
    },
    /// Model-layer validation failed.
    Model(ModelError),
    /// The run's cooperative cancel token tripped (deadline expired or
    /// the caller abandoned the request) before backward induction
    /// finished.
    Cancelled,
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::NegativeProbability { prob, branch } => write!(
                f,
                "branch {branch} probability {prob:.4} outside [0,1]; refine the time grid"
            ),
            LatticeError::ZeroSteps => write!(f, "lattice needs at least one time step"),
            LatticeError::TooManyNodes { nodes, budget } => {
                write!(
                    f,
                    "final-step grid of {nodes} nodes exceeds budget {budget}"
                )
            }
            LatticeError::Model(e) => write!(f, "{e}"),
            LatticeError::Cancelled => {
                write!(f, "lattice backward induction cancelled before completion")
            }
        }
    }
}

impl std::error::Error for LatticeError {}

impl From<ModelError> for LatticeError {
    fn from(e: ModelError) -> Self {
        LatticeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e = LatticeError::NegativeProbability {
            prob: -0.01,
            branch: 3,
        };
        assert!(e.to_string().contains("branch 3"));
        let m: LatticeError = ModelError::InvalidParameter {
            what: "maturity",
            value: -1.0,
        }
        .into();
        assert!(matches!(m, LatticeError::Model(_)));
    }
}
