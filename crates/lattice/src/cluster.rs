//! Distributed-memory backward induction over `mdp_cluster`.
//!
//! The lattice is decomposed along axis 0 (asset 1's up-move count): at
//! step `n` rank `r` owns a set of axis-0 rows of the `(n+1)^d` grid.
//! Computing row `j0` of step `n` needs rows `j0` and `j0+1` of step
//! `n+1`, so each time step performs a **halo exchange**: every rank
//! ships the boundary rows its neighbours will need, then sweeps its own
//! rows with the exact same slab kernel the sequential engine uses.
//!
//! The halo exchange is **overlapped with computation**: every rank
//! posts its boundary-row sends first, sweeps the slabs whose two child
//! rows are both local while those messages are in flight, and only
//! then blocks on the receives and sweeps the boundary slabs. Under the
//! virtual-time model this ordering lets interior compute hide the
//! modelled message latency exactly as a non-blocking MPI exchange
//! would (slabs are independent within a step, so the values — and the
//! bitwise equality with the sequential driver — are unchanged).
//!
//! Two decompositions are provided (ablation A2):
//!
//! * [`Decomposition::Block`] — contiguous balanced blocks; halo traffic
//!   is O(1) rows per rank per step.
//! * [`Decomposition::Cyclic`] — round-robin rows in blocks of `b`; with
//!   `b = 1` nearly *every* row's children live on another rank,
//!   demonstrating why granularity matters on a latency-bound machine.
//!
//! Because ownership is a pure function of `(step, p, rank)`, every rank
//! derives the full communication pattern locally — no coordination
//! messages, exactly like the static decompositions of the era's MPI
//! codes.

use crate::multidim::{branch_probabilities, StepCtx, StepScratch};
use crate::LatticeError;
use mdp_cluster::checkpoint::broadcast_active;
use mdp_cluster::{
    partition, run_spmd_ft, CheckpointStore, CollectiveEngine, Communicator, FaultPlan, Machine,
    Supervisor, ThreadComm, TimeModel,
};
use mdp_model::{GbmMarket, Product};

/// Tag for halo-exchange messages (FIFO per pair keeps steps aligned).
const T_HALO: u32 = 17;

/// How lattice rows are assigned to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decomposition {
    /// Contiguous balanced blocks (the sensible default).
    Block,
    /// Block-cyclic with the given block size.
    Cyclic(usize),
}

impl Decomposition {
    /// Rows of a `rows`-row grid owned by `rank` (sorted ascending).
    fn owned(self, rows: usize, p: usize, rank: usize) -> Vec<usize> {
        match self {
            Decomposition::Block => {
                let (lo, hi) = partition::block_range(rows, p, rank);
                (lo..hi).collect()
            }
            Decomposition::Cyclic(b) => partition::cyclic_indices(rows, p, rank, b),
        }
    }
}

/// Modelled cost of one node update: `2^d` fused multiply-adds through
/// the branch table plus bookkeeping.
fn node_work(d: usize) -> f64 {
    (1u64 << d) as f64 + 4.0
}

/// Per-run outcome of the distributed lattice.
#[derive(Debug, Clone)]
pub struct ClusterLatticeOutcome {
    /// Present value (identical on every rank; cross-checked).
    pub price: f64,
    /// Aggregated virtual-time model of the run.
    pub time: TimeModel,
}

/// Price a product on `p` ranks under `machine`, decomposing the lattice
/// rows by `decomp`.
///
/// The result is bit-identical to [`crate::MultiLattice::price`] — the parallel
/// algorithm only re-partitions the same floating-point operations in
/// the same order within each row.
pub fn price_cluster(
    market: &GbmMarket,
    product: &Product,
    steps: usize,
    p: usize,
    machine: Machine,
    decomp: Decomposition,
) -> Result<ClusterLatticeOutcome, LatticeError> {
    // Validate once up front so parameter errors surface as LatticeError
    // rather than rank panics.
    product.validate_for(market)?;
    if steps == 0 {
        return Err(LatticeError::ZeroSteps);
    }
    if product.payoff.is_path_dependent() {
        return Err(LatticeError::Model(mdp_model::ModelError::Unsupported {
            engine: "BEG cluster lattice",
            why: "path-dependent payoff".into(),
        }));
    }
    let dt = product.maturity / steps as f64;
    let probs = branch_probabilities(market, dt)?;
    let disc = (-market.rate() * dt).exp();
    let d = market.dim();

    let results = mdp_cluster::run_spmd(p, machine, |comm| {
        run_rank(comm, market, product, steps, &probs, disc, d, decomp)
    })
    .map_err(|e| {
        LatticeError::Model(mdp_model::ModelError::Unsupported {
            engine: "BEG cluster lattice",
            why: e.to_string(),
        })
    })?;

    let price = results[0].value;
    debug_assert!(
        results.iter().all(|r| r.value.to_bits() == price.to_bits()),
        "broadcast must make the price identical on every rank"
    );
    let time = TimeModel::from_results(&results);
    Ok(ClusterLatticeOutcome { price, time })
}

/// The SPMD body: one rank's share of the backward induction.
#[allow(clippy::too_many_arguments)]
fn run_rank<C: Communicator>(
    comm: &mut C,
    market: &GbmMarket,
    product: &Product,
    steps: usize,
    probs: &[f64],
    disc: f64,
    d: usize,
    decomp: Decomposition,
) -> f64 {
    let p = comm.size();
    let rank = comm.rank();
    let n = steps;

    // Per-rank buffers, allocated once and reused every time step.
    let mut scratch = StepScratch::new();
    let mut window: Vec<f64> = Vec::new();
    let mut two_rows: Vec<f64> = Vec::new();
    let mut send_buf: Vec<f64> = Vec::new();
    let mut spare: Vec<f64> = Vec::new();

    // Terminal layer: evaluate owned rows.
    let term_ctx = StepCtx::new(market, product, n, n, probs, disc);
    let row_len_term = term_ctx.row_cur();
    let mut owned_next: Vec<usize> = decomp.owned(n + 1, p, rank);
    let mut values: Vec<f64> = vec![0.0; owned_next.len() * row_len_term];
    for (slot, &j0) in owned_next.iter().enumerate() {
        term_ctx.eval_terminal_slab(
            j0,
            &mut values[slot * row_len_term..(slot + 1) * row_len_term],
            &mut scratch,
        );
    }
    comm.compute_units(values.len() as f64 * (d as f64 + 2.0));

    let mut row_len_next = row_len_term;
    for step in (0..n).rev() {
        let ctx = StepCtx::new(market, product, n, step, probs, disc);
        let row_cur = ctx.row_cur();
        let row_next = ctx.row_next;
        debug_assert_eq!(row_next, row_len_next);
        let next_rows_total = step + 2;

        let owned_cur = decomp.owned(step + 1, p, rank);
        // Rows of the next grid this rank needs: children of owned rows.
        let needed = needed_rows(&owned_cur, next_rows_total);

        // --- Post the halo sends -------------------------------------------
        // For each candidate peer, the intersection of their needs with
        // my owned rows. Under Block decomposition the candidates are an
        // O(1) arithmetic range; Cyclic scans all peers. Sends are
        // asynchronous: they are in flight while the interior sweep
        // below runs.
        let send_peers = match decomp {
            Decomposition::Block => {
                let lo_n = owned_next.first().copied().unwrap_or(0);
                let hi_n = owned_next.last().map_or(0, |&x| x + 1);
                send_candidates(lo_n, hi_n, step + 1, p)
            }
            Decomposition::Cyclic(_) => 0..p,
        };
        for r in send_peers {
            if r == rank {
                continue;
            }
            let their_cur = decomp.owned(step + 1, p, r);
            let their_needed = needed_rows(&their_cur, next_rows_total);
            let send_rows = intersect(&their_needed, &owned_next);
            if send_rows.is_empty() {
                continue;
            }
            send_buf.clear();
            send_buf.reserve(send_rows.len() * row_next);
            for &row in &send_rows {
                let slot = slot_of(&owned_next, row);
                send_buf.extend_from_slice(&values[slot * row_next..(slot + 1) * row_next]);
            }
            comm.send(r, T_HALO, &send_buf);
        }

        // Stage the locally owned part of the needed window.
        window.clear();
        window.resize(needed.len() * row_next, 0.0);
        for (wslot, &row) in needed.iter().enumerate() {
            if let Ok(slot) = owned_next.binary_search(&row) {
                window[wslot * row_next..(wslot + 1) * row_next]
                    .copy_from_slice(&values[slot * row_next..(slot + 1) * row_next]);
            }
        }

        // --- Interior sweep (overlapped with the halo exchange) ------------
        // Rows whose two child rows are both local can be computed
        // before touching the network; charging their work ahead of the
        // receives is what lets the virtual-time model hide message
        // latency behind computation.
        spare.clear();
        spare.resize(owned_cur.len() * row_cur, 0.0);
        two_rows.clear();
        two_rows.resize(2 * row_next, 0.0);
        let child_is_local = |row: usize| owned_next.binary_search(&row).is_ok();
        let sweep = |j0: usize,
                         slot: usize,
                         window: &[f64],
                         spare: &mut [f64],
                         two_rows: &mut [f64],
                         scratch: &mut StepScratch| {
            let w0 = slot_of(&needed, j0);
            let w1 = slot_of(&needed, j0 + 1);
            // The two rows are contiguous in the window for block
            // decomposition; copy defensively for the general case.
            two_rows[..row_next].copy_from_slice(&window[w0 * row_next..(w0 + 1) * row_next]);
            two_rows[row_next..].copy_from_slice(&window[w1 * row_next..(w1 + 1) * row_next]);
            ctx.compute_slab(
                j0,
                two_rows,
                &mut spare[slot * row_cur..(slot + 1) * row_cur],
                scratch,
            );
        };
        let mut interior_nodes = 0u64;
        for (slot, &j0) in owned_cur.iter().enumerate() {
            if child_is_local(j0) && child_is_local(j0 + 1) {
                sweep(j0, slot, &window, &mut spare, &mut two_rows, &mut scratch);
                interior_nodes += row_cur as u64;
            }
        }
        comm.compute_units(interior_nodes as f64 * node_work(d));

        // --- Complete the halo exchange ------------------------------------
        let recv_peers = match decomp {
            Decomposition::Block => recv_candidates(&needed, step + 2, p),
            Decomposition::Cyclic(_) => 0..p,
        };
        for r in recv_peers {
            if r == rank {
                continue;
            }
            let their_owned_next = decomp.owned(step + 2, p, r);
            let recv_rows = intersect(&needed, &their_owned_next);
            if recv_rows.is_empty() {
                continue;
            }
            let buf = comm.recv(r, T_HALO);
            debug_assert_eq!(buf.len(), recv_rows.len() * row_next);
            for (k, &row) in recv_rows.iter().enumerate() {
                let wslot = slot_of(&needed, row);
                window[wslot * row_next..(wslot + 1) * row_next]
                    .copy_from_slice(&buf[k * row_next..(k + 1) * row_next]);
            }
        }

        // --- Boundary sweep (rows that needed remote children) -------------
        let mut boundary_nodes = 0u64;
        for (slot, &j0) in owned_cur.iter().enumerate() {
            if !(child_is_local(j0) && child_is_local(j0 + 1)) {
                sweep(j0, slot, &window, &mut spare, &mut two_rows, &mut scratch);
                boundary_nodes += row_cur as u64;
            }
        }
        comm.compute_units(boundary_nodes as f64 * node_work(d));

        std::mem::swap(&mut values, &mut spare);
        owned_next = owned_cur;
        row_len_next = row_cur;
    }

    // Step 0 has one row, one node; its owner broadcasts the price
    // through the topology-aware engine (bitwise-identical to the flat
    // broadcast — only the schedule depends on the machine).
    let root = owner_of_row0(decomp, p);
    let engine = CollectiveEngine::for_machine(comm.machine(), p);
    let mut price = [if rank == root { values[0] } else { 0.0 }];
    engine.broadcast(comm, root, &mut price);
    price[0]
}

/// Per-run outcome of the fault-tolerant distributed lattice.
#[derive(Debug, Clone)]
pub struct ClusterLatticeFtOutcome {
    /// Present value — bit-identical to the fault-free run.
    pub price: f64,
    /// Aggregated virtual-time model, crashed ranks' time included.
    pub time: TimeModel,
    /// Injected crashes that fired, as `(rank, boundary)` pairs.
    pub crashed: Vec<(usize, usize)>,
}

/// Fault-tolerant variant of [`price_cluster`]: runs under a
/// [`FaultPlan`], writing a coordinated checkpoint of every rank's
/// owned rows each `ckpt_interval` time steps. When a rank crashes,
/// survivors agree on the death, repartition the checkpointed layer
/// over the shrunken rank set and replay from the last checkpoint; the
/// final price is bit-identical to the fault-free run (same per-row
/// arithmetic, only ownership changes). Block decomposition only —
/// recovery repartitions with the same block arithmetic used at start.
pub fn price_cluster_ft(
    market: &GbmMarket,
    product: &Product,
    steps: usize,
    p: usize,
    machine: Machine,
    plan: FaultPlan,
    ckpt_interval: usize,
) -> Result<ClusterLatticeFtOutcome, LatticeError> {
    product.validate_for(market)?;
    if steps == 0 {
        return Err(LatticeError::ZeroSteps);
    }
    if product.payoff.is_path_dependent() {
        return Err(LatticeError::Model(mdp_model::ModelError::Unsupported {
            engine: "BEG cluster lattice",
            why: "path-dependent payoff".into(),
        }));
    }
    let dt = product.maturity / steps as f64;
    let probs = branch_probabilities(market, dt)?;
    let disc = (-market.rate() * dt).exp();
    let d = market.dim();
    let store = CheckpointStore::new();

    let outcome = run_spmd_ft(p, machine, plan, |comm| {
        run_rank_ft(
            comm,
            market,
            product,
            steps,
            &probs,
            disc,
            d,
            &store,
            ckpt_interval,
        )
    })
    .map_err(|e| {
        LatticeError::Model(mdp_model::ModelError::Unsupported {
            engine: "BEG cluster lattice",
            why: e.to_string(),
        })
    })?;

    let price = outcome.survivors[0].value;
    debug_assert!(
        outcome
            .survivors
            .iter()
            .all(|r| r.value.to_bits() == price.to_bits()),
        "broadcast must make the price identical on every survivor"
    );
    let mut time = TimeModel::from_results(&outcome.survivors);
    for c in &outcome.crashed {
        time.absorb_crashed(c.time, &c.stats);
    }
    Ok(ClusterLatticeFtOutcome {
        price,
        time,
        crashed: outcome.crashed.iter().map(|c| (c.rank, c.step)).collect(),
    })
}

/// The fault-tolerant SPMD body. Boundary `k` precedes lattice step
/// `n-1-k`, so `k` counts completed steps and grows monotonically —
/// the ascending index [`Supervisor::boundary`] expects. The step body
/// is the same halo-exchange sweep as [`run_rank`], generalised from
/// "all `p` ranks" to the supervisor's active list.
#[allow(clippy::too_many_arguments)]
fn run_rank_ft(
    comm: &mut ThreadComm,
    market: &GbmMarket,
    product: &Product,
    steps: usize,
    probs: &[f64],
    disc: f64,
    d: usize,
    store: &CheckpointStore,
    interval: usize,
) -> f64 {
    let n = steps;
    let rank = comm.rank();
    let mut sup = Supervisor::new(comm, interval, store);

    let mut scratch = StepScratch::new();
    let mut window: Vec<f64> = Vec::new();
    let mut two_rows: Vec<f64> = Vec::new();
    let mut send_buf: Vec<f64> = Vec::new();
    let mut spare: Vec<f64> = Vec::new();

    // Owned rows of a `rows`-row layer for dense index `i` of an
    // `a`-rank active set.
    let owned_of = |rows: usize, a: usize, i: usize| -> Vec<usize> {
        let (lo, hi) = partition::block_range(rows, a, i);
        (lo..hi).collect()
    };

    // Terminal layer over the (initially full) active set.
    let term_ctx = StepCtx::new(market, product, n, n, probs, disc);
    let mut row_len_next = term_ctx.row_cur();
    let mut owned_next = owned_of(n + 1, sup.active().len(), sup.dense_index(rank));
    let mut values: Vec<f64> = vec![0.0; owned_next.len() * row_len_next];
    for (slot, &j0) in owned_next.iter().enumerate() {
        term_ctx.eval_terminal_slab(
            j0,
            &mut values[slot * row_len_next..(slot + 1) * row_len_next],
            &mut scratch,
        );
    }
    comm.compute_units(values.len() as f64 * (d as f64 + 2.0));

    let mut k = 0usize; // completed lattice steps == boundary index
    while k < n {
        let snap_lo = owned_next.first().copied().unwrap_or(0);
        if let Some(rec) = sup.boundary(comm, k, || (snap_lo, values.clone())) {
            // Roll back: rebuild the checkpointed layer from the pooled
            // records and repartition it over the survivors.
            let k0 = rec.from_step.expect("boundary 0 always checkpoints");
            let layer_rows = n - k0 + 1;
            let layer_ctx = StepCtx::new(market, product, n, n - k0, probs, disc);
            let row_len = layer_ctx.row_cur();
            let mut full = vec![0.0; layer_rows * row_len];
            for (_, r) in &rec.records {
                full[r.lo * row_len..r.lo * row_len + r.data.len()].copy_from_slice(&r.data);
            }
            owned_next = owned_of(layer_rows, sup.active().len(), sup.dense_index(rank));
            let lo = owned_next.first().copied().unwrap_or(0);
            values = full[lo * row_len..lo * row_len + owned_next.len() * row_len].to_vec();
            row_len_next = row_len;
            k = k0;
            continue; // re-enter boundary k0: it checkpoints a fresh era
        }

        let step = n - 1 - k;
        let active = sup.active().to_vec();
        let a = active.len();
        let ctx = StepCtx::new(market, product, n, step, probs, disc);
        let row_cur = ctx.row_cur();
        let row_next = ctx.row_next;
        debug_assert_eq!(row_next, row_len_next);
        let next_rows_total = step + 2;

        let owned_cur = owned_of(step + 1, a, sup.dense_index(rank));
        let needed = needed_rows(&owned_cur, next_rows_total);

        // --- Post the halo sends (peers drawn from the active list) --------
        // The active set always uses Block decomposition, so the
        // candidate dense indices are an O(1) arithmetic range.
        let send_peers = {
            let lo_n = owned_next.first().copied().unwrap_or(0);
            let hi_n = owned_next.last().map_or(0, |&x| x + 1);
            send_candidates(lo_n, hi_n, step + 1, a)
        };
        for j in send_peers {
            let r = active[j];
            if r == rank {
                continue;
            }
            let their_cur = owned_of(step + 1, a, j);
            let their_needed = needed_rows(&their_cur, next_rows_total);
            let send_rows = intersect(&their_needed, &owned_next);
            if send_rows.is_empty() {
                continue;
            }
            send_buf.clear();
            send_buf.reserve(send_rows.len() * row_next);
            for &row in &send_rows {
                let slot = slot_of(&owned_next, row);
                send_buf.extend_from_slice(&values[slot * row_next..(slot + 1) * row_next]);
            }
            comm.send(r, T_HALO, &send_buf);
        }

        // Stage the locally owned part of the needed window.
        window.clear();
        window.resize(needed.len() * row_next, 0.0);
        for (wslot, &row) in needed.iter().enumerate() {
            if let Ok(slot) = owned_next.binary_search(&row) {
                window[wslot * row_next..(wslot + 1) * row_next]
                    .copy_from_slice(&values[slot * row_next..(slot + 1) * row_next]);
            }
        }

        // --- Interior sweep (overlapped with the halo exchange) ------------
        spare.clear();
        spare.resize(owned_cur.len() * row_cur, 0.0);
        two_rows.clear();
        two_rows.resize(2 * row_next, 0.0);
        let child_is_local = |row: usize| owned_next.binary_search(&row).is_ok();
        let sweep = |j0: usize,
                     slot: usize,
                     window: &[f64],
                     spare: &mut [f64],
                     two_rows: &mut [f64],
                     scratch: &mut StepScratch| {
            let w0 = slot_of(&needed, j0);
            let w1 = slot_of(&needed, j0 + 1);
            two_rows[..row_next].copy_from_slice(&window[w0 * row_next..(w0 + 1) * row_next]);
            two_rows[row_next..].copy_from_slice(&window[w1 * row_next..(w1 + 1) * row_next]);
            ctx.compute_slab(
                j0,
                two_rows,
                &mut spare[slot * row_cur..(slot + 1) * row_cur],
                scratch,
            );
        };
        let mut interior_nodes = 0u64;
        for (slot, &j0) in owned_cur.iter().enumerate() {
            if child_is_local(j0) && child_is_local(j0 + 1) {
                sweep(j0, slot, &window, &mut spare, &mut two_rows, &mut scratch);
                interior_nodes += row_cur as u64;
            }
        }
        comm.compute_units(interior_nodes as f64 * node_work(d));

        // --- Complete the halo exchange ------------------------------------
        for j in recv_candidates(&needed, step + 2, a) {
            let r = active[j];
            if r == rank {
                continue;
            }
            let their_owned_next = owned_of(step + 2, a, j);
            let recv_rows = intersect(&needed, &their_owned_next);
            if recv_rows.is_empty() {
                continue;
            }
            let buf = comm.recv(r, T_HALO);
            debug_assert_eq!(buf.len(), recv_rows.len() * row_next);
            for (m, &row) in recv_rows.iter().enumerate() {
                let wslot = slot_of(&needed, row);
                window[wslot * row_next..(wslot + 1) * row_next]
                    .copy_from_slice(&buf[m * row_next..(m + 1) * row_next]);
            }
        }

        // --- Boundary sweep ------------------------------------------------
        let mut boundary_nodes = 0u64;
        for (slot, &j0) in owned_cur.iter().enumerate() {
            if !(child_is_local(j0) && child_is_local(j0 + 1)) {
                sweep(j0, slot, &window, &mut spare, &mut two_rows, &mut scratch);
                boundary_nodes += row_cur as u64;
            }
        }
        comm.compute_units(boundary_nodes as f64 * node_work(d));

        std::mem::swap(&mut values, &mut spare);
        owned_next = owned_cur;
        row_len_next = row_cur;
        k += 1;
    }

    // Step 0 has one row, owned by the first active rank.
    let active = sup.active().to_vec();
    let root = active[0];
    let price = if rank == root {
        vec![values[0]]
    } else {
        vec![0.0]
    };
    broadcast_active(comm, &active, root, &price)[0]
}

/// The rank owning row 0 of a 1-row grid under the decomposition.
fn owner_of_row0(decomp: Decomposition, p: usize) -> usize {
    match decomp {
        // Block ownership is pure arithmetic — no O(p) scan.
        Decomposition::Block => partition::block_owner(1, p, 0),
        Decomposition::Cyclic(_) => (0..p)
            .find(|&r| decomp.owned(1, p, r).first() == Some(&0))
            .expect("some rank owns row 0"),
    }
}

/// Candidate peer range for the halo *send* scan: under Block
/// decomposition the peers whose current-step rows have children inside
/// my `[lo_n, hi_n)` slice of the next grid are exactly the owners of
/// current rows `[lo_n-1, hi_n-1]` — an O(1) contiguous rank range
/// instead of the O(p) all-peers scan (which made each step O(p²·rows)
/// across ranks at P = 1024).
fn send_candidates(lo_n: usize, hi_n: usize, rows_cur: usize, p: usize) -> std::ops::Range<usize> {
    if lo_n >= hi_n || rows_cur == 0 {
        return 0..0;
    }
    let first = lo_n.saturating_sub(1).min(rows_cur - 1);
    let last = (hi_n - 1).min(rows_cur - 1);
    let d_min = partition::block_owner(rows_cur, p, first);
    let d_max = partition::block_owner(rows_cur, p, last);
    d_min..d_max + 1
}

/// Candidate peer range for the halo *recv* scan: the owners of the
/// next-grid rows `[needed_first, needed_last]` this rank must read.
fn recv_candidates(needed: &[usize], rows_next: usize, p: usize) -> std::ops::Range<usize> {
    match (needed.first(), needed.last()) {
        (Some(&first), Some(&last)) => {
            let d_min = partition::block_owner(rows_next, p, first);
            let d_max = partition::block_owner(rows_next, p, last);
            d_min..d_max + 1
        }
        _ => 0..0,
    }
}

/// Sorted unique child rows `{j, j+1}` of the owned rows, clipped.
fn needed_rows(owned_cur: &[usize], next_total: usize) -> Vec<usize> {
    let mut v = Vec::with_capacity(owned_cur.len() + 1);
    for &j in owned_cur {
        for cand in [j, j + 1] {
            if cand < next_total && v.last() != Some(&cand) {
                // owned_cur is sorted, so candidates arrive non-decreasing
                // except possible duplicate of previous j+1 == current j.
                if v.last().is_none_or(|&l| l < cand) {
                    v.push(cand);
                }
            }
        }
    }
    v
}

/// Intersection of two sorted slices.
fn intersect(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Position of `row` in a sorted slice (must exist).
fn slot_of(rows: &[usize], row: usize) -> usize {
    rows.binary_search(&row).expect("row present")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multidim::MultiLattice;
    use mdp_model::Payoff;

    fn market2() -> GbmMarket {
        GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.5).unwrap()
    }

    fn maxcall() -> Product {
        Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0)
    }

    #[test]
    fn matches_sequential_bitwise_block() {
        let m = market2();
        let prod = maxcall();
        let seq = MultiLattice::new(32).price(&m, &prod).unwrap();
        for p in [1usize, 2, 3, 4, 7] {
            let par =
                price_cluster(&m, &prod, 32, p, Machine::ideal(), Decomposition::Block).unwrap();
            assert_eq!(
                par.price.to_bits(),
                seq.price.to_bits(),
                "p={p}: {} vs {}",
                par.price,
                seq.price
            );
        }
    }

    #[test]
    fn matches_sequential_cyclic() {
        let m = market2();
        let prod = maxcall();
        let seq = MultiLattice::new(24).price(&m, &prod).unwrap();
        for b in [1usize, 2, 4] {
            let par = price_cluster(&m, &prod, 24, 3, Machine::ideal(), Decomposition::Cyclic(b))
                .unwrap();
            assert_eq!(par.price.to_bits(), seq.price.to_bits(), "b={b}");
        }
    }

    #[test]
    fn american_three_assets_matches() {
        let m = GbmMarket::symmetric(3, 100.0, 0.25, 0.02, 0.05, 0.3).unwrap();
        let prod = Product::american(Payoff::MinPut { strike: 105.0 }, 1.0);
        let seq = MultiLattice::new(16).price(&m, &prod).unwrap();
        let par = price_cluster(
            &m,
            &prod,
            16,
            4,
            Machine::cluster2002(),
            Decomposition::Block,
        )
        .unwrap();
        assert_eq!(par.price.to_bits(), seq.price.to_bits());
    }

    #[test]
    fn more_ranks_than_rows_still_works() {
        let m = market2();
        let prod = maxcall();
        let seq = MultiLattice::new(4).price(&m, &prod).unwrap();
        let par = price_cluster(&m, &prod, 4, 8, Machine::ideal(), Decomposition::Block).unwrap();
        assert_eq!(par.price.to_bits(), seq.price.to_bits());
    }

    #[test]
    fn single_rank_time_has_no_comm() {
        let m = market2();
        let out = price_cluster(
            &m,
            &maxcall(),
            16,
            1,
            Machine::cluster2002(),
            Decomposition::Block,
        )
        .unwrap();
        assert_eq!(out.time.total_msgs, 0);
        assert!(out.time.mean_comm == 0.0);
        assert!(out.time.makespan > 0.0);
    }

    #[test]
    fn virtual_speedup_increases_then_saturates() {
        // d=2: N=64 is latency-bound at p=4 on the modelled cluster while
        // N=256 has enough work per step to scale — the strong-scaling
        // shape of experiment F1.
        let m = market2();
        let prod = maxcall();
        let speedup = |n: usize, p: usize| {
            let t1 = price_cluster(
                &m,
                &prod,
                n,
                1,
                Machine::cluster2002(),
                Decomposition::Block,
            )
            .unwrap()
            .time
            .makespan;
            let tp = price_cluster(
                &m,
                &prod,
                n,
                p,
                Machine::cluster2002(),
                Decomposition::Block,
            )
            .unwrap()
            .time
            .makespan;
            t1 / tp
        };
        let s_small = speedup(64, 4);
        let s_large = speedup(256, 4);
        assert!(s_large > 2.5, "large problem should scale: {s_large}");
        assert!(s_large <= 4.0 + 1e-9, "cannot exceed ideal: {s_large}");
        assert!(
            s_large > s_small,
            "bigger problems scale better: {s_large} vs {s_small}"
        );
    }

    #[test]
    fn cyclic_one_costs_more_communication_than_block() {
        let m = market2();
        let prod = maxcall();
        let block = price_cluster(
            &m,
            &prod,
            48,
            4,
            Machine::cluster2002(),
            Decomposition::Block,
        )
        .unwrap();
        let cyclic = price_cluster(
            &m,
            &prod,
            48,
            4,
            Machine::cluster2002(),
            Decomposition::Cyclic(1),
        )
        .unwrap();
        // Cyclic(1) batches its halo rows into one message per neighbour,
        // so the message count is similar — but nearly every row needs a
        // remote child, so the *bytes* moved explode.
        assert!(
            cyclic.time.total_bytes > block.time.total_bytes * 2,
            "cyclic {} vs block {} bytes",
            cyclic.time.total_bytes,
            block.time.total_bytes
        );
        assert!(cyclic.time.makespan > block.time.makespan);
    }

    #[test]
    fn ideal_machine_still_charges_compute() {
        // On the ideal machine transfers are free; the only "comm" time
        // left is waiting on load imbalance, which must be a sliver of
        // the compute time for a balanced block decomposition.
        let m = market2();
        let out = price_cluster(
            &m,
            &maxcall(),
            16,
            2,
            Machine::ideal(),
            Decomposition::Block,
        )
        .unwrap();
        assert!(out.time.mean_compute > 0.0);
        assert!(
            out.time.mean_comm < 0.1 * out.time.mean_compute,
            "comm {} vs compute {}",
            out.time.mean_comm,
            out.time.mean_compute
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let m = market2();
        assert!(matches!(
            price_cluster(&m, &maxcall(), 0, 2, Machine::ideal(), Decomposition::Block),
            Err(LatticeError::ZeroSteps)
        ));
        let asian = Product::european(Payoff::AsianCall { strike: 1.0 }, 1.0);
        assert!(price_cluster(&m, &asian, 8, 2, Machine::ideal(), Decomposition::Block).is_err());
    }

    #[test]
    fn ft_without_faults_matches_plain_run_bitwise() {
        let m = market2();
        let prod = maxcall();
        let plain =
            price_cluster(&m, &prod, 32, 4, Machine::cluster2002(), Decomposition::Block).unwrap();
        let ft = price_cluster_ft(
            &m,
            &prod,
            32,
            4,
            Machine::cluster2002(),
            mdp_cluster::FaultPlan::new(1),
            8,
        )
        .unwrap();
        assert_eq!(ft.price.to_bits(), plain.price.to_bits());
        assert!(ft.crashed.is_empty());
        assert!(ft.time.total_ckpt_time > 0.0, "checkpoints were written");
    }

    #[test]
    fn recovers_bit_identically_from_a_mid_run_crash() {
        let m = market2();
        let prod = maxcall();
        let seq = crate::multidim::MultiLattice::new(32).price(&m, &prod).unwrap();
        for crash_at in [1usize, 10, 29] {
            let plan = mdp_cluster::FaultPlan::new(7).with_crash(1, crash_at);
            let ft =
                price_cluster_ft(&m, &prod, 32, 4, Machine::cluster2002(), plan, 4).unwrap();
            assert_eq!(
                ft.price.to_bits(),
                seq.price.to_bits(),
                "crash at boundary {crash_at} must not change the price"
            );
            assert_eq!(ft.crashed, vec![(1, crash_at)]);
        }
    }

    #[test]
    fn recovers_from_two_staggered_crashes() {
        let m = market2();
        let prod = maxcall();
        let seq = crate::multidim::MultiLattice::new(24).price(&m, &prod).unwrap();
        let plan = mdp_cluster::FaultPlan::new(3)
            .with_crash(3, 5)
            .with_crash(0, 15);
        let ft = price_cluster_ft(&m, &prod, 24, 4, Machine::cluster2002(), plan, 3).unwrap();
        assert_eq!(ft.price.to_bits(), seq.price.to_bits());
        assert_eq!(ft.crashed.len(), 2);
    }

    #[test]
    fn all_ranks_crashed_is_a_clean_error() {
        let m = market2();
        let prod = maxcall();
        let plan = mdp_cluster::FaultPlan::new(0)
            .with_crash(0, 2)
            .with_crash(1, 2);
        let err = price_cluster_ft(&m, &prod, 16, 2, Machine::ideal(), plan, 4).unwrap_err();
        assert!(
            err.to_string().contains("injected crash"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn helper_functions() {
        assert_eq!(needed_rows(&[0, 1, 2], 5), vec![0, 1, 2, 3]);
        assert_eq!(needed_rows(&[4], 5), vec![4]);
        assert_eq!(needed_rows(&[0, 2], 5), vec![0, 1, 2, 3]);
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(owner_of_row0(Decomposition::Block, 4), 0);
        assert_eq!(owner_of_row0(Decomposition::Cyclic(2), 4), 0);
    }

    #[test]
    fn halo_candidate_ranges_cover_every_real_peer() {
        // The arithmetic candidate ranges must contain every peer the
        // exhaustive O(p) scan would have talked to (missing one would
        // deadlock a halo exchange).
        for p in [1usize, 2, 3, 5, 8, 13] {
            for step in 0..16usize {
                let rows_cur = step + 1;
                let rows_next = step + 2;
                for rank in 0..p {
                    let (lo_n, hi_n) = partition::block_range(rows_next, p, rank);
                    let owned_next: Vec<usize> = (lo_n..hi_n).collect();
                    let sc = send_candidates(lo_n, hi_n, rows_cur, p);
                    let (cl, ch) = partition::block_range(rows_cur, p, rank);
                    let owned_cur: Vec<usize> = (cl..ch).collect();
                    let needed = needed_rows(&owned_cur, rows_next);
                    let rc = recv_candidates(&needed, rows_next, p);
                    for r in 0..p {
                        if r == rank {
                            continue;
                        }
                        let (tl, th) = partition::block_range(rows_cur, p, r);
                        let their_cur: Vec<usize> = (tl..th).collect();
                        let their_needed = needed_rows(&their_cur, rows_next);
                        if !intersect(&their_needed, &owned_next).is_empty() {
                            assert!(sc.contains(&r), "send p={p} step={step} {rank}->{r}");
                        }
                        let (nl, nh) = partition::block_range(rows_next, p, r);
                        let theirs_next: Vec<usize> = (nl..nh).collect();
                        if !intersect(&needed, &theirs_next).is_empty() {
                            assert!(rc.contains(&r), "recv p={p} step={step} {rank}<-{r}");
                        }
                    }
                }
            }
        }
    }
}
