//! # mdp-lattice — binomial/trinomial lattice pricers, sequential and parallel
//!
//! Lattice (tree) methods were the workhorse of early-2000s option pricing
//! and the prime target of the parallelisation literature this workspace
//! reproduces. The crate provides:
//!
//! * [`binomial`] — 1-D binomial lattices in the Cox–Ross–Rubinstein,
//!   Jarrow–Rudd and Tian parameterisations, European and American.
//! * [`trinomial`] — Boyle's 1-D trinomial lattice.
//! * [`multidim`] — the Boyle–Evnine–Gibbs (BEG) d-dimensional recombining
//!   lattice: every asset moves up/down each step, giving `2^d` branches
//!   and `(n+1)^d` nodes at step `n`. Sequential and shared-memory
//!   (rayon) backward induction.
//! * [`cluster`] — the distributed-memory algorithm: block decomposition
//!   of the lattice along the first asset axis with one-row halo
//!   exchanges per time step, written against `mdp_cluster::Communicator`
//!   exactly like the MPI original; the virtual-time model turns its
//!   communication structure into the speedup curves of experiments
//!   T2/F1/F2.
//!
//! The curse of dimensionality is real and intentional: `(N+1)^d` node
//! grids make d ≥ 4 impractical, which is the comparison point against
//! Monte Carlo that experiment T5 reproduces.

pub mod binomial;
pub mod cluster;
pub mod error;
pub mod multidim;
pub mod trinomial;

pub use binomial::{BinomialKind, BinomialLattice};
pub use error::LatticeError;
pub use multidim::{LatticePlan, LatticeScratch, MultiLattice, MultiLatticeResult};
pub use trinomial::TrinomialLattice;
