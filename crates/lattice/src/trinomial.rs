//! Boyle's (1986) one-dimensional trinomial lattice.
//!
//! Three branches per step (up/middle/down) with a stretch parameter
//! `λ ≥ 1`: `u = e^{λσ√Δt}`. The extra degree of freedom buys smoother
//! convergence than the binomial lattice at ~1.5× the node count — the
//! classic accuracy-per-work trade-off the method-comparison experiment
//! (T5) includes.

use crate::LatticeError;
use mdp_model::{ExerciseStyle, GbmMarket, Product};

/// A configured 1-D trinomial lattice pricer.
#[derive(Debug, Clone)]
pub struct TrinomialLattice {
    /// Number of time steps.
    pub steps: usize,
    /// Stretch parameter λ (√2 is Boyle's recommendation; must be > 1 for
    /// positive probabilities at moderate drifts).
    pub lambda: f64,
}

/// Outcome of a trinomial pricing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrinomialResult {
    /// Present value.
    pub price: f64,
    /// Node updates performed.
    pub nodes_processed: u64,
}

impl TrinomialLattice {
    /// Lattice with Boyle's λ = √2.
    pub fn new(steps: usize) -> Self {
        TrinomialLattice {
            steps,
            lambda: std::f64::consts::SQRT_2,
        }
    }

    /// Price a single-asset, non-path-dependent product.
    pub fn price(
        &self,
        market: &GbmMarket,
        product: &Product,
    ) -> Result<TrinomialResult, LatticeError> {
        product.validate_for(market)?;
        if market.dim() != 1 {
            return Err(LatticeError::Model(
                mdp_model::ModelError::DimensionMismatch {
                    product: 1,
                    market: market.dim(),
                },
            ));
        }
        if product.payoff.is_path_dependent() {
            return Err(LatticeError::Model(mdp_model::ModelError::Unsupported {
                engine: "trinomial lattice",
                why: "path-dependent payoff".into(),
            }));
        }
        let n = self.steps;
        if n == 0 {
            return Err(LatticeError::ZeroSteps);
        }
        let t = product.maturity;
        let dt = t / n as f64;
        let sigma = market.vols()[0];
        let b = market.rate() - market.dividends()[0];
        let nu = b - 0.5 * sigma * sigma;
        let dx = self.lambda * sigma * dt.sqrt();
        // Kamrad–Ritchken probabilities.
        let l2 = self.lambda * self.lambda;
        let pu = 1.0 / (2.0 * l2) + nu * dt.sqrt() / (2.0 * self.lambda * sigma);
        let pd = 1.0 / (2.0 * l2) - nu * dt.sqrt() / (2.0 * self.lambda * sigma);
        let pm = 1.0 - pu - pd;
        for (i, p) in [pu, pm, pd].iter().enumerate() {
            if !(0.0..=1.0).contains(p) {
                return Err(LatticeError::NegativeProbability {
                    prob: *p,
                    branch: i,
                });
            }
        }
        let disc = (-market.rate() * dt).exp();
        let s0 = market.spots()[0];
        let american = product.exercise == ExerciseStyle::American;

        // Spot ladder S(j) = s0·e^{j·dx}, j ∈ [−n, n], computed once:
        // layer `step` occupies ladder indices `n−step ..= n+step`, so
        // the backward sweep re-reads slices of this table instead of
        // exponentiating per node (same `j as f64 * dx` expression, so
        // values are bitwise identical to the recompute-per-node form).
        let width = 2 * n + 1;
        let spots: Vec<f64> = (0..width)
            .map(|idx| {
                let j = idx as i64 - n as i64;
                s0 * (j as f64 * dx).exp()
            })
            .collect();

        // Terminal layer: 2n+1 nodes.
        let mut values = vec![0.0; width];
        let mut spot = [0.0; 1];
        for (idx, v) in values.iter_mut().enumerate() {
            spot[0] = spots[idx];
            *v = product.payoff.eval(&spot);
        }
        let mut nodes = width as u64;

        for step in (0..n).rev() {
            let w = 2 * step + 1;
            let ladder = &spots[n - step..];
            for idx in 0..w {
                // Children in the step+1 layer are centred: idx+0,1,2.
                let cont = disc * (pd * values[idx] + pm * values[idx + 1] + pu * values[idx + 2]);
                values[idx] = if american {
                    spot[0] = ladder[idx];
                    cont.max(product.payoff.eval(&spot))
                } else {
                    cont
                };
            }
            nodes += w as u64;
        }
        Ok(TrinomialResult {
            price: values[0],
            nodes_processed: nodes,
        })
    }

    /// Total nodes: Σ (2k+1) = (N+1)².
    pub fn node_count(&self) -> u64 {
        let n = self.steps as u64;
        (n + 1) * (n + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_math::approx_eq;
    use mdp_model::analytic::black_scholes_call;
    use mdp_model::Payoff;

    fn market() -> GbmMarket {
        GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap()
    }

    fn call(strike: f64) -> Product {
        Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike,
            },
            1.0,
        )
    }

    #[test]
    fn converges_to_black_scholes() {
        let m = market();
        let exact = black_scholes_call(100.0, 100.0, 0.05, 0.0, 0.2, 1.0);
        let r = TrinomialLattice::new(800).price(&m, &call(100.0)).unwrap();
        assert!(approx_eq(r.price, exact, 2e-3), "{} vs {exact}", r.price);
    }

    #[test]
    fn more_accurate_than_binomial_at_equal_steps() {
        use crate::binomial::BinomialLattice;
        let m = market();
        let exact = black_scholes_call(100.0, 95.0, 0.05, 0.0, 0.2, 1.0);
        let n = 101; // odd step counts avoid the binomial's oscillation sweet spot
        let tri = TrinomialLattice::new(n).price(&m, &call(95.0)).unwrap();
        let bin = BinomialLattice::crr(n).price(&m, &call(95.0)).unwrap();
        let err_tri = (tri.price - exact).abs();
        let err_bin = (bin.price - exact).abs();
        assert!(
            err_tri < err_bin,
            "trinomial {err_tri} should beat binomial {err_bin}"
        );
    }

    #[test]
    fn american_put_above_intrinsic_and_european() {
        let m = market();
        let put = Payoff::BasketPut {
            weights: vec![1.0],
            strike: 120.0,
        };
        let lat = TrinomialLattice::new(400);
        let eu = lat
            .price(&m, &Product::european(put.clone(), 1.0))
            .unwrap()
            .price;
        let am = lat.price(&m, &Product::american(put, 1.0)).unwrap().price;
        assert!(am >= 20.0 - 1e-12, "at least intrinsic: {am}");
        assert!(am > eu);
    }

    #[test]
    fn node_count_formula() {
        assert_eq!(TrinomialLattice::new(3).node_count(), 16);
    }

    #[test]
    fn extreme_drift_yields_probability_error() {
        // Huge rate with tiny vol and λ=√2 pushes pu above 1.
        let m = GbmMarket::single(100.0, 0.01, 0.0, 2.0).unwrap();
        let e = TrinomialLattice::new(4).price(&m, &call(100.0));
        assert!(matches!(e, Err(LatticeError::NegativeProbability { .. })));
    }

    #[test]
    fn zero_steps_rejected() {
        assert!(matches!(
            TrinomialLattice::new(0).price(&market(), &call(1.0)),
            Err(LatticeError::ZeroSteps)
        ));
    }
}
