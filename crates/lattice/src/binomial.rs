//! One-dimensional binomial lattices.
//!
//! Three classical parameterisations, all converging to Black–Scholes at
//! rate O(1/N):
//!
//! * **CRR** (Cox–Ross–Rubinstein 1979): `u = e^{σ√Δt}`, `d = 1/u`,
//!   risk-neutral `p` from the one-step forward.
//! * **Jarrow–Rudd** (1983): equal probabilities `p = 1/2`, drift-matched
//!   moves.
//! * **Tian** (1993): moment-matched moves.
//!
//! The binomial lattice is the `d = 1` corner of the evaluation: the
//! sequential baseline whose measured per-node cost calibrates the
//! virtual-time model, and the sanity anchor for the multidimensional
//! engine (BEG with `d = 1` *is* CRR).

use crate::LatticeError;
use mdp_model::{ExerciseStyle, GbmMarket, Product};

/// Binomial lattice parameterisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinomialKind {
    /// Cox–Ross–Rubinstein.
    CoxRossRubinstein,
    /// Jarrow–Rudd equal-probability.
    JarrowRudd,
    /// Tian moment matching.
    Tian,
}

/// A configured 1-D binomial lattice pricer.
#[derive(Debug, Clone)]
pub struct BinomialLattice {
    /// Parameterisation.
    pub kind: BinomialKind,
    /// Number of time steps N.
    pub steps: usize,
}

/// Outcome of a binomial pricing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinomialResult {
    /// Present value.
    pub price: f64,
    /// Total node updates performed (for work/time accounting).
    pub nodes_processed: u64,
}

impl BinomialLattice {
    /// CRR lattice with `steps` steps.
    pub fn crr(steps: usize) -> Self {
        BinomialLattice {
            kind: BinomialKind::CoxRossRubinstein,
            steps,
        }
    }

    /// Up/down factors and up-probability for a market (1 asset).
    fn parameters(&self, market: &GbmMarket, t: f64) -> Result<(f64, f64, f64), LatticeError> {
        let n = self.steps;
        if n == 0 {
            return Err(LatticeError::ZeroSteps);
        }
        let dt = t / n as f64;
        let sigma = market.vols()[0];
        let b = market.rate() - market.dividends()[0]; // cost of carry
        let (u, d, p) = match self.kind {
            BinomialKind::CoxRossRubinstein => {
                let u = (sigma * dt.sqrt()).exp();
                let d = 1.0 / u;
                let p = ((b * dt).exp() - d) / (u - d);
                (u, d, p)
            }
            BinomialKind::JarrowRudd => {
                let m = (b - 0.5 * sigma * sigma) * dt;
                let s = sigma * dt.sqrt();
                ((m + s).exp(), (m - s).exp(), 0.5)
            }
            BinomialKind::Tian => {
                let m = (b * dt).exp();
                let v = (sigma * sigma * dt).exp();
                let term = (v * v + 2.0 * v - 3.0).sqrt();
                let u = 0.5 * m * v * (v + 1.0 + term);
                let d = 0.5 * m * v * (v + 1.0 - term);
                let p = (m - d) / (u - d);
                (u, d, p)
            }
        };
        if !(0.0..=1.0).contains(&p) {
            return Err(LatticeError::NegativeProbability { prob: p, branch: 0 });
        }
        Ok((u, d, p))
    }

    /// Price a single-asset product by backward induction.
    ///
    /// Supports any terminal payoff from `mdp_model::Payoff` that is not
    /// path-dependent; American exercise is handled at every step.
    pub fn price(
        &self,
        market: &GbmMarket,
        product: &Product,
    ) -> Result<BinomialResult, LatticeError> {
        product.validate_for(market)?;
        if market.dim() != 1 {
            return Err(LatticeError::Model(
                mdp_model::ModelError::DimensionMismatch {
                    product: 1,
                    market: market.dim(),
                },
            ));
        }
        if product.payoff.is_path_dependent() {
            return Err(LatticeError::Model(mdp_model::ModelError::Unsupported {
                engine: "binomial lattice",
                why: "path-dependent payoff".into(),
            }));
        }
        let n = self.steps;
        let t = product.maturity;
        let (u, d, p) = self.parameters(market, t)?;
        let dt = t / n as f64;
        let disc = (-market.rate() * dt).exp();
        let s0 = market.spots()[0];
        let american = product.exercise == ExerciseStyle::American;

        // Terminal layer: S = s0 · u^j · d^{n−j}.
        let mut values = vec![0.0; n + 1];
        let mut spot = [0.0; 1];
        for (j, v) in values.iter_mut().enumerate() {
            spot[0] = s0 * u.powi(j as i32) * d.powi((n - j) as i32);
            *v = product.payoff.eval(&spot);
        }
        let mut nodes = (n + 1) as u64;

        // Backward induction.
        for step in (0..n).rev() {
            for j in 0..=step {
                let cont = disc * (p * values[j + 1] + (1.0 - p) * values[j]);
                values[j] = if american {
                    spot[0] = s0 * u.powi(j as i32) * d.powi((step - j) as i32);
                    cont.max(product.payoff.eval(&spot))
                } else {
                    cont
                };
            }
            nodes += (step + 1) as u64;
        }
        Ok(BinomialResult {
            price: values[0],
            nodes_processed: nodes,
        })
    }

    /// Total nodes in an N-step 1-D lattice: `(N+1)(N+2)/2`.
    pub fn node_count(&self) -> u64 {
        let n = self.steps as u64;
        (n + 1) * (n + 2) / 2
    }

    /// Richardson-extrapolated price: the binomial error is O(1/N) to
    /// leading order, so `2·V(N) − V(N/2)` cancels it, typically buying
    /// an order of magnitude of accuracy for ~1.25× the work (the BBSR
    /// idea of Broadie–Detemple without the Black–Scholes tail patch).
    ///
    /// Works best with an even `steps`; the lattice kind is preserved.
    pub fn price_richardson(
        &self,
        market: &GbmMarket,
        product: &Product,
    ) -> Result<BinomialResult, LatticeError> {
        if self.steps < 4 || self.steps % 2 != 0 {
            return Err(LatticeError::ZeroSteps);
        }
        let full = self.price(market, product)?;
        let half = BinomialLattice {
            kind: self.kind,
            steps: self.steps / 2,
        }
        .price(market, product)?;
        Ok(BinomialResult {
            price: 2.0 * full.price - half.price,
            nodes_processed: full.nodes_processed + half.nodes_processed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdp_math::approx_eq;
    use mdp_model::analytic::{black_scholes_call, black_scholes_put};
    use mdp_model::Payoff;

    fn market() -> GbmMarket {
        GbmMarket::single(100.0, 0.2, 0.0, 0.05).unwrap()
    }

    fn call(strike: f64) -> Product {
        Product::european(
            Payoff::BasketCall {
                weights: vec![1.0],
                strike,
            },
            1.0,
        )
    }

    #[test]
    fn crr_converges_to_black_scholes() {
        let m = market();
        let exact = black_scholes_call(100.0, 100.0, 0.05, 0.0, 0.2, 1.0);
        let mut prev_err = f64::INFINITY;
        for n in [64usize, 256, 1024] {
            let r = BinomialLattice::crr(n).price(&m, &call(100.0)).unwrap();
            let err = (r.price - exact).abs();
            assert!(err < prev_err * 0.9, "n={n}: {err} !< {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 0.01, "1024-step error {prev_err}");
    }

    #[test]
    fn all_kinds_converge() {
        let m = market();
        let exact = black_scholes_call(100.0, 105.0, 0.05, 0.0, 0.2, 1.0);
        for kind in [
            BinomialKind::CoxRossRubinstein,
            BinomialKind::JarrowRudd,
            BinomialKind::Tian,
        ] {
            let lat = BinomialLattice { kind, steps: 2000 };
            let r = lat.price(&m, &call(105.0)).unwrap();
            assert!(
                approx_eq(r.price, exact, 5e-3),
                "{kind:?}: {} vs {exact}",
                r.price
            );
        }
    }

    #[test]
    fn american_put_premium_positive() {
        let m = market();
        let eu = Product::european(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 110.0,
            },
            1.0,
        );
        let am = Product::american(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 110.0,
            },
            1.0,
        );
        let lat = BinomialLattice::crr(500);
        let pe = lat.price(&m, &eu).unwrap().price;
        let pa = lat.price(&m, &am).unwrap().price;
        let exact_eu = black_scholes_put(100.0, 110.0, 0.05, 0.0, 0.2, 1.0);
        assert!(approx_eq(pe, exact_eu, 2e-3), "{pe} vs {exact_eu}");
        assert!(pa > pe + 1e-3, "early-exercise premium: {pa} vs {pe}");
        // The American put is worth at least intrinsic.
        assert!(pa >= 10.0);
    }

    #[test]
    fn american_call_no_dividend_equals_european() {
        // Without dividends, early exercise of a call is never optimal.
        let m = market();
        let lat = BinomialLattice::crr(400);
        let eu = lat.price(&m, &call(100.0)).unwrap().price;
        let am = lat
            .price(
                &m,
                &Product::american(
                    Payoff::BasketCall {
                        weights: vec![1.0],
                        strike: 100.0,
                    },
                    1.0,
                ),
            )
            .unwrap()
            .price;
        assert!(approx_eq(eu, am, 1e-12), "{eu} vs {am}");
    }

    #[test]
    fn reference_value_crr_small_tree() {
        // Hand-checkable 2-step CRR tree: S=100, K=100, σ=0.2, r=0.05, T=1.
        let m = market();
        let r = BinomialLattice::crr(2).price(&m, &call(100.0)).unwrap();
        // u = e^{0.2/√2}, d = 1/u, p = (e^{0.025}−d)/(u−d).
        let u = (0.2f64 / 2f64.sqrt()).exp();
        let d = 1.0 / u;
        let p = ((0.025f64).exp() - d) / (u - d);
        let disc = (-0.025f64).exp();
        let vuu = (100.0 * u * u - 100.0f64).max(0.0);
        let vud = 0.0;
        let vdd = 0.0;
        let vu = disc * (p * vuu + (1.0 - p) * vud);
        let vd = disc * (p * vud + (1.0 - p) * vdd);
        let v0 = disc * (p * vu + (1.0 - p) * vd);
        assert!(approx_eq(r.price, v0, 1e-12));
        assert_eq!(r.nodes_processed, 3 + 2 + 1);
    }

    #[test]
    fn node_count_formula() {
        assert_eq!(BinomialLattice::crr(3).node_count(), 10);
        assert_eq!(BinomialLattice::crr(100).node_count(), 101 * 102 / 2);
    }

    #[test]
    fn zero_steps_rejected() {
        let e = BinomialLattice::crr(0).price(&market(), &call(100.0));
        assert!(matches!(e, Err(LatticeError::ZeroSteps)));
    }

    #[test]
    fn multi_asset_market_rejected() {
        let m2 = GbmMarket::symmetric(2, 100.0, 0.2, 0.0, 0.05, 0.5).unwrap();
        let e = BinomialLattice::crr(10).price(
            &m2,
            &Product::european(Payoff::MaxCall { strike: 100.0 }, 1.0),
        );
        assert!(e.is_err());
    }

    #[test]
    fn path_dependent_rejected() {
        let e = BinomialLattice::crr(10).price(
            &market(),
            &Product::european(Payoff::AsianCall { strike: 100.0 }, 1.0),
        );
        assert!(matches!(e, Err(LatticeError::Model(_))));
    }

    #[test]
    fn richardson_beats_plain_at_equal_cost_for_american_put() {
        // Richardson with N=200 (cost ≈ plain N=224) vs plain N=224,
        // against a dense reference. The extrapolation should win
        // decisively for the smooth American put.
        let m = market();
        let put = Product::american(
            Payoff::BasketPut {
                weights: vec![1.0],
                strike: 110.0,
            },
            1.0,
        );
        let reference = BinomialLattice::crr(8000).price(&m, &put).unwrap().price;
        let plain = BinomialLattice::crr(224).price(&m, &put).unwrap().price;
        let rich = BinomialLattice::crr(200)
            .price_richardson(&m, &put)
            .unwrap()
            .price;
        let err_plain = (plain - reference).abs();
        let err_rich = (rich - reference).abs();
        assert!(
            err_rich < err_plain,
            "richardson {err_rich} should beat plain {err_plain}"
        );
    }

    #[test]
    fn richardson_european_call_high_accuracy() {
        // For the European call the CRR error has an oscillatory O(1/N)
        // term; extrapolation with matched parity still helps.
        let m = market();
        let exact = black_scholes_call(100.0, 100.0, 0.05, 0.0, 0.2, 1.0);
        let rich = BinomialLattice::crr(512)
            .price_richardson(&m, &call(100.0))
            .unwrap()
            .price;
        assert!((rich - exact).abs() < 5e-3, "{rich} vs {exact}");
    }

    #[test]
    fn richardson_requires_even_steps() {
        let m = market();
        assert!(BinomialLattice::crr(7)
            .price_richardson(&m, &call(100.0))
            .is_err());
        assert!(BinomialLattice::crr(2)
            .price_richardson(&m, &call(100.0))
            .is_err());
    }

    #[test]
    fn dividend_lowers_call_price() {
        let m0 = market();
        let mq = GbmMarket::single(100.0, 0.2, 0.03, 0.05).unwrap();
        let lat = BinomialLattice::crr(200);
        let p0 = lat.price(&m0, &call(100.0)).unwrap().price;
        let pq = lat.price(&mq, &call(100.0)).unwrap().price;
        assert!(pq < p0);
    }
}
