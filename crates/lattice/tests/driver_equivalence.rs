//! Property sweep of the equality-by-construction discipline: every
//! lattice driver — sequential, rayon, and the virtual-cluster SPMD
//! model under both decompositions — must produce bitwise-identical
//! prices, because they re-partition the same floating-point operations
//! without reordering any node's branch accumulation.

use mdp_cluster::Machine;
use mdp_lattice::cluster::{price_cluster, Decomposition};
use mdp_lattice::MultiLattice;
use mdp_model::{GbmMarket, Payoff, Product};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random dimension, step count, market, payoff, exercise style and
    /// rank count: all four drivers agree to the last bit.
    #[test]
    fn all_drivers_bitwise_equal(
        d in 1usize..5,
        steps in 1usize..9,
        vol in 0.15f64..0.35,
        rho in 0.0f64..0.35,
        rate in 0.0f64..0.08,
        strike in 80.0f64..120.0,
        payoff_kind in 0usize..4,
        american in 0usize..2,
        ranks in 1usize..5,
    ) {
        // d = 1 markets take no correlation input.
        let rho = if d == 1 { 0.0 } else { rho };
        let market = match GbmMarket::symmetric(d, 100.0, vol, 0.01, rate, rho) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        let payoff = match payoff_kind {
            0 => Payoff::MaxCall { strike },
            1 => Payoff::MinPut { strike },
            2 => Payoff::GeometricCall { strike },
            _ => Payoff::BasketCall {
                weights: Product::equal_weights(d),
                strike,
            },
        };
        let product = if american == 1 {
            Product::american(payoff, 1.0)
        } else {
            Product::european(payoff, 1.0)
        };

        let lat = MultiLattice::new(steps);
        // A draw can push a branch probability outside [0, 1]; such
        // parameter sets are rejected identically by every driver, so
        // skip them.
        let seq = match lat.price(&market, &product) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        let rayon = lat.price_rayon(&market, &product).unwrap();
        prop_assert_eq!(seq.price.to_bits(), rayon.price.to_bits());
        prop_assert_eq!(seq.nodes_processed, rayon.nodes_processed);

        let block = price_cluster(
            &market,
            &product,
            steps,
            ranks,
            Machine::ideal(),
            Decomposition::Block,
        )
        .unwrap();
        prop_assert_eq!(seq.price.to_bits(), block.price.to_bits());

        let cyclic = price_cluster(
            &market,
            &product,
            steps,
            ranks,
            Machine::ideal(),
            Decomposition::Cyclic(1),
        )
        .unwrap();
        prop_assert_eq!(seq.price.to_bits(), cyclic.price.to_bits());
    }
}
