//! Polynomial bases for the Longstaff–Schwartz conditional-expectation
//! regression.
//!
//! The continuation value E[V_{t+1} | S_t] is approximated by a linear
//! combination of basis functions of the (normalised) asset prices.
//! Longstaff & Schwartz used weighted Laguerre polynomials; plain
//! monomials and Hermite polynomials are common too, and for multi-asset
//! products a cross-product basis is required. All three families plus a
//! multidimensional tensor basis are provided.

/// Basis family for scalar regressors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisKind {
    /// 1, x, x², …
    Monomial,
    /// Laguerre polynomials L₀, L₁, … (orthogonal on [0,∞) w.r.t. e^{-x}).
    Laguerre,
    /// Probabilists' Hermite polynomials He₀, He₁, …
    Hermite,
}

/// Evaluate the first `count` basis functions of `kind` at `x` into `out`.
///
/// # Panics
/// Panics if `out.len() < count`.
pub fn eval_basis(kind: BasisKind, x: f64, count: usize, out: &mut [f64]) {
    assert!(out.len() >= count);
    if count == 0 {
        return;
    }
    out[0] = 1.0;
    if count == 1 {
        return;
    }
    match kind {
        BasisKind::Monomial => {
            for k in 1..count {
                out[k] = out[k - 1] * x;
            }
        }
        BasisKind::Laguerre => {
            out[1] = 1.0 - x;
            for k in 1..count - 1 {
                // (k+1) L_{k+1} = (2k+1-x) L_k − k L_{k-1}
                out[k + 1] =
                    (((2 * k + 1) as f64 - x) * out[k] - k as f64 * out[k - 1]) / (k + 1) as f64;
            }
        }
        BasisKind::Hermite => {
            out[1] = x;
            for k in 1..count - 1 {
                // He_{k+1} = x He_k − k He_{k-1}
                out[k + 1] = x * out[k] - k as f64 * out[k - 1];
            }
        }
    }
}

/// A multidimensional regression basis: per-asset scalar bases up to
/// `degree`, all pairwise cross terms `x_i·x_j`, and a constant.
///
/// This is the standard LSMC basis for baskets: rich enough to capture
/// the exercise boundary of 2–5 asset products without exploding in size.
#[derive(Debug, Clone)]
pub struct TensorBasis {
    /// Number of assets d.
    pub dim: usize,
    /// Scalar degree per asset (≥ 1).
    pub degree: usize,
    /// Scalar family.
    pub kind: BasisKind,
    /// Include pairwise cross terms.
    pub cross_terms: bool,
}

impl TensorBasis {
    /// Standard LSMC basis: given d assets and scalar degree `degree`.
    pub fn new(dim: usize, degree: usize, kind: BasisKind) -> Self {
        assert!(dim > 0 && degree >= 1);
        TensorBasis {
            dim,
            degree,
            kind,
            cross_terms: dim > 1,
        }
    }

    /// Total number of basis functions.
    pub fn size(&self) -> usize {
        // 1 constant + d·degree scalar terms + C(d,2) cross terms.
        let cross = if self.cross_terms {
            self.dim * (self.dim - 1) / 2
        } else {
            0
        };
        1 + self.dim * self.degree + cross
    }

    /// Evaluate at the asset vector `x`, writing `self.size()` values.
    ///
    /// # Panics
    /// Panics if `x.len() != dim` or `out.len() != size()`.
    pub fn eval(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim);
        assert_eq!(out.len(), self.size());
        out[0] = 1.0;
        let mut pos = 1;
        // scratch: scalar basis includes the constant at index 0.
        let mut scratch = vec![0.0; self.degree + 1];
        for &xi in x {
            eval_basis(self.kind, xi, self.degree + 1, &mut scratch);
            out[pos..pos + self.degree].copy_from_slice(&scratch[1..=self.degree]);
            pos += self.degree;
        }
        if self.cross_terms {
            for i in 0..self.dim {
                for j in (i + 1)..self.dim {
                    out[pos] = x[i] * x[j];
                    pos += 1;
                }
            }
        }
        debug_assert_eq!(pos, self.size());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn monomials() {
        let mut out = [0.0; 4];
        eval_basis(BasisKind::Monomial, 2.0, 4, &mut out);
        assert_eq!(out, [1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn laguerre_known_values() {
        // L2(x) = (x² − 4x + 2)/2 at x=1 → −0.5; L3(1) = (−1³+9−18+6)/6 = −4/6.
        let mut out = [0.0; 4];
        eval_basis(BasisKind::Laguerre, 1.0, 4, &mut out);
        assert!(approx_eq(out[0], 1.0, 1e-15));
        assert!(approx_eq(out[1], 0.0, 1e-15));
        assert!(approx_eq(out[2], -0.5, 1e-14));
        assert!(approx_eq(out[3], -2.0 / 3.0, 1e-14));
    }

    #[test]
    fn hermite_known_values() {
        // He2(x) = x²−1, He3(x) = x³−3x at x=2 → 3, 2.
        let mut out = [0.0; 4];
        eval_basis(BasisKind::Hermite, 2.0, 4, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 2.0]);
    }

    #[test]
    fn zero_and_one_counts() {
        let mut out = [9.0; 2];
        eval_basis(BasisKind::Monomial, 5.0, 0, &mut out);
        assert_eq!(out, [9.0, 9.0]);
        eval_basis(BasisKind::Monomial, 5.0, 1, &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn tensor_basis_size_and_layout() {
        let b = TensorBasis::new(3, 2, BasisKind::Monomial);
        // 1 + 3*2 + 3 cross = 10.
        assert_eq!(b.size(), 10);
        let x = [2.0, 3.0, 5.0];
        let mut out = vec![0.0; 10];
        b.eval(&x, &mut out);
        assert_eq!(out[0], 1.0);
        assert_eq!(&out[1..3], &[2.0, 4.0]); // x1, x1²
        assert_eq!(&out[3..5], &[3.0, 9.0]);
        assert_eq!(&out[5..7], &[5.0, 25.0]);
        assert_eq!(&out[7..10], &[6.0, 10.0, 15.0]); // cross terms
    }

    #[test]
    fn tensor_basis_single_asset_has_no_cross() {
        let b = TensorBasis::new(1, 3, BasisKind::Laguerre);
        assert_eq!(b.size(), 4);
        let mut out = vec![0.0; 4];
        b.eval(&[1.0], &mut out);
        // Layout: [1, L1(1), L2(1), L3(1)] with L1(1) = 0, L2(1) = −0.5.
        assert!(approx_eq(out[1], 0.0, 1e-15));
        assert!(approx_eq(out[2], -0.5, 1e-14));
    }

    #[test]
    #[should_panic]
    fn tensor_basis_wrong_input_length_panics() {
        let b = TensorBasis::new(2, 2, BasisKind::Monomial);
        let mut out = vec![0.0; b.size()];
        b.eval(&[1.0], &mut out);
    }
}
