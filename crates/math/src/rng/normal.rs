//! Standard-normal samplers.
//!
//! Three interchangeable methods:
//!
//! * [`NormalPolar`] — Marsaglia's polar method. Exact, rejection-based
//!   (~1.27 uniforms per normal), branchy. The default for pseudo-random
//!   Monte Carlo.
//! * [`BoxMuller`] — trigonometric Box–Muller. Exact, branch-free, slightly
//!   slower due to `sin`/`cos`; kept both as a cross-check and because it
//!   consumes exactly two uniforms for two normals (fixed consumption
//!   matters for some reproducibility schemes).
//! * [`NormalInverse`] — inverse-CDF transform. The **only** valid choice
//!   for quasi-Monte Carlo: it is monotone, so it preserves the
//!   low-discrepancy structure of a Sobol' point set, and it consumes
//!   exactly one uniform per normal so dimension assignment is stable.

use super::Rng64;
use crate::fastmath::ln64;
use crate::special::inv_norm_cdf;

/// A source of standard normal variates driven by a [`Rng64`].
pub trait NormalSampler {
    /// Draw one N(0,1) variate.
    fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64;

    /// Fill a slice with N(0,1) variates.
    fn fill<R: Rng64>(&mut self, rng: &mut R, dst: &mut [f64]) {
        for x in dst {
            *x = self.sample(rng);
        }
    }

    /// Fill `count` strided slots `dst[offset + k·stride]`, `k` ascending,
    /// with N(0,1) variates.
    ///
    /// Draws from the RNG in exactly the order [`NormalSampler::fill`]
    /// would for a contiguous slice of length `count` — including any
    /// cached spare carried across calls — so a structure-of-arrays
    /// writer (one path per column of a panel) consumes the identical
    /// variate sequence as the contiguous per-path writer.
    fn fill_strided<R: Rng64>(
        &mut self,
        rng: &mut R,
        dst: &mut [f64],
        offset: usize,
        stride: usize,
        count: usize,
    ) {
        for k in 0..count {
            dst[offset + k * stride] = self.sample(rng);
        }
    }

    /// Fill a transposed panel: draw `n` consecutive paths of `rows`
    /// variates each — the identical RNG order to [`NormalSampler::fill`]
    /// on a contiguous `n·rows` slice — writing path `p`'s draw `k` to
    /// `dst[k·stride + p]` (one path per column).
    ///
    /// This is the batched kernel's entry point: a sampler with a bulk
    /// fast path can amortise its transform over the whole panel and
    /// scatter straight into the structure-of-arrays layout, with no
    /// staging pass.
    fn fill_transposed<R: Rng64>(
        &mut self,
        rng: &mut R,
        dst: &mut [f64],
        stride: usize,
        n: usize,
        rows: usize,
    ) {
        for p in 0..n {
            for k in 0..rows {
                dst[k * stride + p] = self.sample(rng);
            }
        }
    }

    /// Reset any cached state (e.g. the spare variate of a pairwise
    /// method). Call when re-seeding the underlying RNG.
    fn reset(&mut self);
}

/// Marsaglia polar method with one cached spare.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalPolar {
    spare: Option<f64>,
}

impl NormalPolar {
    /// New sampler with no cached spare.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NormalSampler for NormalPolar {
    #[inline]
    fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * ln64(s) / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Bulk fill in three phases so the per-pair transform vectorizes:
    /// collect accepted `(u, v, s)` tuples with the scalar rejection
    /// loop, evaluate `f = √(−2·ln s / s)` over the whole chunk (a
    /// branch-free loop LLVM turns into SIMD), then write the pair
    /// stream out in order. The RNG draw order, the per-element
    /// arithmetic and the spare-carry semantics are exactly those of
    /// repeated [`NormalSampler::sample`] calls, so the output is
    /// bitwise identical to the default `fill` — just faster.
    fn fill<R: Rng64>(&mut self, rng: &mut R, dst: &mut [f64]) {
        const CHUNK: usize = 256;
        // Small fills (the scalar kernel's per-path draws) are cheaper
        // one sample at a time than paying the chunk buffers' setup.
        // Same variate stream either way — this is purely a speed fork.
        if dst.len() < 32 {
            for x in dst {
                *x = self.sample(rng);
            }
            return;
        }
        let mut i = 0;
        if let Some(z) = self.spare.take() {
            dst[i] = z;
            i += 1;
        }
        let mut us = [0.0; CHUNK];
        let mut vs = [0.0; CHUNK];
        let mut fs = [0.0; CHUNK];
        while i < dst.len() {
            let pairs = ((dst.len() - i).div_ceil(2)).min(CHUNK);
            for j in 0..pairs {
                loop {
                    let u = 2.0 * rng.next_f64() - 1.0;
                    let v = 2.0 * rng.next_f64() - 1.0;
                    let s = u * u + v * v;
                    if s > 0.0 && s < 1.0 {
                        us[j] = u;
                        vs[j] = v;
                        fs[j] = s;
                        break;
                    }
                }
            }
            for f in fs[..pairs].iter_mut() {
                let s = *f;
                *f = (-2.0 * ln64(s) / s).sqrt();
            }
            let whole = pairs.min((dst.len() - i) / 2);
            for j in 0..whole {
                dst[i + 2 * j] = us[j] * fs[j];
                dst[i + 2 * j + 1] = vs[j] * fs[j];
            }
            i += 2 * whole;
            if whole < pairs {
                // Odd tail: first variate of the last pair goes out, the
                // second becomes the spare — same as `sample` would do.
                dst[i] = us[whole] * fs[whole];
                self.spare = Some(vs[whole] * fs[whole]);
                i += 1;
            }
        }
    }

    /// Transposed bulk fill with the same three phases as `fill`, but
    /// phase 3 scatters each variate straight to its panel slot
    /// `dst[k·stride + p]` instead of staging contiguously — the
    /// `(p, k)` cursor advances in the draw order, so no divisions and
    /// no second transpose pass. Variate stream, arithmetic and
    /// spare-carry are again exactly those of repeated `sample` calls.
    fn fill_transposed<R: Rng64>(
        &mut self,
        rng: &mut R,
        dst: &mut [f64],
        stride: usize,
        n: usize,
        rows: usize,
    ) {
        const CHUNK: usize = 256;
        let total = n * rows;
        // The (p, k) write cursor, advanced once per emitted variate.
        let mut p = 0usize;
        let mut k = 0usize;
        let mut emitted = 0usize;
        macro_rules! emit {
            ($z:expr) => {{
                dst[k * stride + p] = $z;
                k += 1;
                if k == rows {
                    k = 0;
                    p += 1;
                }
                emitted += 1;
            }};
        }
        if total < 32 {
            while emitted < total {
                let z = self.sample(rng);
                emit!(z);
            }
            return;
        }
        if let Some(z) = self.spare.take() {
            emit!(z);
        }
        let mut us = [0.0; CHUNK];
        let mut vs = [0.0; CHUNK];
        let mut fs = [0.0; CHUNK];
        while emitted < total {
            let pairs = ((total - emitted).div_ceil(2)).min(CHUNK);
            for j in 0..pairs {
                loop {
                    let u = 2.0 * rng.next_f64() - 1.0;
                    let v = 2.0 * rng.next_f64() - 1.0;
                    let s = u * u + v * v;
                    if s > 0.0 && s < 1.0 {
                        us[j] = u;
                        vs[j] = v;
                        fs[j] = s;
                        break;
                    }
                }
            }
            for f in fs[..pairs].iter_mut() {
                let s = *f;
                *f = (-2.0 * ln64(s) / s).sqrt();
            }
            let whole = pairs.min((total - emitted) / 2);
            for j in 0..whole {
                emit!(us[j] * fs[j]);
                emit!(vs[j] * fs[j]);
            }
            if whole < pairs {
                // Odd tail, as in `fill`: first out, second cached.
                emit!(us[whole] * fs[whole]);
                self.spare = Some(vs[whole] * fs[whole]);
            }
        }
    }

    fn reset(&mut self) {
        self.spare = None;
    }
}

/// Trigonometric Box–Muller with one cached spare.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoxMuller {
    spare: Option<f64>,
}

impl BoxMuller {
    /// New sampler with no cached spare.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NormalSampler for BoxMuller {
    #[inline]
    fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1 = rng.next_open_f64();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    fn reset(&mut self) {
        self.spare = None;
    }
}

/// Inverse-CDF sampler: `z = Φ⁻¹(u)`.
///
/// Monotone and one-uniform-per-normal; mandatory for QMC.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalInverse;

impl NormalInverse {
    /// New inverse-CDF sampler.
    pub fn new() -> Self {
        NormalInverse
    }

    /// Transform a uniform in (0,1) into a standard normal.
    #[inline]
    pub fn transform(u: f64) -> f64 {
        inv_norm_cdf(u)
    }
}

impl NormalSampler for NormalInverse {
    #[inline]
    fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        inv_norm_cdf(rng.next_open_f64())
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn moments<S: NormalSampler>(mut s: S, seed: u64, n: usize) -> (f64, f64, f64, f64) {
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let (mut m1, mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let z = s.sample(&mut rng);
            m1 += z;
            m2 += z * z;
            m3 += z * z * z;
            m4 += z * z * z * z;
        }
        let n = n as f64;
        (m1 / n, m2 / n, m3 / n, m4 / n)
    }

    fn check_standard_normal(m: (f64, f64, f64, f64)) {
        // With n = 200k: SE(mean)≈0.0022, SE(var)≈0.0032, SE(skew-num)≈0.009,
        // SE(kurt-num)≈0.022. Use 5-sigma bands.
        assert!(m.0.abs() < 0.012, "mean {}", m.0);
        assert!((m.1 - 1.0).abs() < 0.02, "second moment {}", m.1);
        assert!(m.2.abs() < 0.05, "third moment {}", m.2);
        assert!((m.3 - 3.0).abs() < 0.15, "fourth moment {}", m.3);
    }

    #[test]
    fn polar_moments() {
        check_standard_normal(moments(NormalPolar::new(), 1, 200_000));
    }

    #[test]
    fn box_muller_moments() {
        check_standard_normal(moments(BoxMuller::new(), 2, 200_000));
    }

    #[test]
    fn inverse_moments() {
        check_standard_normal(moments(NormalInverse::new(), 3, 200_000));
    }

    #[test]
    fn inverse_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let u = i as f64 / 1000.0;
            let z = NormalInverse::transform(u);
            assert!(z > prev, "Φ⁻¹ must be strictly increasing");
            prev = z;
        }
    }

    #[test]
    fn tail_probabilities_roughly_correct() {
        // P(|Z| > 1.96) ≈ 0.05.
        let mut s = NormalPolar::new();
        let mut rng = Xoshiro256StarStar::seed_from(9);
        let n = 100_000;
        let tail = (0..n)
            .filter(|_| s.sample(&mut rng).abs() > 1.959964)
            .count();
        let frac = tail as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn polar_bulk_fill_is_bitwise_equal_to_repeated_sample() {
        // The three-phase bulk fill must reproduce the exact variate
        // stream of repeated sample() calls — odd lengths, zero-length
        // calls and the spare carried across calls included.
        for lens in [vec![7usize, 1, 0, 12, 3], vec![513, 2, 255], vec![1]] {
            let mut a = NormalPolar::new();
            let mut rng_a = Xoshiro256StarStar::seed_from(99);
            let mut b = NormalPolar::new();
            let mut rng_b = Xoshiro256StarStar::seed_from(99);
            for len in lens {
                let mut via_fill = vec![0.0; len];
                a.fill(&mut rng_a, &mut via_fill);
                let via_sample: Vec<f64> = (0..len).map(|_| b.sample(&mut rng_b)).collect();
                for (x, y) in via_fill.iter().zip(&via_sample) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn fill_strided_matches_contiguous_fill() {
        // Column-major panel fill must consume the same draw sequence as
        // per-path contiguous fills, spare carry-over included.
        let (paths, count) = (5usize, 7usize);
        let mut a = NormalPolar::new();
        let mut rng_a = Xoshiro256StarStar::seed_from(11);
        let mut contiguous = vec![0.0; paths * count];
        for p in 0..paths {
            a.fill(&mut rng_a, &mut contiguous[p * count..(p + 1) * count]);
        }
        let mut b = NormalPolar::new();
        let mut rng_b = Xoshiro256StarStar::seed_from(11);
        let mut panel = vec![0.0; paths * count];
        for p in 0..paths {
            b.fill_strided(&mut rng_b, &mut panel, p, paths, count);
        }
        for p in 0..paths {
            for k in 0..count {
                assert_eq!(
                    contiguous[p * count + k].to_bits(),
                    panel[k * paths + p].to_bits(),
                    "path {p} draw {k}"
                );
            }
        }
    }

    #[test]
    fn fill_transposed_matches_contiguous_fill() {
        // The scatter fill must consume the same draw sequence as
        // per-path contiguous fills, spare carry-over across calls
        // included. Covers both the bulk path (n·rows ≥ 32) and the
        // small-fill fallback, plus a stride wider than n.
        for (n, rows, stride) in [(5usize, 7usize, 5usize), (3, 2, 8), (64, 10, 64)] {
            let mut a = NormalPolar::new();
            let mut rng_a = Xoshiro256StarStar::seed_from(17);
            let mut contiguous = vec![0.0; 2 * n * rows];
            for p in 0..2 * n {
                a.fill(&mut rng_a, &mut contiguous[p * rows..(p + 1) * rows]);
            }
            let mut b = NormalPolar::new();
            let mut rng_b = Xoshiro256StarStar::seed_from(17);
            let mut panel = vec![0.0; rows * stride];
            // Two back-to-back panel fills so an odd tail's spare carries.
            for half in 0..2 {
                b.fill_transposed(&mut rng_b, &mut panel, stride, n, rows);
                for p in 0..n {
                    for k in 0..rows {
                        assert_eq!(
                            contiguous[(half * n + p) * rows + k].to_bits(),
                            panel[k * stride + p].to_bits(),
                            "n={n} rows={rows} half={half} path {p} draw {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reset_clears_spare() {
        let mut s = NormalPolar::new();
        let mut rng = Xoshiro256StarStar::seed_from(4);
        let _ = s.sample(&mut rng);
        s.reset();
        // After reset the sampler must not replay the cached spare: two
        // freshly seeded runs agree only if state was fully cleared.
        let mut s2 = NormalPolar::new();
        let mut rng2 = Xoshiro256StarStar::seed_from(5);
        let mut rng3 = Xoshiro256StarStar::seed_from(5);
        let a = s.sample(&mut rng2);
        let b = s2.sample(&mut rng3);
        assert_eq!(a, b);
    }
}
