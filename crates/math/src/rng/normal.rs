//! Standard-normal samplers.
//!
//! Three interchangeable methods:
//!
//! * [`NormalPolar`] — Marsaglia's polar method. Exact, rejection-based
//!   (~1.27 uniforms per normal), branchy. The default for pseudo-random
//!   Monte Carlo.
//! * [`BoxMuller`] — trigonometric Box–Muller. Exact, branch-free, slightly
//!   slower due to `sin`/`cos`; kept both as a cross-check and because it
//!   consumes exactly two uniforms for two normals (fixed consumption
//!   matters for some reproducibility schemes).
//! * [`NormalInverse`] — inverse-CDF transform. The **only** valid choice
//!   for quasi-Monte Carlo: it is monotone, so it preserves the
//!   low-discrepancy structure of a Sobol' point set, and it consumes
//!   exactly one uniform per normal so dimension assignment is stable.

use super::Rng64;
use crate::special::inv_norm_cdf;

/// A source of standard normal variates driven by a [`Rng64`].
pub trait NormalSampler {
    /// Draw one N(0,1) variate.
    fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64;

    /// Fill a slice with N(0,1) variates.
    fn fill<R: Rng64>(&mut self, rng: &mut R, dst: &mut [f64]) {
        for x in dst {
            *x = self.sample(rng);
        }
    }

    /// Reset any cached state (e.g. the spare variate of a pairwise
    /// method). Call when re-seeding the underlying RNG.
    fn reset(&mut self);
}

/// Marsaglia polar method with one cached spare.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalPolar {
    spare: Option<f64>,
}

impl NormalPolar {
    /// New sampler with no cached spare.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NormalSampler for NormalPolar {
    #[inline]
    fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    fn reset(&mut self) {
        self.spare = None;
    }
}

/// Trigonometric Box–Muller with one cached spare.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoxMuller {
    spare: Option<f64>,
}

impl BoxMuller {
    /// New sampler with no cached spare.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NormalSampler for BoxMuller {
    #[inline]
    fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1 = rng.next_open_f64();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    fn reset(&mut self) {
        self.spare = None;
    }
}

/// Inverse-CDF sampler: `z = Φ⁻¹(u)`.
///
/// Monotone and one-uniform-per-normal; mandatory for QMC.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalInverse;

impl NormalInverse {
    /// New inverse-CDF sampler.
    pub fn new() -> Self {
        NormalInverse
    }

    /// Transform a uniform in (0,1) into a standard normal.
    #[inline]
    pub fn transform(u: f64) -> f64 {
        inv_norm_cdf(u)
    }
}

impl NormalSampler for NormalInverse {
    #[inline]
    fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        inv_norm_cdf(rng.next_open_f64())
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn moments<S: NormalSampler>(mut s: S, seed: u64, n: usize) -> (f64, f64, f64, f64) {
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let (mut m1, mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let z = s.sample(&mut rng);
            m1 += z;
            m2 += z * z;
            m3 += z * z * z;
            m4 += z * z * z * z;
        }
        let n = n as f64;
        (m1 / n, m2 / n, m3 / n, m4 / n)
    }

    fn check_standard_normal(m: (f64, f64, f64, f64)) {
        // With n = 200k: SE(mean)≈0.0022, SE(var)≈0.0032, SE(skew-num)≈0.009,
        // SE(kurt-num)≈0.022. Use 5-sigma bands.
        assert!(m.0.abs() < 0.012, "mean {}", m.0);
        assert!((m.1 - 1.0).abs() < 0.02, "second moment {}", m.1);
        assert!(m.2.abs() < 0.05, "third moment {}", m.2);
        assert!((m.3 - 3.0).abs() < 0.15, "fourth moment {}", m.3);
    }

    #[test]
    fn polar_moments() {
        check_standard_normal(moments(NormalPolar::new(), 1, 200_000));
    }

    #[test]
    fn box_muller_moments() {
        check_standard_normal(moments(BoxMuller::new(), 2, 200_000));
    }

    #[test]
    fn inverse_moments() {
        check_standard_normal(moments(NormalInverse::new(), 3, 200_000));
    }

    #[test]
    fn inverse_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let u = i as f64 / 1000.0;
            let z = NormalInverse::transform(u);
            assert!(z > prev, "Φ⁻¹ must be strictly increasing");
            prev = z;
        }
    }

    #[test]
    fn tail_probabilities_roughly_correct() {
        // P(|Z| > 1.96) ≈ 0.05.
        let mut s = NormalPolar::new();
        let mut rng = Xoshiro256StarStar::seed_from(9);
        let n = 100_000;
        let tail = (0..n)
            .filter(|_| s.sample(&mut rng).abs() > 1.959964)
            .count();
        let frac = tail as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn reset_clears_spare() {
        let mut s = NormalPolar::new();
        let mut rng = Xoshiro256StarStar::seed_from(4);
        let _ = s.sample(&mut rng);
        s.reset();
        // After reset the sampler must not replay the cached spare: two
        // freshly seeded runs agree only if state was fully cleared.
        let mut s2 = NormalPolar::new();
        let mut rng2 = Xoshiro256StarStar::seed_from(5);
        let mut rng3 = Xoshiro256StarStar::seed_from(5);
        let a = s.sample(&mut rng2);
        let b = s2.sample(&mut rng3);
        assert_eq!(a, b);
    }
}
