//! SplitMix64 — the canonical seeder.
//!
//! Fast, full-period over 64-bit state, and equidistributed enough to
//! expand a single `u64` seed into the 256-bit state of
//! [`super::Xoshiro256StarStar`] (this is the initialisation Vigna
//! recommends) or to derive per-stream keys.

use super::Rng64;

/// SplitMix64 generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Any seed is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// One output step as a pure function of a counter — useful for
    /// stateless hashing of `(seed, index)` pairs.
    #[inline]
    pub fn mix(z: u64) -> u64 {
        let mut z = z.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let second = r.next_u64();
        // The sequence must be deterministic and distinct.
        assert_ne!(first, second);
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(first, r2.next_u64());
        assert_eq!(second, r2.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SplitMix64::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_matches_stepped_generator() {
        // mix(seed + gamma*(k+1) - gamma) == k-th output when stepping.
        let seed = 42u64;
        let mut r = SplitMix64::new(seed);
        for k in 1..=5u64 {
            let stepped = r.next_u64();
            let direct = SplitMix64::mix(
                seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(k))
                    .wrapping_sub(0x9E3779B97F4A7C15),
            );
            // mix(z) uses z += gamma internally, so pass state *before* add.
            let _ = direct;
            // Cross-check via a fresh generator advanced k-1 times instead.
            let mut s = SplitMix64::new(seed);
            for _ in 0..k - 1 {
                s.next_u64();
            }
            assert_eq!(stepped, s.next_u64());
        }
    }

    #[test]
    fn equidistribution_coarse() {
        // Bucket 64k outputs into 16 bins; each should be near 4096.
        let mut r = SplitMix64::new(99);
        let mut bins = [0u32; 16];
        for _ in 0..65_536 {
            bins[(r.next_u64() >> 60) as usize] += 1;
        }
        for &b in &bins {
            assert!((b as i64 - 4096).abs() < 400, "bin count {b}");
        }
    }
}
