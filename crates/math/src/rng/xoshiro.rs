//! xoshiro256** 1.0 (Blackman & Vigna 2018) with polynomial jumps.
//!
//! The period is 2^256 − 1. `jump()` advances 2^128 steps and `long_jump()`
//! 2^192 steps, which lets a parallel driver hand rank *k* the substream
//! starting at offset k·2^128 — disjoint for any realistic draw count, so a
//! Monte Carlo price is identical no matter how the paths are distributed
//! over ranks.

use super::{Rng64, SplitMix64, Substreams};

/// xoshiro256** generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// Jump polynomial for 2^128 steps (from the reference implementation).
const JUMP: [u64; 4] = [
    0x180EC6D33CFD0ABA,
    0xD5A61266F0C9392C,
    0xA9582618E03FC9AA,
    0x39ABDC4529B1661C,
];

/// Jump polynomial for 2^192 steps.
const LONG_JUMP: [u64; 4] = [
    0x76E15D3EFEFDCBBF,
    0xC5004E441C522FB3,
    0x77710069854EE241,
    0x39109BB02ACBE635,
];

impl Xoshiro256StarStar {
    /// Seed the 256-bit state by expanding `seed` through SplitMix64,
    /// the initialisation recommended by the authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            return Xoshiro256StarStar { s: [1, 2, 3, 4] };
        }
        Xoshiro256StarStar { s }
    }

    /// Construct directly from a full 256-bit state (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256** state must not be all-zero");
        Xoshiro256StarStar { s }
    }

    #[inline]
    fn advance(&mut self) {
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
    }

    fn apply_jump(&mut self, poly: &[u64; 4]) {
        let mut acc = [0u64; 4];
        for &word in poly {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.advance();
            }
        }
        self.s = acc;
    }

    /// Advance 2^128 steps in O(256) work.
    pub fn jump(&mut self) {
        self.apply_jump(&JUMP);
    }

    /// Advance 2^192 steps in O(256) work.
    pub fn long_jump(&mut self) {
        self.apply_jump(&LONG_JUMP);
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        self.advance();
        result
    }
}

impl Substreams for Xoshiro256StarStar {
    /// Substream `k` starts k·2^128 steps into the parent stream.
    ///
    /// Cost is O(k) jumps; rank counts in this workspace are ≤ a few
    /// hundred, so this is negligible and keeps substreams *provably*
    /// non-overlapping (each is 2^128 long).
    fn substream(&self, k: u64) -> Self {
        let mut g = *self;
        for _ in 0..k {
            g.jump();
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the public-domain xoshiro256** C code with
    /// state {1, 2, 3, 4}.
    #[test]
    fn known_answer_vector() {
        let mut r = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
        ];
        for &e in &expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn jump_skips_disjoint_blocks() {
        // After jump(), the next outputs must differ from the parent's
        // first outputs and a double jump must equal two single jumps.
        let base = Xoshiro256StarStar::seed_from(7);
        let mut a = base;
        a.jump();
        let mut b = base;
        b.jump();
        b.jump();
        let mut a2 = a;
        a2.jump();
        assert_eq!(a2, b);
        let mut parent = base;
        let first: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let mut jumped = a;
        let jumped_first: Vec<u64> = (0..8).map(|_| jumped.next_u64()).collect();
        assert_ne!(first, jumped_first);
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256StarStar::seed_from(8);
        let mut a = base;
        a.jump();
        let mut b = base;
        b.long_jump();
        assert_ne!(a, b);
    }

    #[test]
    fn substreams_are_distinct_and_deterministic() {
        let base = Xoshiro256StarStar::seed_from(9);
        let mut s0 = base.substream(0);
        let mut s1 = base.substream(1);
        let mut s2 = base.substream(2);
        let o0: Vec<u64> = (0..16).map(|_| s0.next_u64()).collect();
        let o1: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        let o2: Vec<u64> = (0..16).map(|_| s2.next_u64()).collect();
        assert_ne!(o0, o1);
        assert_ne!(o1, o2);
        assert_ne!(o0, o2);
        let mut s1b = base.substream(1);
        let o1b: Vec<u64> = (0..16).map(|_| s1b.next_u64()).collect();
        assert_eq!(o1, o1b);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut r = Xoshiro256StarStar::seed_from(123);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }
}
