//! Pseudo-random number generation.
//!
//! The pricing engines need three things from an RNG:
//!
//! 1. **Speed** — Monte Carlo draws hundreds of millions of variates.
//! 2. **Reproducibility** — every experiment in the evaluation is seeded,
//!    and the parallel engines must produce results that are independent of
//!    the number of workers (each worker owns a disjoint substream).
//! 3. **Statistical quality** — prices are means of millions of samples, so
//!    equidistribution failures show up directly as bias.
//!
//! [`Xoshiro256StarStar`] is the workhorse: it passes BigCrush, emits one
//! 64-bit word per four xor/rotate ops, and provides `jump()` (2^128 steps)
//! so that P parallel ranks can partition one logical stream into provably
//! disjoint substreams — the same discipline an MPI code of the paper's era
//! would use with SPRNG. [`Pcg64`] is a second, structurally unrelated
//! generator used to cross-check that no result depends on RNG family.
//! [`SplitMix64`] seeds both and derives per-stream keys.

mod normal;
mod pcg;
mod splitmix;
mod xoshiro;

pub use normal::{BoxMuller, NormalInverse, NormalPolar, NormalSampler};
pub use pcg::Pcg64;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;

/// A uniform 64-bit pseudo-random source.
///
/// This is the only abstraction the engines program against; everything
/// else (uniform floats, Gaussians, substreams) derives from `next_u64`.
pub trait Rng64 {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform double in `[0, 1)` with 53 random bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform double in the *open* interval `(0, 1)`.
    ///
    /// Guaranteed never to return 0.0 or 1.0 — safe to feed into `ln` or the
    /// inverse normal CDF.
    #[inline]
    fn next_open_f64(&mut self) -> f64 {
        // 53-bit mantissa shifted to the cell centre: (k + 0.5) * 2^-53.
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift rejection method).
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fill `dst` with uniform doubles in `[0, 1)`.
    fn fill_f64(&mut self, dst: &mut [f64]) {
        for x in dst {
            *x = self.next_f64();
        }
    }
}

/// Generators whose stream can be partitioned into disjoint substreams.
///
/// `substream(k)` must return a generator whose output never overlaps any
/// other substream index for at least 2^64 draws — the property parallel
/// Monte Carlo needs so that the price is independent of the rank count.
pub trait Substreams: Sized {
    /// An independent generator for substream `k` of this stream.
    fn substream(&self, k: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_open_f64_never_hits_endpoints() {
        let mut r = Xoshiro256StarStar::seed_from(2);
        for _ in 0..10_000 {
            let x = r.next_open_f64();
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut r = Pcg64::seed_from(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_unbiased_mean() {
        // Mean of U[0, 1000) is 499.5; with 200k draws the SE is ~0.65.
        let mut r = Xoshiro256StarStar::seed_from(4);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_below(1000) as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 499.5).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn fill_f64_fills_everything() {
        let mut r = Xoshiro256StarStar::seed_from(5);
        let mut buf = vec![-1.0; 257];
        r.fill_f64(&mut buf);
        assert!(buf.iter().all(|&x| (0.0..1.0).contains(&x)));
    }
}
