//! PCG64 (XSL-RR 128/64) — O'Neill 2014.
//!
//! A 128-bit LCG with an xorshift-rotate output permutation. Structurally
//! unrelated to the xoshiro family, which makes it the cross-check
//! generator: any Monte Carlo result that depends on the RNG family is a
//! bug, and the test suite prices the same products under both.
//!
//! Distinct `stream` values select distinct LCG increments, giving 2^63
//! independent sequences — an alternative substream mechanism to
//! xoshiro's jumps.

use super::{Rng64, Substreams};

const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// PCG XSL RR 128/64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    /// Odd increment; selects the sequence.
    inc: u128,
}

impl Pcg64 {
    /// Create a generator on stream 0 from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self::seed_stream(seed, 0)
    }

    /// Create a generator from a seed and a stream selector.
    ///
    /// Different streams produce statistically independent sequences even
    /// with an identical seed.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        // Standard PCG initialisation: state <- 0, step, add seed, step.
        let initseq = ((stream as u128) << 1) | 1;
        let mut g = Pcg64 {
            state: 0,
            inc: initseq,
        };
        g.step();
        g.state = g.state.wrapping_add(seed as u128);
        g.step();
        g
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
    }
}

impl Rng64 for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        // XSL-RR: xor the halves, rotate by the top 6 bits.
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }
}

impl Substreams for Pcg64 {
    fn substream(&self, k: u64) -> Self {
        // Derive a new stream id from the current increment and k; the LCG
        // increment uniquely determines the orbit, so distinct k give
        // distinct, non-overlapping-in-practice sequences.
        let base_stream = (self.inc >> 1) as u64;
        let mut g = *self;
        g.inc =
            (((base_stream.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))) as u128) << 1) | 1;
        g.step();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Pcg64::seed_from(1);
        let mut b = Pcg64::seed_from(1);
        let mut c = Pcg64::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg64::seed_stream(42, 0);
        let mut b = Pcg64::seed_stream(42, 1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substreams_distinct() {
        let base = Pcg64::seed_from(7);
        let mut s1 = base.substream(1);
        let mut s2 = base.substream(2);
        let v1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn uniform_bit_balance() {
        // Each of the 64 bit positions should be set ~50% of the time.
        let mut r = Pcg64::seed_from(11);
        let n = 20_000;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let x = r.next_u64();
            for (b, c) in counts.iter_mut().enumerate() {
                *c += ((x >> b) & 1) as u32;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.02, "bit {b}: {frac}");
        }
    }
}
