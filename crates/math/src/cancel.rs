//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] is a cheap, cloneable handle the serving layer
//! threads into an engine's execute hot loop. The engine polls
//! [`CancelToken::is_cancelled`] at its natural work boundary — one
//! Monte Carlo path block, one lattice or FD time step — and bails out
//! with a typed error instead of burning cores on an answer nobody is
//! waiting for any more.
//!
//! Two trigger sources, checked in order of cost:
//!
//! * an explicit flag ([`CancelToken::cancel`], one relaxed atomic
//!   load to poll);
//! * an optional wall-clock deadline ([`CancelToken::with_deadline`],
//!   one `Instant::now()` call to poll).
//!
//! The default token ([`CancelToken::never`]) carries no state at all:
//! polling it is a single `Option` discriminant test, so plans that are
//! never cancelled pay effectively nothing for the hook. Cancellation
//! is purely a *scheduling* outcome — a run that completes without
//! tripping the token is bitwise-identical to one executed without any
//! token, because the poll never touches the numerical state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cancellation state: an explicit flag plus an optional
/// wall-clock deadline.
#[derive(Debug)]
struct Shared {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle; clones share the trigger state.
///
/// ```
/// use mdp_math::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// assert!(!CancelToken::never().is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    shared: Option<Arc<Shared>>,
}

impl CancelToken {
    /// A token that can only be cancelled explicitly.
    pub fn new() -> Self {
        CancelToken {
            shared: Some(Arc::new(Shared {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// The inert token: never cancels, polls for free. This is the
    /// default state of every engine plan.
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// A token that trips when the wall clock reaches `deadline` (or
    /// earlier, via [`CancelToken::cancel`]).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            shared: Some(Arc::new(Shared {
                flag: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Trip the token explicitly. Inert tokens ignore the call.
    pub fn cancel(&self) {
        if let Some(s) = &self.shared {
            s.flag.store(true, Ordering::Release);
        }
    }

    /// Poll the token. Engines call this at work-item boundaries; the
    /// flag is checked before the (costlier) deadline clock read.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.shared {
            None => false,
            Some(s) => {
                s.flag.load(Ordering::Acquire)
                    || s.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// The deadline this token trips at, when one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.shared.as_ref().and_then(|s| s.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_token_never_cancels() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn explicit_cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn past_deadline_trips_immediately() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        assert!(future.deadline().is_some());
        future.cancel();
        assert!(future.is_cancelled(), "explicit cancel beats the clock");
    }
}
