//! Brownian path construction: incremental and Brownian-bridge orderings.
//!
//! A discretised Brownian motion W(t₁),…,W(t_N) can be built from N i.i.d.
//! normals in any order. For pseudo-random Monte Carlo the order is
//! irrelevant; for quasi-Monte Carlo it is decisive: the Brownian bridge
//! assigns the *earliest* Sobol' dimensions (which are the best
//! distributed) to the *largest-variance* features of the path (terminal
//! value first, then midpoints recursively), concentrating the integrand's
//! effective dimension in the well-covered coordinates.

/// Precomputed Brownian-bridge construction for a fixed time grid.
#[derive(Debug, Clone)]
pub struct BrownianBridge {
    /// Times of the grid (strictly increasing, positive).
    times: Vec<f64>,
    /// For construction step k (k ≥ 1): index being fixed.
    bridge_index: Vec<usize>,
    /// Left anchor index + 1 (0 means "time 0 anchor" i.e. W=0).
    left_index: Vec<usize>,
    /// Right anchor index + 1 (0 means "no right anchor").
    right_index: Vec<usize>,
    /// Interpolation weight toward the left anchor.
    left_weight: Vec<f64>,
    /// Interpolation weight toward the right anchor.
    right_weight: Vec<f64>,
    /// Conditional standard deviation at each step.
    std_dev: Vec<f64>,
}

impl BrownianBridge {
    /// Build a bridge over `times` (strictly increasing, all > 0).
    ///
    /// # Panics
    /// Panics on an empty or non-increasing grid, or t ≤ 0.
    pub fn new(times: &[f64]) -> Self {
        assert!(!times.is_empty(), "empty time grid");
        assert!(times[0] > 0.0, "times must be positive");
        for w in times.windows(2) {
            assert!(w[0] < w[1], "times must be strictly increasing");
        }
        let n = times.len();
        let mut bridge_index = vec![0usize; n];
        let mut left_index = vec![0usize; n];
        let mut right_index = vec![0usize; n];
        let mut left_weight = vec![0.0; n];
        let mut right_weight = vec![0.0; n];
        let mut std_dev = vec![0.0; n];
        // map[i] = construction step at which point i is set (usize::MAX = unset).
        let mut map = vec![usize::MAX; n];

        // Step 0: terminal point, unconditional N(0, t_{n-1}).
        bridge_index[0] = n - 1;
        std_dev[0] = times[n - 1].sqrt();
        left_weight[0] = 0.0;
        right_weight[0] = 0.0;
        left_index[0] = 0;
        right_index[0] = 0;
        map[n - 1] = 0;

        // Subsequent steps: repeatedly bisect the largest unset gap —
        // realised with the classic J niffy loop from Glasserman (2004).
        let mut j = 0usize;
        for step in 1..n {
            // Find the first unset index at or after j.
            while map[j] != usize::MAX {
                j += 1;
            }
            // Find the next set index after j (right anchor).
            let mut k = j;
            while k < n && map[k] == usize::MAX {
                k += 1;
            }
            // Midpoint of [j-1, k].
            let l = j + (k - 1 - j) / 2;
            map[l] = step;
            bridge_index[step] = l;
            left_index[step] = j; // j == 0 means anchor at time 0
            right_index[step] = k + 1; // store k+1; k == n would mean none, but k < n here
            let t_left = if j == 0 { 0.0 } else { times[j - 1] };
            let t_right = times[k];
            let t_mid = times[l];
            left_weight[step] = (t_right - t_mid) / (t_right - t_left);
            right_weight[step] = (t_mid - t_left) / (t_right - t_left);
            std_dev[step] = ((t_mid - t_left) * (t_right - t_mid) / (t_right - t_left)).sqrt();
            j = k + 1;
            if j >= n {
                j = 0;
            }
        }
        BrownianBridge {
            times: times.to_vec(),
            bridge_index,
            left_index,
            right_index,
            left_weight,
            right_weight,
            std_dev,
        }
    }

    /// Uniform grid `T/n, 2T/n, …, T`.
    pub fn uniform(maturity: f64, steps: usize) -> Self {
        assert!(steps > 0 && maturity > 0.0);
        let dt = maturity / steps as f64;
        let times: Vec<f64> = (1..=steps).map(|i| i as f64 * dt).collect();
        Self::new(&times)
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The time grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Transform i.i.d. standard normals `z[0..n]` into a Brownian path
    /// `w[0..n]` at the grid times (W(0)=0 implicit).
    ///
    /// `z[0]` drives the terminal value; later z's fill midpoints.
    ///
    /// # Panics
    /// Panics if slice lengths differ from the grid length.
    pub fn build_path(&self, z: &[f64], w: &mut [f64]) {
        let n = self.len();
        assert_eq!(z.len(), n);
        assert_eq!(w.len(), n);
        w[self.bridge_index[0]] = self.std_dev[0] * z[0];
        for step in 1..n {
            let l = self.bridge_index[step];
            let left = if self.left_index[step] == 0 {
                0.0
            } else {
                w[self.left_index[step] - 1]
            };
            let right = w[self.right_index[step] - 1];
            w[l] = self.left_weight[step] * left
                + self.right_weight[step] * right
                + self.std_dev[step] * z[step];
        }
    }

    /// Convert a path of W values into increments ΔW over the grid.
    pub fn increments(&self, w: &[f64], dw: &mut [f64]) {
        let n = self.len();
        assert_eq!(w.len(), n);
        assert_eq!(dw.len(), n);
        let mut prev = 0.0;
        for i in 0..n {
            dw[i] = w[i] - prev;
            prev = w[i];
        }
    }
}

/// Build a Brownian path by simple forward increments:
/// `w[i] = w[i-1] + √Δtᵢ · z[i]`. The pseudo-random default.
pub fn incremental_path(times: &[f64], z: &[f64], w: &mut [f64]) {
    assert_eq!(times.len(), z.len());
    assert_eq!(times.len(), w.len());
    let mut prev_t = 0.0;
    let mut prev_w = 0.0;
    for i in 0..times.len() {
        let dt = times[i] - prev_t;
        debug_assert!(dt > 0.0);
        prev_w += dt.sqrt() * z[i];
        w[i] = prev_w;
        prev_t = times[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{NormalPolar, NormalSampler, Xoshiro256StarStar};

    #[test]
    fn single_point_bridge_is_scaled_normal() {
        let b = BrownianBridge::new(&[4.0]);
        let mut w = [0.0];
        b.build_path(&[1.5], &mut w);
        assert_eq!(w[0], 2.0 * 1.5);
    }

    #[test]
    fn bridge_terminal_uses_first_normal() {
        let b = BrownianBridge::uniform(1.0, 8);
        let mut z = vec![0.0; 8];
        z[0] = 2.0;
        let mut w = vec![0.0; 8];
        b.build_path(&z, &mut w);
        // With only z[0] nonzero, terminal = √T·z0 and interior points are
        // linear interpolations of it.
        assert!((w[7] - 2.0).abs() < 1e-14);
        for i in 0..7 {
            let expected = (i + 1) as f64 / 8.0 * 2.0;
            assert!((w[i] - expected).abs() < 1e-12, "i={i}: {}", w[i]);
        }
    }

    #[test]
    fn bridge_distribution_matches_brownian_motion() {
        // Var(W(t_i)) = t_i and Cov(W(s), W(t)) = min(s,t).
        let steps = 4;
        let b = BrownianBridge::uniform(1.0, steps);
        let mut rng = Xoshiro256StarStar::seed_from(11);
        let mut ns = NormalPolar::new();
        let n = 200_000;
        let mut sum = vec![0.0; steps];
        let mut sumsq = vec![0.0; steps];
        let mut cov03 = 0.0;
        let mut z = vec![0.0; steps];
        let mut w = vec![0.0; steps];
        for _ in 0..n {
            for zi in z.iter_mut() {
                *zi = ns.sample(&mut rng);
            }
            b.build_path(&z, &mut w);
            for i in 0..steps {
                sum[i] += w[i];
                sumsq[i] += w[i] * w[i];
            }
            cov03 += w[0] * w[3];
        }
        for i in 0..steps {
            let mean = sum[i] / n as f64;
            let var = sumsq[i] / n as f64 - mean * mean;
            let t = (i + 1) as f64 / steps as f64;
            assert!(mean.abs() < 0.01, "mean[{i}] {mean}");
            assert!((var - t).abs() < 0.01, "var[{i}] {var} vs {t}");
        }
        let c = cov03 / n as f64;
        assert!((c - 0.25).abs() < 0.01, "cov(W(0.25), W(1)) {c}");
    }

    #[test]
    fn incremental_matches_bridge_in_distribution_mean() {
        // Not pathwise equal, but terminal variance must agree.
        let times: Vec<f64> = (1..=16).map(|i| i as f64 / 16.0).collect();
        let mut rng = Xoshiro256StarStar::seed_from(3);
        let mut ns = NormalPolar::new();
        let n = 100_000;
        let mut var_term = 0.0;
        let mut z = vec![0.0; 16];
        let mut w = vec![0.0; 16];
        for _ in 0..n {
            for zi in z.iter_mut() {
                *zi = ns.sample(&mut rng);
            }
            incremental_path(&times, &z, &mut w);
            var_term += w[15] * w[15];
        }
        let v = var_term / n as f64;
        assert!((v - 1.0).abs() < 0.02, "terminal var {v}");
    }

    #[test]
    fn increments_reconstruct_path() {
        let b = BrownianBridge::uniform(2.0, 5);
        let z = [0.3, -0.7, 1.1, 0.0, -0.2];
        let mut w = [0.0; 5];
        b.build_path(&z, &mut w);
        let mut dw = [0.0; 5];
        b.increments(&w, &mut dw);
        let mut acc = 0.0;
        for i in 0..5 {
            acc += dw[i];
            assert!((acc - w[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn non_power_of_two_grid_is_complete() {
        for n in [3usize, 5, 7, 11, 100] {
            let b = BrownianBridge::uniform(1.0, n);
            let z = vec![1.0; n];
            let mut w = vec![f64::NAN; n];
            b.build_path(&z, &mut w);
            assert!(w.iter().all(|x| x.is_finite()), "n={n}: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_times() {
        let _ = BrownianBridge::new(&[1.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_time() {
        let _ = BrownianBridge::new(&[0.0, 1.0]);
    }
}
