//! Special functions for the Gaussian world of Black–Scholes pricing.
//!
//! * [`norm_pdf`], [`norm_cdf`] — standard normal density and distribution.
//!   The cdf uses Graeme West's double-precision rational approximation
//!   (absolute error below 1e-15 across the real line), the de-facto
//!   standard in quantitative-finance libraries.
//! * [`erf`], [`erfc`] — derived from the normal cdf by
//!   `erf(x) = 2Φ(x√2) − 1`.
//! * [`inv_norm_cdf`] — Acklam's rational approximation polished by one
//!   Halley step, giving ~1e-15 relative accuracy; monotone on (0,1).
//! * [`bivariate_norm_cdf`] — P(X ≤ h, Y ≤ k) for standard bivariate
//!   normals with correlation ρ, computed from Plackett's identity
//!   `∂Φ₂/∂ρ = φ₂(h,k,ρ)` with Gauss–Legendre quadrature in ρ.

use crate::quadrature::GaussLegendre;

/// 1/√(2π).
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Standard normal probability density `φ(x)`.
#[inline]
pub fn norm_pdf(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution `Φ(x)`.
///
/// West (2005) "Better approximations to cumulative normal functions";
/// max absolute error < 1e-15.
pub fn norm_cdf(x: f64) -> f64 {
    let z = x.abs();
    let cum = if z > 37.0 {
        0.0
    } else {
        let e = (-z * z / 2.0).exp();
        if z < 7.071_067_811_865_475 {
            let mut b = 3.526_249_659_989_11e-2 * z + 0.700_383_064_443_688;
            b = b * z + 6.373_962_203_531_65;
            b = b * z + 33.912_866_078_383;
            b = b * z + 112.079_291_497_871;
            b = b * z + 221.213_596_169_931;
            b = b * z + 220.206_867_912_376;
            let mut c = 8.838_834_764_831_84e-2 * z + 1.755_667_163_182_64;
            c = c * z + 16.064_177_579_207;
            c = c * z + 86.780_732_202_946_1;
            c = c * z + 296.564_248_779_674;
            c = c * z + 637.333_633_378_831;
            c = c * z + 793.826_512_519_948;
            c = c * z + 440.413_735_824_752;
            e * b / c
        } else {
            let b = z + 0.65;
            let b = z + 4.0 / b;
            let b = z + 3.0 / b;
            let b = z + 2.0 / b;
            let b = z + 1.0 / b;
            e / (b * 2.506_628_274_631_000_5)
        }
    };
    if x <= 0.0 {
        cum
    } else {
        1.0 - cum
    }
}

/// Error function `erf(x)`.
#[inline]
pub fn erf(x: f64) -> f64 {
    2.0 * norm_cdf(x * std::f64::consts::SQRT_2) - 1.0
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, accurate in the
/// upper tail (uses the cdf's tail branch directly).
#[inline]
pub fn erfc(x: f64) -> f64 {
    2.0 * norm_cdf(-x * std::f64::consts::SQRT_2)
}

/// Inverse standard normal cdf `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's piecewise rational approximation (~1.15e-9 relative error)
/// refined by a single Halley iteration against [`norm_cdf`], pushing the
/// error to the order of machine epsilon.
///
/// Returns `±INFINITY` at `p = 0` / `p = 1` and `NaN` outside `[0, 1]`.
pub fn inv_norm_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement: u = (Φ(x) − p)/φ(x); x ← x − u/(1 + x·u/2).
    let e = norm_cdf(x) - p;
    let u = e / norm_pdf(x);
    x - u / (1.0 + 0.5 * x * u)
}

/// Standard bivariate normal density with correlation `rho`.
#[inline]
pub fn bivariate_norm_pdf(x: f64, y: f64, rho: f64) -> f64 {
    let om = 1.0 - rho * rho;
    let q = (x * x - 2.0 * rho * x * y + y * y) / om;
    (-0.5 * q).exp() / (std::f64::consts::TAU * om.sqrt())
}

/// Bivariate standard normal cdf `Φ₂(h, k; ρ) = P(X ≤ h, Y ≤ k)`.
///
/// Uses Plackett's identity `Φ₂(h,k;ρ) = Φ(h)Φ(k) + ∫₀^ρ φ₂(h,k;r) dr`,
/// integrating with 64-point Gauss–Legendre in a variable that clusters
/// nodes near |r| → 1 (substitution r = sin θ), which keeps 12+ digits even
/// for |ρ| up to 0.9999. Exact limits are used for |ρ| = 1.
///
/// # Panics
/// Panics if `|rho| > 1`.
pub fn bivariate_norm_cdf(h: f64, k: f64, rho: f64) -> f64 {
    assert!(rho.abs() <= 1.0, "correlation must lie in [-1, 1]");
    if h.is_infinite() || k.is_infinite() {
        // Marginal limits.
        if h == f64::NEG_INFINITY || k == f64::NEG_INFINITY {
            return 0.0;
        }
        if h == f64::INFINITY {
            return norm_cdf(k);
        }
        return norm_cdf(h);
    }
    if rho == 1.0 {
        return norm_cdf(h.min(k));
    }
    if rho == -1.0 {
        return (norm_cdf(h) + norm_cdf(k) - 1.0).max(0.0);
    }
    // Substitute r = sin θ: dr = cos θ dθ and 1 − r² = cos²θ, which cancels
    // the 1/√(1−r²) singularity of the density entirely.
    let theta_max = rho.asin();
    let gl = GaussLegendre::new(64);
    let integral = gl.integrate(0.0, theta_max, |theta| {
        let (s, c) = theta.sin_cos();
        let q = (h * h - 2.0 * s * h * k + k * k) / (c * c);
        // φ₂(h,k,sinθ)·cosθ — the cosθ Jacobian cancels the 1/√(1−r²).
        (-0.5 * q).exp() / std::f64::consts::TAU
    });
    (norm_cdf(h) * norm_cdf(k) + integral).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn norm_cdf_known_values() {
        assert!(approx_eq(norm_cdf(0.0), 0.5, 1e-15));
        assert!(approx_eq(norm_cdf(1.0), 0.841_344_746_068_542_9, 1e-12));
        assert!(approx_eq(norm_cdf(-1.0), 0.158_655_253_931_457_05, 1e-12));
        assert!(approx_eq(norm_cdf(1.96), 0.975_002_104_851_779_5, 1e-12));
        assert!(approx_eq(norm_cdf(2.0), 0.977_249_868_051_820_8, 1e-12));
        assert!(approx_eq(norm_cdf(-3.0), 1.349_898_031_630_094_5e-3, 1e-10));
    }

    #[test]
    fn norm_cdf_deep_tails() {
        assert!(approx_eq(norm_cdf(-8.0), 6.220_960_574_271_786e-16, 1e-6));
        assert_eq!(norm_cdf(-40.0), 0.0);
        assert_eq!(norm_cdf(40.0), 1.0);
    }

    #[test]
    fn norm_cdf_complementarity() {
        for i in 0..200 {
            let x = -5.0 + 0.05 * i as f64;
            let s = norm_cdf(x) + norm_cdf(-x);
            assert!(approx_eq(s, 1.0, 1e-14), "x={x}: {s}");
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(approx_eq(erf(0.0), 0.0, 1e-15));
        assert!(approx_eq(erf(1.0), 0.842_700_792_949_714_9, 1e-12));
        assert!(approx_eq(erf(-1.0), -0.842_700_792_949_714_9, 1e-12));
        assert!(approx_eq(erfc(2.0), 4.677_734_981_063_133e-3, 1e-10));
    }

    #[test]
    fn inv_norm_cdf_round_trip() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = inv_norm_cdf(p);
            assert!(approx_eq(norm_cdf(x), p, 1e-12), "p={p}");
        }
    }

    #[test]
    fn inv_norm_cdf_extreme_round_trip() {
        for &p in &[1e-10, 1e-8, 1e-6, 1.0 - 1e-6, 1.0 - 1e-10] {
            let x = inv_norm_cdf(p);
            assert!(approx_eq(norm_cdf(x), p, 1e-9), "p={p} x={x}");
        }
    }

    #[test]
    fn inv_norm_cdf_known_values() {
        assert!(approx_eq(inv_norm_cdf(0.5), 0.0, 1e-15));
        assert!(approx_eq(inv_norm_cdf(0.975), 1.959_963_984_540_054, 1e-10));
        assert!(approx_eq(
            inv_norm_cdf(0.05),
            -1.644_853_626_951_472_2,
            1e-10
        ));
    }

    #[test]
    fn inv_norm_cdf_edges() {
        assert_eq!(inv_norm_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_norm_cdf(1.0), f64::INFINITY);
        assert!(inv_norm_cdf(-0.1).is_nan());
        assert!(inv_norm_cdf(1.1).is_nan());
        assert!(inv_norm_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn bivariate_zero_correlation_factorises() {
        for &(h, k) in &[(0.0, 0.0), (1.0, -0.5), (-2.0, 0.3), (2.5, 2.5)] {
            let v = bivariate_norm_cdf(h, k, 0.0);
            assert!(
                approx_eq(v, norm_cdf(h) * norm_cdf(k), 1e-13),
                "h={h} k={k}: {v}"
            );
        }
    }

    #[test]
    fn bivariate_origin_known_value() {
        // Φ₂(0,0;ρ) = 1/4 + asin(ρ)/(2π).
        for &rho in &[-0.9, -0.5, 0.0, 0.3, 0.7, 0.95] {
            let v = bivariate_norm_cdf(0.0, 0.0, rho);
            let exact = 0.25 + rho.asin() / std::f64::consts::TAU;
            assert!(approx_eq(v, exact, 1e-12), "rho={rho}: {v} vs {exact}");
        }
    }

    #[test]
    fn bivariate_perfect_correlation_limits() {
        assert!(approx_eq(
            bivariate_norm_cdf(0.5, 1.5, 1.0),
            norm_cdf(0.5),
            1e-15
        ));
        assert!(approx_eq(
            bivariate_norm_cdf(0.5, -0.2, -1.0),
            (norm_cdf(0.5) + norm_cdf(-0.2) - 1.0).max(0.0),
            1e-15
        ));
    }

    #[test]
    fn bivariate_symmetry_in_arguments() {
        let a = bivariate_norm_cdf(0.7, -0.3, 0.6);
        let b = bivariate_norm_cdf(-0.3, 0.7, 0.6);
        assert!(approx_eq(a, b, 1e-13));
    }

    #[test]
    fn bivariate_monotone_in_rho() {
        // For h,k fixed, Φ₂ increases with ρ (Plackett).
        let mut prev = bivariate_norm_cdf(0.3, -0.4, -0.99);
        for i in 1..=40 {
            let rho = -0.99 + i as f64 * (1.98 / 40.0);
            let v = bivariate_norm_cdf(0.3, -0.4, rho);
            assert!(v >= prev - 1e-12, "rho={rho}");
            prev = v;
        }
    }

    #[test]
    fn bivariate_marginal_consistency() {
        // Φ₂(h, ∞; ρ) = Φ(h).
        assert!(approx_eq(
            bivariate_norm_cdf(0.8, f64::INFINITY, 0.5),
            norm_cdf(0.8),
            1e-14
        ));
        assert_eq!(bivariate_norm_cdf(f64::NEG_INFINITY, 1.0, 0.5), 0.0);
    }

    #[test]
    fn bivariate_high_correlation_stable() {
        // Near-singular ρ should still be sane and bounded. The true gap
        // Φ(1) − Φ₂(1,1;0.9999) is ≈ 1.4e-3 (≈ φ(1)·√(1−ρ²)/√(2π)·…).
        let v = bivariate_norm_cdf(1.0, 1.0, 0.9999);
        assert!(v <= norm_cdf(1.0) + 1e-12);
        assert!(v >= norm_cdf(1.0) - 5e-3);
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn bivariate_rejects_bad_rho() {
        let _ = bivariate_norm_cdf(0.0, 0.0, 1.5);
    }
}
