//! Cholesky factorisation `A = L·Lᵀ` for symmetric positive-definite
//! matrices.
//!
//! The single most important factorisation in multi-asset pricing: the
//! correlation matrix of the d driving Brownian motions is factored once,
//! and every path step maps i.i.d. normals z to correlated normals L·z.

use super::Matrix;
use crate::MathError;

/// Lower-triangular Cholesky factor of an SPD matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Returns [`MathError::NotSquare`] for non-square input,
    /// [`MathError::NotPositiveDefinite`] when a pivot is ≤ 0 (up to a
    /// small tolerance scaled by the matrix norm).
    pub fn factor(a: &Matrix) -> Result<Self, MathError> {
        if !a.is_square() {
            return Err(MathError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        let tol = 1e-12 * a.max_abs().max(1.0);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= tol {
                return Err(MathError::NotPositiveDefinite { pivot: d, index: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor L.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension n.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Map i.i.d. standard normals `z` to correlated normals `L·z`,
    /// writing into `out`. Exploits the triangular structure (n²/2 flops).
    ///
    /// # Panics
    /// Panics if `z.len() != n` or `out.len() != n`.
    pub fn correlate(&self, z: &[f64], out: &mut [f64]) {
        let n = self.dim();
        assert_eq!(z.len(), n);
        assert_eq!(out.len(), n);
        for i in 0..n {
            let row = self.l.row(i);
            let mut acc = 0.0;
            for (lik, zk) in row[..=i].iter().zip(z) {
                acc += lik * zk;
            }
            out[i] = acc;
        }
    }

    /// Solve `A x = b` via forward and back substitution.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n);
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Determinant of A (product of squared diagonal of L).
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.dim() {
            let lii = self.l[(i, i)];
            d *= lii * lii;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
    }

    #[test]
    fn reconstructs_input() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.l().mul_checked(&ch.l().transpose()).unwrap();
        assert!((&back - &a).max_abs() < 1e-12);
    }

    #[test]
    fn factor_is_lower_triangular() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        let back = a.mul_vec(&x);
        for (bb, rb) in b.iter().zip(&back) {
            assert!(approx_eq(*bb, *rb, 1e-12));
        }
    }

    #[test]
    fn det_positive_for_spd() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        // det(spd3) computed by cofactor expansion: 4(15-1) - 2(6-0.6) + 0.6(2-3)
        let exact = 4.0 * (5.0 * 3.0 - 1.0) - 2.0 * (2.0 * 3.0 - 0.6) + 0.6 * (2.0 - 3.0);
        assert!(approx_eq(ch.det(), exact, 1e-12), "{}", ch.det());
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(MathError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(MathError::NotSquare { .. })
        ));
    }

    #[test]
    fn correlate_reproduces_correlation() {
        // Empirical correlation of L·z over many draws ≈ target.
        use crate::rng::{NormalPolar, NormalSampler, Rng64, Xoshiro256StarStar};
        let rho = 0.65;
        let a = Matrix::from_rows(&[vec![1.0, rho], vec![rho, 1.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from(77);
        let mut ns = NormalPolar::new();
        let n = 200_000;
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        let mut z = [0.0; 2];
        let mut w = [0.0; 2];
        let _ = rng.next_u64();
        for _ in 0..n {
            z[0] = ns.sample(&mut rng);
            z[1] = ns.sample(&mut rng);
            ch.correlate(&z, &mut w);
            sxy += w[0] * w[1];
            sxx += w[0] * w[0];
            syy += w[1] * w[1];
        }
        let corr = sxy / (sxx.sqrt() * syy.sqrt());
        assert!((corr - rho).abs() < 0.01, "corr {corr}");
    }

    #[test]
    fn identity_correlation_is_identity_map() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let z = [0.3, -1.2, 0.8, 2.0];
        let mut out = [0.0; 4];
        ch.correlate(&z, &mut out);
        assert_eq!(out, z);
    }
}
