//! Householder QR factorisation and least squares.
//!
//! The Longstaff–Schwartz regression solves `min ‖X β − y‖₂` where X is a
//! tall basis matrix whose columns (powers of moneyness etc.) can be highly
//! collinear. QR is backward stable where the normal equations square the
//! condition number, so this is the solver the LSMC engine uses.

use super::Matrix;
use crate::MathError;

/// Householder QR of an `m × n` matrix with `m ≥ n`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors below the diagonal; R on and above it.
    qr: Matrix,
    /// Diagonal of R (the packed diagonal holds the v's leading entry).
    rdiag: Vec<f64>,
}

impl Qr {
    /// Factor an `m × n` matrix (`m ≥ n`).
    ///
    /// Returns [`MathError::DimensionMismatch`] for underdetermined shapes
    /// and [`MathError::Singular`] when a column is (numerically) linearly
    /// dependent — the caller should shrink the basis.
    pub fn factor(a: &Matrix) -> Result<Self, MathError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(MathError::DimensionMismatch {
                op: "QR (need rows >= cols)",
                left: (m, n),
                right: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut rdiag = vec![0.0; n];
        let scale = a.max_abs().max(1.0);
        for k in 0..n {
            // Norm of the k-th column below the diagonal.
            let mut nrm = 0.0f64;
            for i in k..m {
                nrm = nrm.hypot(qr[(i, k)]);
            }
            if nrm < 1e-14 * scale {
                return Err(MathError::Singular { index: k });
            }
            // Choose sign to avoid cancellation.
            if qr[(k, k)] < 0.0 {
                nrm = -nrm;
            }
            for i in k..m {
                qr[(i, k)] /= nrm;
            }
            qr[(k, k)] += 1.0;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s = -s / qr[(k, k)];
                for i in k..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] += s * vik;
                }
            }
            rdiag[k] = -nrm;
        }
        Ok(Qr { qr, rdiag })
    }

    /// Number of columns n (size of the solution vector).
    pub fn n(&self) -> usize {
        self.qr.cols()
    }

    /// Number of rows m.
    pub fn m(&self) -> usize {
        self.qr.rows()
    }

    /// Least-squares solve `min ‖A x − b‖₂`.
    ///
    /// # Panics
    /// Panics if `b.len() != m`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = (self.m(), self.n());
        assert_eq!(b.len(), m);
        let mut y = b.to_vec();
        // Apply Qᵀ to b.
        for k in 0..n {
            let mut s = 0.0;
            for i in k..m {
                s += self.qr[(i, k)] * y[i];
            }
            s = -s / self.qr[(k, k)];
            for i in k..m {
                y[i] += s * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = (Qᵀ b)[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            x[i] = s / self.rdiag[i];
        }
        x
    }

    /// Residual 2-norm ‖A x − b‖₂ for a given solution (diagnostic).
    pub fn residual_norm(&self, a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x);
        ax.iter()
            .zip(b)
            .map(|(l, r)| (l - r) * (l - r))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn square_solve_matches_lu() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ]);
        let b = [5.0, -2.0, 9.0];
        let x = Qr::factor(&a).unwrap().solve(&b);
        let lu = crate::linalg::Lu::factor(&a).unwrap().solve(&b);
        for (q, l) in x.iter().zip(&lu) {
            assert!(approx_eq(*q, *l, 1e-12), "{q} vs {l}");
        }
    }

    #[test]
    fn overdetermined_recovers_exact_fit() {
        // y = 2 + 3 t sampled without noise: LS must recover [2, 3].
        let ts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![1.0, t]).collect();
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 + 3.0 * t).collect();
        let x = Qr::factor(&a).unwrap().solve(&b);
        assert!(approx_eq(x[0], 2.0, 1e-12));
        assert!(approx_eq(x[1], 3.0, 1e-12));
    }

    #[test]
    fn least_squares_residual_orthogonal() {
        // For LS solution, residual must be orthogonal to column space.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ]);
        let b = [1.0, 0.0, 2.0, 1.5];
        let x = Qr::factor(&a).unwrap().solve(&b);
        let ax = a.mul_vec(&x);
        let r: Vec<f64> = ax.iter().zip(&b).map(|(l, rr)| rr - l).collect();
        let at = a.transpose();
        let atr = at.mul_vec(&r);
        for v in atr {
            assert!(v.abs() < 1e-12, "normal-equation residual {v}");
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Second column is 2× the first.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        assert!(matches!(Qr::factor(&a), Err(MathError::Singular { .. })));
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Qr::factor(&a),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn handles_ill_conditioned_vandermonde() {
        // Degree-5 Vandermonde on [0,1] — condition ~1e5; QR should still
        // fit a quintic exactly to ~1e-8.
        let ts: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
        let rows: Vec<Vec<f64>> = ts
            .iter()
            .map(|&t| (0..6).map(|p| t.powi(p)).collect())
            .collect();
        let a = Matrix::from_rows(&rows);
        let coeffs = [1.0, -2.0, 0.5, 3.0, -1.5, 0.25];
        let b: Vec<f64> = ts
            .iter()
            .map(|&t| {
                coeffs
                    .iter()
                    .enumerate()
                    .map(|(p, c)| c * t.powi(p as i32))
                    .sum()
            })
            .collect();
        let x = Qr::factor(&a).unwrap().solve(&b);
        for (got, want) in x.iter().zip(&coeffs) {
            assert!(approx_eq(*got, *want, 1e-8), "{got} vs {want}");
        }
    }
}
