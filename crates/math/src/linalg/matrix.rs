//! Row-major dense matrix.

use crate::MathError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major `f64` matrix.
///
/// Deliberately minimal: shaped storage, element access, arithmetic,
/// matrix–vector and matrix–matrix products, transpose, norms. Factor-based
/// solvers live in the sibling modules.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        y
    }

    /// Matrix–matrix product, checked.
    pub fn mul_checked(&self, rhs: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj order: streams through rhs rows, cache-friendlier than ijk.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += aik * r;
                }
            }
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max-abs entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// True when symmetric to tolerance `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mul_checked(rhs).expect("matmul dimension mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_times_anything() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&i * &a, a);
        assert_eq!(&a * &i, a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = &a * &b;
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    fn mul_checked_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul_checked(&b),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0], vec![2.0, 0.5]]);
        let y = a.mul_vec(&[3.0, 4.0]);
        assert_eq!(y, vec![-1.0, 8.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = &(&a + &a) - &a;
        assert_eq!(b, a);
        let c = &a * 2.0;
        assert_eq!(c[(1, 1)], 8.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!(approx_eq(a.frobenius_norm(), 5.0, 1e-15));
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let ns = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        assert!(!ns.is_symmetric(1e-9));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn display_renders() {
        let a = Matrix::identity(2);
        let s = format!("{a}");
        assert!(s.contains("1.000000"));
    }
}
