//! Tridiagonal solvers: sequential Thomas algorithm and parallel cyclic
//! reduction.
//!
//! Crank–Nicolson and ADI time stepping reduce each line of the PDE grid
//! to a tridiagonal system. The Thomas algorithm is O(n) but inherently
//! sequential; cyclic reduction is O(n log n) work with O(log n) span and
//! is the classic way the 2002-era literature parallelised implicit
//! sweeps, so both are provided (and the ablation bench compares them).

use crate::MathError;

/// Reusable forward-elimination workspace for
/// [`Tridiag::solve_thomas_into`], so batched line solves (ADI sweeps
/// solve thousands per time step) allocate once instead of per line.
#[derive(Debug, Clone, Default)]
pub struct ThomasScratch {
    /// Eliminated super-diagonal `c'`.
    cp: Vec<f64>,
    /// Eliminated right-hand side `d'`.
    dp: Vec<f64>,
}

/// A tridiagonal system `a_i x_{i-1} + b_i x_i + c_i x_{i+1} = d_i`.
///
/// `a[0]` and `c[n-1]` are ignored (conventionally zero).
#[derive(Debug, Clone)]
pub struct Tridiag {
    /// Sub-diagonal (length n; `a[0]` unused).
    pub a: Vec<f64>,
    /// Diagonal (length n).
    pub b: Vec<f64>,
    /// Super-diagonal (length n; `c[n-1]` unused).
    pub c: Vec<f64>,
}

impl Tridiag {
    /// Construct and validate band lengths.
    ///
    /// # Panics
    /// Panics when the three bands disagree in length.
    pub fn new(a: Vec<f64>, b: Vec<f64>, c: Vec<f64>) -> Self {
        assert_eq!(a.len(), b.len(), "band length mismatch");
        assert_eq!(b.len(), c.len(), "band length mismatch");
        Tridiag { a, b, c }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// Multiply `T·x` (for residual checks and explicit stepping).
    ///
    /// # Panics
    /// Panics if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = self.b[i] * x[i];
            if i > 0 {
                s += self.a[i] * x[i - 1];
            }
            if i + 1 < n {
                s += self.c[i] * x[i + 1];
            }
            y[i] = s;
        }
        y
    }

    /// Solve with the Thomas algorithm (O(n), sequential).
    ///
    /// Numerically safe for diagonally dominant systems, which all the
    /// PDE discretisations in this workspace produce.
    pub fn solve_thomas(&self, d: &[f64]) -> Result<Vec<f64>, MathError> {
        let mut x = vec![0.0; self.n()];
        self.solve_thomas_into(d, &mut ThomasScratch::default(), &mut x)?;
        Ok(x)
    }

    /// [`Self::solve_thomas`] writing the solution into `x` and reusing
    /// the elimination buffers in `scratch` — the allocation-free form
    /// batched line solves call in a loop. Arithmetic is identical to
    /// `solve_thomas`, so results are bitwise equal.
    ///
    /// # Panics
    /// Panics when `d` or `x` disagree with the system size.
    pub fn solve_thomas_into(
        &self,
        d: &[f64],
        scratch: &mut ThomasScratch,
        x: &mut [f64],
    ) -> Result<(), MathError> {
        let n = self.n();
        assert_eq!(d.len(), n);
        assert_eq!(x.len(), n);
        if n == 0 {
            return Ok(());
        }
        scratch.cp.resize(n, 0.0);
        scratch.dp.resize(n, 0.0);
        let (cp, dp) = (&mut scratch.cp, &mut scratch.dp);
        if self.b[0].abs() < 1e-300 {
            return Err(MathError::Singular { index: 0 });
        }
        cp[0] = self.c[0] / self.b[0];
        dp[0] = d[0] / self.b[0];
        for i in 1..n {
            let m = self.b[i] - self.a[i] * cp[i - 1];
            if m.abs() < 1e-300 {
                return Err(MathError::Singular { index: i });
            }
            cp[i] = self.c[i] / m;
            dp[i] = (d[i] - self.a[i] * dp[i - 1]) / m;
        }
        x[n - 1] = dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = dp[i] - cp[i] * x[i + 1];
        }
        Ok(())
    }

    /// Precompute the Thomas elimination factors of this system for
    /// repeated solves against many right-hand sides.
    pub fn factor(&self) -> Result<FactoredTridiag, MathError> {
        FactoredTridiag::new(self)
    }

    /// Solve with cyclic (odd–even) reduction — O(n log n) work,
    /// O(log n) parallel span.
    ///
    /// Each level eliminates the odd-indexed unknowns in terms of their
    /// even neighbours; after log₂ n levels a single unknown remains and
    /// the recursion unwinds. Every level's eliminations are independent,
    /// which is what a parallel PDE sweep exploits.
    pub fn solve_cyclic_reduction(&self, d: &[f64]) -> Result<Vec<f64>, MathError> {
        let n = self.n();
        assert_eq!(d.len(), n);
        cr_solve(&self.a, &self.b, &self.c, d)
    }
}

/// Thomas elimination factors of a [`Tridiag`], computed once and reused
/// across arbitrarily many right-hand sides.
///
/// The ADI and Crank–Nicolson steppers solve the *same* constant matrix
/// `(I − θΔt·A)` for every grid line of every time step; the `c'` sweep
/// and the pivots `m_i = b_i − a_i·c'_{i−1}` depend only on the matrix,
/// so factoring once removes them from the per-line critical path.
///
/// **Bitwise contract**: the factors are computed with the exact same
/// expressions as [`Tridiag::solve_thomas_into`], and the per-solve
/// sweeps keep the *division* by the stored pivot (rather than
/// multiplying by a precomputed reciprocal, which would round
/// differently). Every solve is therefore bit-for-bit equal to the
/// unfactored Thomas solve — the parallel and blocked PDE drivers rely
/// on this to stay bitwise-identical to their scalar oracles.
#[derive(Debug, Clone)]
pub struct FactoredTridiag {
    /// Sub-diagonal of the original system (forward-sweep multiplier).
    a: Vec<f64>,
    /// Eliminated super-diagonal `c'_i = c_i / m_i`.
    cp: Vec<f64>,
    /// Forward-elimination pivots `m_0 = b_0`, `m_i = b_i − a_i·c'_{i−1}`.
    piv: Vec<f64>,
}

impl FactoredTridiag {
    /// Run the elimination sweep once, storing `c'` and the pivots.
    ///
    /// Fails (like the solve would) when a pivot underflows to zero.
    pub fn new(t: &Tridiag) -> Result<Self, MathError> {
        let n = t.n();
        let mut cp = vec![0.0; n];
        let mut piv = vec![0.0; n];
        if n > 0 {
            if t.b[0].abs() < 1e-300 {
                return Err(MathError::Singular { index: 0 });
            }
            piv[0] = t.b[0];
            cp[0] = t.c[0] / t.b[0];
            for i in 1..n {
                let m = t.b[i] - t.a[i] * cp[i - 1];
                if m.abs() < 1e-300 {
                    return Err(MathError::Singular { index: i });
                }
                piv[i] = m;
                cp[i] = t.c[i] / m;
            }
        }
        Ok(FactoredTridiag {
            a: t.a.clone(),
            cp,
            piv,
        })
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.piv.len()
    }

    /// Solve one right-hand side into `x`.
    ///
    /// Bitwise-equal to [`Tridiag::solve_thomas_into`] on the same
    /// system: `d'_i = (d_i − a_i·d'_{i−1}) / m_i` divides by the stored
    /// pivot exactly as the fused sweep does.
    ///
    /// # Panics
    /// Panics when `d` or `x` disagree with the system size.
    pub fn solve_into(&self, d: &[f64], x: &mut [f64]) {
        let n = self.n();
        assert_eq!(d.len(), n);
        assert_eq!(x.len(), n);
        if n == 0 {
            return;
        }
        // Forward sweep: x temporarily holds d'.
        x[0] = d[0] / self.piv[0];
        for i in 1..n {
            x[i] = (d[i] - self.a[i] * x[i - 1]) / self.piv[i];
        }
        // Back substitution.
        for i in (0..n - 1).rev() {
            x[i] -= self.cp[i] * x[i + 1];
        }
    }

    /// Solve a whole panel of right-hand sides in one pass.
    ///
    /// `panel` holds `w = panel.len() / n` independent systems in
    /// *transposed* (line-interleaved) layout: row `i` of the panel is
    /// the `w` lane values of unknown `i`, stored contiguously. Each
    /// sweep step then touches one contiguous row — stride-1 across
    /// lanes — so the compiler vectorises across the independent lines
    /// while the serial dependency runs down the rows. Per lane the
    /// arithmetic is exactly [`Self::solve_into`], so every line's
    /// solution is bitwise-equal to its scalar solve.
    ///
    /// # Panics
    /// Panics when `panel.len()` is not a multiple of the system size.
    pub fn solve_panel_transposed(&self, panel: &mut [f64]) {
        let n = self.n();
        if n == 0 {
            assert!(panel.is_empty(), "panel rows must match system size");
            return;
        }
        assert_eq!(panel.len() % n, 0, "panel rows must match system size");
        let w = panel.len() / n;
        // Forward sweep: panel row i becomes d'_i for every lane.
        for lane in &mut panel[..w] {
            *lane /= self.piv[0];
        }
        for i in 1..n {
            let (prev, cur) = panel[(i - 1) * w..].split_at_mut(w);
            let ai = self.a[i];
            let pivi = self.piv[i];
            for (x, &xm) in cur[..w].iter_mut().zip(prev.iter()) {
                *x = (*x - ai * xm) / pivi;
            }
        }
        // Back substitution, row by row upwards.
        for i in (0..n - 1).rev() {
            let (cur, next) = panel[i * w..].split_at_mut(w);
            let cpi = self.cp[i];
            for (x, &xp) in cur.iter_mut().zip(next[..w].iter()) {
                *x -= cpi * xp;
            }
        }
    }
}

/// The θ-scheme stage matrix `(I − θΔt·L)` for a constant-coefficient
/// spatial operator `L = a·∂₋ + b·I + c·∂₊` on `interior` unknowns.
///
/// Every finite-difference stepper in the workspace (Crank–Nicolson,
/// each ADI stage) builds exactly this system; sharing the construction
/// guarantees fresh plans and tick patches produce bit-identical bands
/// from equal inputs.
pub fn theta_system(theta: f64, dt: f64, a: f64, b: f64, c: f64, interior: usize) -> Tridiag {
    Tridiag::new(
        vec![-theta * dt * a; interior],
        vec![1.0 - theta * dt * b; interior],
        vec![-theta * dt * c; interior],
    )
}

/// [`theta_system`] plus its Thomas elimination factors, for steppers
/// that solve the stage matrix against many right-hand sides.
pub fn factored_theta_system(
    theta: f64,
    dt: f64,
    a: f64,
    b: f64,
    c: f64,
    interior: usize,
) -> Result<(Tridiag, FactoredTridiag), MathError> {
    let sys = theta_system(theta, dt, a, b, c, interior);
    let fac = sys.factor()?;
    Ok((sys, fac))
}

/// One recursive level of odd–even reduction.
///
/// Keeps the even-indexed unknowns: row 2j is combined with rows 2j±1 to
/// eliminate the odd unknowns, producing a tridiagonal system of size
/// ⌈n/2⌉; the odd unknowns are recovered afterwards from their even
/// neighbours. All eliminations within a level are independent.
fn cr_solve(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Result<Vec<f64>, MathError> {
    let n = b.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        if b[0].abs() < 1e-300 {
            return Err(MathError::Singular { index: 0 });
        }
        return Ok(vec![d[0] / b[0]]);
    }
    let m = n.div_ceil(2);
    let mut ra = vec![0.0; m];
    let mut rb = vec![0.0; m];
    let mut rc = vec![0.0; m];
    let mut rd = vec![0.0; m];
    for j in 0..m {
        let i = 2 * j;
        let mut nb = b[i];
        let mut nd = d[i];
        let mut na = 0.0;
        let mut nc = 0.0;
        if i > 0 {
            if b[i - 1].abs() < 1e-300 {
                return Err(MathError::Singular { index: i - 1 });
            }
            let alpha = -a[i] / b[i - 1];
            na = alpha * a[i - 1];
            nb += alpha * c[i - 1];
            nd += alpha * d[i - 1];
        }
        if i + 1 < n {
            if b[i + 1].abs() < 1e-300 {
                return Err(MathError::Singular { index: i + 1 });
            }
            let beta = -c[i] / b[i + 1];
            nb += beta * a[i + 1];
            nc = beta * c[i + 1];
            nd += beta * d[i + 1];
        }
        ra[j] = na;
        rb[j] = nb;
        rc[j] = nc;
        rd[j] = nd;
    }
    let xe = cr_solve(&ra, &rb, &rc, &rd)?;
    let mut x = vec![0.0; n];
    for (j, &v) in xe.iter().enumerate() {
        x[2 * j] = v;
    }
    for i in (1..n).step_by(2) {
        let mut v = d[i] - a[i] * x[i - 1];
        if i + 1 < n {
            v -= c[i] * x[i + 1];
        }
        if b[i].abs() < 1e-300 {
            return Err(MathError::Singular { index: i });
        }
        x[i] = v / b[i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn laplacian(n: usize) -> Tridiag {
        Tridiag::new(vec![-1.0; n], vec![2.5; n], vec![-1.0; n])
    }

    #[test]
    fn thomas_solves_laplacian() {
        let t = laplacian(50);
        let d: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let x = t.solve_thomas(&d).unwrap();
        let back = t.mul_vec(&x);
        for (l, r) in back.iter().zip(&d) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
    }

    #[test]
    fn thomas_matches_exact_small_system() {
        // [2 1; 1 2] x = [3; 3] → x = [1; 1].
        let t = Tridiag::new(vec![0.0, 1.0], vec![2.0, 2.0], vec![1.0, 0.0]);
        let x = t.solve_thomas(&[3.0, 3.0]).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-14));
        assert!(approx_eq(x[1], 1.0, 1e-14));
    }

    #[test]
    fn thomas_single_equation() {
        let t = Tridiag::new(vec![0.0], vec![4.0], vec![0.0]);
        assert_eq!(t.solve_thomas(&[8.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn thomas_empty_system() {
        let t = Tridiag::new(vec![], vec![], vec![]);
        assert!(t.solve_thomas(&[]).unwrap().is_empty());
    }

    #[test]
    fn cyclic_reduction_matches_thomas_power_of_two() {
        for n in [2usize, 4, 8, 16, 64, 128] {
            let t = laplacian(n);
            let d: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).cos()).collect();
            let xt = t.solve_thomas(&d).unwrap();
            let xc = t.solve_cyclic_reduction(&d).unwrap();
            for (a, b) in xt.iter().zip(&xc) {
                assert!(approx_eq(*a, *b, 1e-9), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cyclic_reduction_matches_thomas_odd_sizes() {
        for n in [1usize, 3, 5, 7, 13, 100, 101] {
            let t = laplacian(n);
            let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() - 0.2).collect();
            let xt = t.solve_thomas(&d).unwrap();
            let xc = t.solve_cyclic_reduction(&d).unwrap();
            for (i, (a, b)) in xt.iter().zip(&xc).enumerate() {
                assert!(approx_eq(*a, *b, 1e-8), "n={n} i={i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn solve_into_reuses_scratch_across_sizes_bitwise() {
        let mut scratch = ThomasScratch::default();
        let mut x = vec![0.0; 64];
        // Shrinking then growing the system size must not leak state
        // between solves: every reused solve matches the allocating one
        // bit for bit.
        for n in [64usize, 7, 33, 64, 1] {
            let t = laplacian(n);
            let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
            x.resize(n, 0.0);
            t.solve_thomas_into(&d, &mut scratch, &mut x).unwrap();
            let fresh = t.solve_thomas(&d).unwrap();
            for (a, b) in x.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn factored_solve_matches_thomas_bitwise() {
        let t = laplacian(101);
        let fac = t.factor().unwrap();
        let mut scratch = ThomasScratch::default();
        let mut xf = vec![0.0; 101];
        let mut xt = vec![0.0; 101];
        for k in 0..4 {
            let d: Vec<f64> = (0..101)
                .map(|i| (i as f64 * 0.13 + k as f64).sin())
                .collect();
            fac.solve_into(&d, &mut xf);
            t.solve_thomas_into(&d, &mut scratch, &mut xt).unwrap();
            for (a, b) in xf.iter().zip(&xt) {
                assert_eq!(a.to_bits(), b.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn factored_panel_matches_per_line_solves_bitwise() {
        let n = 37;
        let t = laplacian(n);
        let fac = t.factor().unwrap();
        for w in [1usize, 2, 5, 64] {
            // Lane l of the panel is its own RHS, interleaved row-major.
            let mut panel = vec![0.0; n * w];
            for i in 0..n {
                for l in 0..w {
                    panel[i * w + l] = ((i * 7 + l * 3) as f64 * 0.11).cos();
                }
            }
            let lanes: Vec<Vec<f64>> = (0..w)
                .map(|l| {
                    let d: Vec<f64> = (0..n).map(|i| panel[i * w + l]).collect();
                    t.solve_thomas(&d).unwrap()
                })
                .collect();
            fac.solve_panel_transposed(&mut panel);
            for (l, lane) in lanes.iter().enumerate() {
                for i in 0..n {
                    assert_eq!(
                        panel[i * w + l].to_bits(),
                        lane[i].to_bits(),
                        "w={w} lane={l} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn factored_edge_cases() {
        // Single equation and empty system.
        let one = Tridiag::new(vec![0.0], vec![4.0], vec![0.0]);
        let fac = one.factor().unwrap();
        let mut x = [0.0];
        fac.solve_into(&[8.0], &mut x);
        assert_eq!(x[0], 2.0);
        let empty = Tridiag::new(vec![], vec![], vec![]);
        let fac = empty.factor().unwrap();
        fac.solve_into(&[], &mut []);
        fac.solve_panel_transposed(&mut []);
        // Singular pivots are caught at factor time.
        let sing = Tridiag::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]);
        assert!(sing.factor().is_err());
    }

    #[test]
    fn theta_system_builds_stage_matrix() {
        let (theta, dt, a, b, c) = (0.5, 0.01, 1.2, -3.4, 2.1);
        let sys = theta_system(theta, dt, a, b, c, 9);
        assert_eq!(sys.n(), 9);
        for i in 0..9 {
            assert_eq!(sys.a[i].to_bits(), (-theta * dt * a).to_bits());
            assert_eq!(sys.b[i].to_bits(), (1.0 - theta * dt * b).to_bits());
            assert_eq!(sys.c[i].to_bits(), (-theta * dt * c).to_bits());
        }
        // θ = 0 degenerates to the identity.
        let id = theta_system(0.0, dt, a, b, c, 4);
        assert!(id.b.iter().all(|&x| x == 1.0));
        let (sys2, fac) = factored_theta_system(theta, dt, a, b, c, 9).unwrap();
        let d: Vec<f64> = (0..9).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut xf = vec![0.0; 9];
        fac.solve_into(&d, &mut xf);
        let xt = sys2.solve_thomas(&d).unwrap();
        for (p, q) in xf.iter().zip(&xt) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn singular_diagonal_detected() {
        let t = Tridiag::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]);
        assert!(t.solve_thomas(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn mul_vec_tridiagonal_structure() {
        let t = Tridiag::new(
            vec![0.0, 1.0, 1.0],
            vec![2.0, 2.0, 2.0],
            vec![1.0, 1.0, 0.0],
        );
        let y = t.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 4.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "band length")]
    fn band_length_mismatch_panics() {
        let _ = Tridiag::new(vec![0.0], vec![1.0, 2.0], vec![0.0, 0.0]);
    }
}
