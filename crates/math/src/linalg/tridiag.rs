//! Tridiagonal solvers: sequential Thomas algorithm and parallel cyclic
//! reduction.
//!
//! Crank–Nicolson and ADI time stepping reduce each line of the PDE grid
//! to a tridiagonal system. The Thomas algorithm is O(n) but inherently
//! sequential; cyclic reduction is O(n log n) work with O(log n) span and
//! is the classic way the 2002-era literature parallelised implicit
//! sweeps, so both are provided (and the ablation bench compares them).

use crate::MathError;

/// Reusable forward-elimination workspace for
/// [`Tridiag::solve_thomas_into`], so batched line solves (ADI sweeps
/// solve thousands per time step) allocate once instead of per line.
#[derive(Debug, Clone, Default)]
pub struct ThomasScratch {
    /// Eliminated super-diagonal `c'`.
    cp: Vec<f64>,
    /// Eliminated right-hand side `d'`.
    dp: Vec<f64>,
}

/// A tridiagonal system `a_i x_{i-1} + b_i x_i + c_i x_{i+1} = d_i`.
///
/// `a[0]` and `c[n-1]` are ignored (conventionally zero).
#[derive(Debug, Clone)]
pub struct Tridiag {
    /// Sub-diagonal (length n; `a[0]` unused).
    pub a: Vec<f64>,
    /// Diagonal (length n).
    pub b: Vec<f64>,
    /// Super-diagonal (length n; `c[n-1]` unused).
    pub c: Vec<f64>,
}

impl Tridiag {
    /// Construct and validate band lengths.
    ///
    /// # Panics
    /// Panics when the three bands disagree in length.
    pub fn new(a: Vec<f64>, b: Vec<f64>, c: Vec<f64>) -> Self {
        assert_eq!(a.len(), b.len(), "band length mismatch");
        assert_eq!(b.len(), c.len(), "band length mismatch");
        Tridiag { a, b, c }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// Multiply `T·x` (for residual checks and explicit stepping).
    ///
    /// # Panics
    /// Panics if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = self.b[i] * x[i];
            if i > 0 {
                s += self.a[i] * x[i - 1];
            }
            if i + 1 < n {
                s += self.c[i] * x[i + 1];
            }
            y[i] = s;
        }
        y
    }

    /// Solve with the Thomas algorithm (O(n), sequential).
    ///
    /// Numerically safe for diagonally dominant systems, which all the
    /// PDE discretisations in this workspace produce.
    pub fn solve_thomas(&self, d: &[f64]) -> Result<Vec<f64>, MathError> {
        let mut x = vec![0.0; self.n()];
        self.solve_thomas_into(d, &mut ThomasScratch::default(), &mut x)?;
        Ok(x)
    }

    /// [`Self::solve_thomas`] writing the solution into `x` and reusing
    /// the elimination buffers in `scratch` — the allocation-free form
    /// batched line solves call in a loop. Arithmetic is identical to
    /// `solve_thomas`, so results are bitwise equal.
    ///
    /// # Panics
    /// Panics when `d` or `x` disagree with the system size.
    pub fn solve_thomas_into(
        &self,
        d: &[f64],
        scratch: &mut ThomasScratch,
        x: &mut [f64],
    ) -> Result<(), MathError> {
        let n = self.n();
        assert_eq!(d.len(), n);
        assert_eq!(x.len(), n);
        if n == 0 {
            return Ok(());
        }
        scratch.cp.resize(n, 0.0);
        scratch.dp.resize(n, 0.0);
        let (cp, dp) = (&mut scratch.cp, &mut scratch.dp);
        if self.b[0].abs() < 1e-300 {
            return Err(MathError::Singular { index: 0 });
        }
        cp[0] = self.c[0] / self.b[0];
        dp[0] = d[0] / self.b[0];
        for i in 1..n {
            let m = self.b[i] - self.a[i] * cp[i - 1];
            if m.abs() < 1e-300 {
                return Err(MathError::Singular { index: i });
            }
            cp[i] = self.c[i] / m;
            dp[i] = (d[i] - self.a[i] * dp[i - 1]) / m;
        }
        x[n - 1] = dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = dp[i] - cp[i] * x[i + 1];
        }
        Ok(())
    }

    /// Solve with cyclic (odd–even) reduction — O(n log n) work,
    /// O(log n) parallel span.
    ///
    /// Each level eliminates the odd-indexed unknowns in terms of their
    /// even neighbours; after log₂ n levels a single unknown remains and
    /// the recursion unwinds. Every level's eliminations are independent,
    /// which is what a parallel PDE sweep exploits.
    pub fn solve_cyclic_reduction(&self, d: &[f64]) -> Result<Vec<f64>, MathError> {
        let n = self.n();
        assert_eq!(d.len(), n);
        cr_solve(&self.a, &self.b, &self.c, d)
    }
}

/// One recursive level of odd–even reduction.
///
/// Keeps the even-indexed unknowns: row 2j is combined with rows 2j±1 to
/// eliminate the odd unknowns, producing a tridiagonal system of size
/// ⌈n/2⌉; the odd unknowns are recovered afterwards from their even
/// neighbours. All eliminations within a level are independent.
fn cr_solve(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> Result<Vec<f64>, MathError> {
    let n = b.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        if b[0].abs() < 1e-300 {
            return Err(MathError::Singular { index: 0 });
        }
        return Ok(vec![d[0] / b[0]]);
    }
    let m = n.div_ceil(2);
    let mut ra = vec![0.0; m];
    let mut rb = vec![0.0; m];
    let mut rc = vec![0.0; m];
    let mut rd = vec![0.0; m];
    for j in 0..m {
        let i = 2 * j;
        let mut nb = b[i];
        let mut nd = d[i];
        let mut na = 0.0;
        let mut nc = 0.0;
        if i > 0 {
            if b[i - 1].abs() < 1e-300 {
                return Err(MathError::Singular { index: i - 1 });
            }
            let alpha = -a[i] / b[i - 1];
            na = alpha * a[i - 1];
            nb += alpha * c[i - 1];
            nd += alpha * d[i - 1];
        }
        if i + 1 < n {
            if b[i + 1].abs() < 1e-300 {
                return Err(MathError::Singular { index: i + 1 });
            }
            let beta = -c[i] / b[i + 1];
            nb += beta * a[i + 1];
            nc = beta * c[i + 1];
            nd += beta * d[i + 1];
        }
        ra[j] = na;
        rb[j] = nb;
        rc[j] = nc;
        rd[j] = nd;
    }
    let xe = cr_solve(&ra, &rb, &rc, &rd)?;
    let mut x = vec![0.0; n];
    for (j, &v) in xe.iter().enumerate() {
        x[2 * j] = v;
    }
    for i in (1..n).step_by(2) {
        let mut v = d[i] - a[i] * x[i - 1];
        if i + 1 < n {
            v -= c[i] * x[i + 1];
        }
        if b[i].abs() < 1e-300 {
            return Err(MathError::Singular { index: i });
        }
        x[i] = v / b[i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn laplacian(n: usize) -> Tridiag {
        Tridiag::new(vec![-1.0; n], vec![2.5; n], vec![-1.0; n])
    }

    #[test]
    fn thomas_solves_laplacian() {
        let t = laplacian(50);
        let d: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let x = t.solve_thomas(&d).unwrap();
        let back = t.mul_vec(&x);
        for (l, r) in back.iter().zip(&d) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
    }

    #[test]
    fn thomas_matches_exact_small_system() {
        // [2 1; 1 2] x = [3; 3] → x = [1; 1].
        let t = Tridiag::new(vec![0.0, 1.0], vec![2.0, 2.0], vec![1.0, 0.0]);
        let x = t.solve_thomas(&[3.0, 3.0]).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-14));
        assert!(approx_eq(x[1], 1.0, 1e-14));
    }

    #[test]
    fn thomas_single_equation() {
        let t = Tridiag::new(vec![0.0], vec![4.0], vec![0.0]);
        assert_eq!(t.solve_thomas(&[8.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn thomas_empty_system() {
        let t = Tridiag::new(vec![], vec![], vec![]);
        assert!(t.solve_thomas(&[]).unwrap().is_empty());
    }

    #[test]
    fn cyclic_reduction_matches_thomas_power_of_two() {
        for n in [2usize, 4, 8, 16, 64, 128] {
            let t = laplacian(n);
            let d: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).cos()).collect();
            let xt = t.solve_thomas(&d).unwrap();
            let xc = t.solve_cyclic_reduction(&d).unwrap();
            for (a, b) in xt.iter().zip(&xc) {
                assert!(approx_eq(*a, *b, 1e-9), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn cyclic_reduction_matches_thomas_odd_sizes() {
        for n in [1usize, 3, 5, 7, 13, 100, 101] {
            let t = laplacian(n);
            let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() - 0.2).collect();
            let xt = t.solve_thomas(&d).unwrap();
            let xc = t.solve_cyclic_reduction(&d).unwrap();
            for (i, (a, b)) in xt.iter().zip(&xc).enumerate() {
                assert!(approx_eq(*a, *b, 1e-8), "n={n} i={i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn solve_into_reuses_scratch_across_sizes_bitwise() {
        let mut scratch = ThomasScratch::default();
        let mut x = vec![0.0; 64];
        // Shrinking then growing the system size must not leak state
        // between solves: every reused solve matches the allocating one
        // bit for bit.
        for n in [64usize, 7, 33, 64, 1] {
            let t = laplacian(n);
            let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
            x.resize(n, 0.0);
            t.solve_thomas_into(&d, &mut scratch, &mut x).unwrap();
            let fresh = t.solve_thomas(&d).unwrap();
            for (a, b) in x.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn singular_diagonal_detected() {
        let t = Tridiag::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]);
        assert!(t.solve_thomas(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn mul_vec_tridiagonal_structure() {
        let t = Tridiag::new(
            vec![0.0, 1.0, 1.0],
            vec![2.0, 2.0, 2.0],
            vec![1.0, 1.0, 0.0],
        );
        let y = t.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 4.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "band length")]
    fn band_length_mismatch_panics() {
        let _ = Tridiag::new(vec![0.0], vec![1.0, 2.0], vec![0.0, 0.0]);
    }
}
