//! Small dense and banded linear algebra.
//!
//! The pricing engines need exactly four solvers, all on matrices whose
//! dimension is the number of assets (≤ ~20) or regression basis size
//! (≤ ~50), plus tridiagonal systems of grid size for the PDE engines:
//!
//! * [`Cholesky`] — correlation-matrix factorisation for correlated
//!   Gaussian sampling (every Monte Carlo path starts here).
//! * [`Lu`] — general square solves and determinants.
//! * [`Qr`] — least squares for the Longstaff–Schwartz regression, where
//!   normal equations would be dangerously ill-conditioned.
//! * [`tridiag`] — Thomas and parallel cyclic-reduction tridiagonal
//!   solvers for Crank–Nicolson/ADI time stepping.
//!
//! Sizes are small, so the implementations favour clarity and numerical
//! robustness over blocking/SIMD; the hot loops of the engines are in path
//! generation and lattice sweeps, not here.

mod cholesky;
mod eigen;
mod lu;
mod matrix;
mod qr;
pub mod tridiag;

pub use cholesky::Cholesky;
pub use eigen::{nearest_correlation, symmetric_eigen, SymmetricEigen};
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use tridiag::{factored_theta_system, theta_system, FactoredTridiag, ThomasScratch, Tridiag};
