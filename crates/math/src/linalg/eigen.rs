//! Symmetric eigendecomposition (cyclic Jacobi) and the nearest-
//! correlation-matrix projection.
//!
//! Estimated correlation matrices are routinely *not* positive
//! semidefinite (pairwise estimation, missing data, stress overrides).
//! [`nearest_correlation`] repairs them by the classic spectral
//! projection: clip negative eigenvalues, rescale to unit diagonal —
//! one step of Higham's alternating projections, which is the standard
//! fix-up and is idempotent on already-valid matrices.

use super::Matrix;
use crate::MathError;

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns (same order).
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Quadratically convergent and unconditionally stable; ideal for the
/// small (d ≤ ~50) matrices of this workspace.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen, MathError> {
    if !a.is_square() {
        return Err(MathError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if !a.is_symmetric(1e-10 * a.max_abs().max(1.0)) {
        return Err(MathError::Domain {
            what: "symmetric_eigen needs a symmetric matrix",
            value: f64::NAN,
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-14 * a.max_abs().max(1.0);
    for _sweep in 0..100 {
        // Largest off-diagonal magnitude this sweep.
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(m[(p, q)].abs());
            }
        }
        if off < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < tol {
                    continue;
                }
                // Jacobi rotation annihilating m[p][q].
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort descending.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let values: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Ok(SymmetricEigen { values, vectors })
}

/// Project a symmetric matrix to the nearest correlation matrix
/// (spectral clip + unit-diagonal rescale; one Higham projection pair).
///
/// Returns the input unchanged (up to round-off) when it is already a
/// valid correlation matrix.
pub fn nearest_correlation(a: &Matrix, eig_floor: f64) -> Result<Matrix, MathError> {
    let eig = symmetric_eigen(a)?;
    let n = a.rows();
    // B = V·diag(max(λ, floor))·Vᵀ.
    let mut b = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for (k, &lam) in eig.values.iter().enumerate() {
                acc += eig.vectors[(i, k)] * lam.max(eig_floor) * eig.vectors[(j, k)];
            }
            b[(i, j)] = acc;
        }
    }
    // Rescale to unit diagonal: C = D^{-1/2}·B·D^{-1/2}.
    let mut c = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            c[(i, j)] = b[(i, j)] / (b[(i, i)] * b[(j, j)]).sqrt();
        }
    }
    // Exact symmetry and unit diagonal despite round-off.
    for i in 0..n {
        c[(i, i)] = 1.0;
        for j in (i + 1)..n {
            let avg = 0.5 * (c[(i, j)] + c[(j, i)]);
            c[(i, j)] = avg;
            c[(j, i)] = avg;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::linalg::Cholesky;

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        assert!(approx_eq(e.values[0], 3.0, 1e-12));
        assert!(approx_eq(e.values[1], 2.0, 1e-12));
        assert!(approx_eq(e.values[2], 1.0, 1e-12));
    }

    #[test]
    fn known_2x2_eigensystem() {
        // [[2,1],[1,2]]: λ = 3, 1 with vectors (1,1)/√2 and (1,−1)/√2.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!(approx_eq(e.values[0], 3.0, 1e-12));
        assert!(approx_eq(e.values[1], 1.0, 1e-12));
        let v0 = (e.vectors[(0, 0)], e.vectors[(1, 0)]);
        assert!(approx_eq(v0.0.abs(), 1.0 / 2f64.sqrt(), 1e-10));
        assert!(approx_eq(v0.0, v0.1, 1e-10));
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -0.5, 0.2],
            vec![1.0, 3.0, 0.7, -0.3],
            vec![-0.5, 0.7, 2.0, 0.1],
            vec![0.2, -0.3, 0.1, 1.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        // VᵀV = I.
        let vtv = e.vectors.transpose().mul_checked(&e.vectors).unwrap();
        assert!((&vtv - &Matrix::identity(4)).max_abs() < 1e-10);
        // V·Λ·Vᵀ = A.
        let mut lam = Matrix::zeros(4, 4);
        for i in 0..4 {
            lam[(i, i)] = e.values[i];
        }
        let back = e
            .vectors
            .mul_checked(&lam)
            .unwrap()
            .mul_checked(&e.vectors.transpose())
            .unwrap();
        assert!((&back - &a).max_abs() < 1e-10);
    }

    #[test]
    fn trace_and_determinant_preserved() {
        let a = Matrix::from_rows(&[
            vec![2.0, 0.5, 0.1],
            vec![0.5, 1.5, -0.2],
            vec![0.1, -0.2, 1.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..3).map(|i| a[(i, i)]).sum();
        assert!(approx_eq(e.values.iter().sum::<f64>(), trace, 1e-12));
        let det = crate::linalg::Lu::factor(&a).unwrap().det();
        assert!(approx_eq(e.values.iter().product::<f64>(), det, 1e-10));
    }

    #[test]
    fn rejects_asymmetric_and_rectangular() {
        let bad = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(symmetric_eigen(&bad).is_err());
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn nearest_correlation_repairs_indefinite_matrix() {
        // ρ = −0.9 pairwise on 3 assets: indefinite (needs ρ ≥ −1/2).
        let mut a = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    a[(i, j)] = -0.9;
                }
            }
        }
        assert!(Cholesky::factor(&a).is_err());
        let c = nearest_correlation(&a, 1e-8).unwrap();
        // Valid: unit diagonal, symmetric, PSD (Cholesky succeeds with a
        // small jitter floor).
        for i in 0..3 {
            assert_eq!(c[(i, i)], 1.0);
        }
        assert!(Cholesky::factor(&c).is_ok(), "{c}");
        // Off-diagonals pulled toward the feasible boundary (−0.5).
        assert!(c[(0, 1)] > -0.55 && c[(0, 1)] < -0.4, "{}", c[(0, 1)]);
    }

    #[test]
    fn nearest_correlation_fixes_valid_matrix_to_itself() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.5, 0.2],
            vec![0.5, 1.0, 0.3],
            vec![0.2, 0.3, 1.0],
        ]);
        let c = nearest_correlation(&a, 0.0).unwrap();
        assert!((&c - &a).max_abs() < 1e-10, "{c}");
    }

    #[test]
    fn repaired_matrix_usable_downstream() {
        let mut a = Matrix::identity(4);
        // An inconsistent stress override: strong positives plus one
        // impossible negative.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    a[(i, j)] = 0.8;
                }
            }
        }
        a[(0, 1)] = -0.9;
        a[(1, 0)] = -0.9;
        assert!(Cholesky::factor(&a).is_err());
        let c = nearest_correlation(&a, 1e-8).unwrap();
        assert!(Cholesky::factor(&c).is_ok());
    }
}
