//! LU factorisation with partial pivoting.

use super::Matrix;
use crate::MathError;

/// Compact LU factorisation `P·A = L·U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// L (unit diagonal, implicit) and U packed in one matrix.
    lu: Matrix,
    /// Row permutation: row i of the factor corresponds to row `perm[i]`
    /// of the original matrix.
    perm: Vec<usize>,
    /// Sign of the permutation (±1), for the determinant.
    sign: f64,
}

impl Lu {
    /// Factor a square matrix. Fails with [`MathError::Singular`] when a
    /// pivot underflows working precision.
    pub fn factor(a: &Matrix) -> Result<Self, MathError> {
        if !a.is_square() {
            return Err(MathError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(MathError::Singular { index: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension n.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n);
        // Apply permutation, then forward-substitute L y = P b.
        let mut y: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for i in 1..n {
            let mut s = y[i];
            for k in 0..i {
                s -= self.lu[(i, k)] * y[k];
            }
            y[i] = s;
        }
        // Back-substitute U x = y.
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.lu[(i, k)] * y[k];
            }
            y[i] = s / self.lu[(i, i)];
        }
        y
    }

    /// Determinant of A.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of A (column-by-column solves). Intended for small matrices.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn a3() -> Matrix {
        Matrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
    }

    #[test]
    fn solve_known_system() {
        let a = a3();
        let x = Lu::factor(&a).unwrap().solve(&[5.0, -2.0, 9.0]);
        let back = a.mul_vec(&x);
        for (l, r) in back.iter().zip(&[5.0, -2.0, 9.0]) {
            assert!(approx_eq(*l, *r, 1e-12));
        }
    }

    #[test]
    fn determinant_known() {
        // det = 2(-12-0) -1(8-0) +1(28-12) = -24 - 8 + 16 = -16.
        let d = Lu::factor(&a3()).unwrap().det();
        assert!(approx_eq(d, -16.0, 1e-12), "{d}");
    }

    #[test]
    fn inverse_round_trip() {
        let a = a3();
        let inv = Lu::factor(&a).unwrap().inverse();
        let prod = a.mul_checked(&inv).unwrap();
        assert!((&prod - &Matrix::identity(3)).max_abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = Lu::factor(&a).unwrap().solve(&[3.0, 4.0]);
        assert!(approx_eq(x[0], 4.0, 1e-14));
        assert!(approx_eq(x[1], 3.0, 1e-14));
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(MathError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Lu::factor(&Matrix::zeros(3, 2)),
            Err(MathError::NotSquare { .. })
        ));
    }

    #[test]
    fn permutation_sign_in_det() {
        // A permutation matrix has det ±1.
        let p = Matrix::from_rows(&[
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ]);
        let d = Lu::factor(&p).unwrap().det();
        assert!(approx_eq(d, 1.0, 1e-14), "cyclic permutation is even: {d}");
    }
}
