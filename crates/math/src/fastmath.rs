//! Branch-free `exp` and `ln` for the Monte Carlo hot path.
//!
//! The batched path kernel spends most of its non-RNG time in
//! transcendentals: one `exp` per asset per exponentiated step and one
//! `ln` per accepted polar pair. `libm`'s implementations are accurate
//! but full of early-outs for specials, which blocks LLVM from
//! auto-vectorizing loops that call them. The two routines here use the
//! classic argument reductions (musl-style) with *no branches at all*,
//! so a loop over a panel row compiles to straight SIMD code, while
//! staying within ~2 ulp of correctly rounded over the domains the
//! pricing kernels use.
//!
//! Every engine — the scalar oracle and the batched kernel alike — must
//! call these same functions: bitwise equality across drivers holds
//! because the *implementation* is shared, not because the routines
//! agree with `libm` to the last bit (they do not).
//!
//! Domain notes (deliberate trade-offs for straight-line code):
//!
//! * [`exp64`] clamps its argument to ±708, so it saturates to finite
//!   huge/tiny values instead of ±∞/0 at the extremes, and it does not
//!   produce subnormals. Log-prices live in (−50, 50); nothing in the
//!   repo gets near the clamp.
//! * [`ln64`] assumes a strictly positive, finite, normal argument. The
//!   polar method's `s ∈ (0, 1]` and spot prices both satisfy this. It
//!   returns garbage (not a panic) for zero, negatives, infinities and
//!   NaN — callers own the domain check, as the polar rejection loop
//!   already does.

// Reduction constants keep their published (musl/fdlibm) digits even
// where f64 rounding would forgive fewer.
#![allow(clippy::excessive_precision)]

/// log₂(e), the reduction constant for [`exp64`].
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// High part of ln 2 (musl split: 42 exact high bits).
const LN2_HI: f64 = 6.931_471_803_691_238_164_90e-01;
/// Low part of ln 2.
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;

/// `eˣ` without branches: Cody–Waite reduction `x = n·ln2 + r`,
/// `|r| ≤ ln2/2`, a degree-13 Taylor polynomial for `eʳ` (truncation
/// error < 5e-18 on the reduced interval), and a bit-twiddled `2ⁿ`
/// scale. Accurate to ~2 ulp; saturates (finite) outside ±708.
#[inline]
pub fn exp64(x: f64) -> f64 {
    // Clamp instead of special-casing: min/max are single instructions
    // and leave in-range arguments bit-identical.
    let x = x.clamp(-708.0, 708.0);
    // Round-to-nearest via the 1.5·2⁵² magic constant: adding it forces
    // the FPU to round the fraction away at ulp = 1, leaving
    // round(x·log₂e) in the mantissa — no `round()` libm call, no
    // f64→int cast, so the whole function stays straight-line vector
    // code even on baseline x86-64.
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 × 2⁵²
    let t = x * LOG2_E + MAGIC;
    let n = t - MAGIC;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // Horner over 1/k! up to k = 13.
    let mut p = 1.605_904_383_682_161_5e-10; // 1/13!
    p = p * r + 2.087_675_698_786_809_9e-9; // 1/12!
    p = p * r + 2.505_210_838_544_172e-8; // 1/11!
    p = p * r + 2.755_731_922_398_589_1e-7; // 1/10!
    p = p * r + 2.755_731_922_398_589e-6; // 1/9!
    p = p * r + 2.480_158_730_158_730_2e-5; // 1/8!
    p = p * r + 1.984_126_984_126_984_1e-4; // 1/7!
    p = p * r + 1.388_888_888_888_889e-3; // 1/6!
    p = p * r + 8.333_333_333_333_333_3e-3; // 1/5!
    p = p * r + 4.166_666_666_666_666_4e-2; // 1/4!
    p = p * r + 1.666_666_666_666_666_6e-1; // 1/3!
    p = p * r + 0.5; // 1/2!
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2ⁿ via the exponent field: the magic-biased `t` carries n as an
    // integer in its low mantissa bits, so (n + 1023) << 52 is three
    // integer ops; `<< 52` discards the magic's high bits on its own.
    // n ∈ [-1022, 1023] after the clamp.
    let n_bits = t.to_bits().wrapping_sub(MAGIC.to_bits());
    let scale = f64::from_bits(n_bits.wrapping_add(1023) << 52);
    p * scale
}

/// Natural log without branches (musl `log` reduction): `x = 2ᵏ·m` with
/// `m ∈ [√2/2, √2)`, then `ln m` from the `atanh`-form series in
/// `s = f/(2+f)`, `f = m − 1`. Accurate to ~1 ulp for positive normal
/// finite arguments; garbage outside that domain (see module docs).
#[inline]
pub fn ln64(x: f64) -> f64 {
    const LG1: f64 = 6.666_666_666_666_735_13e-01;
    const LG2: f64 = 3.999_999_999_940_941_908e-01;
    const LG3: f64 = 2.857_142_874_366_239_149e-01;
    const LG4: f64 = 2.222_219_843_214_978_396e-01;
    const LG5: f64 = 1.818_357_216_161_805_012e-01;
    const LG6: f64 = 1.531_383_769_920_937_332e-01;
    const LG7: f64 = 1.479_819_860_511_658_591e-01;

    let ui = x.to_bits();
    let mut hx = (ui >> 32) as u32;
    hx = hx.wrapping_add(0x3ff0_0000 - 0x3fe6_a09e);
    let k = (hx >> 20) as i32 - 0x3ff;
    hx = (hx & 0x000f_ffff) + 0x3fe6_a09e;
    let m = f64::from_bits(((hx as u64) << 32) | (ui & 0xffff_ffff));

    let f = m - 1.0;
    let hfsq = 0.5 * f * f;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG2 + w * (LG4 + w * LG6));
    let t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)));
    let r = t2 + t1;
    let dk = f64::from(k);
    s * (hfsq + r) + dk * LN2_LO - hfsq + f + dk * LN2_HI
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp_diff(a: f64, b: f64) -> u64 {
        (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
    }

    #[test]
    fn exp64_matches_libm_to_a_few_ulp() {
        // Sweep the log-price range the kernels actually use, plus wide
        // tails, on an irrational grid so no argument is special.
        let mut worst = 0u64;
        let mut x = -700.0;
        while x < 700.0 {
            let d = ulp_diff(exp64(x), x.exp());
            worst = worst.max(d);
            x += 0.618_033_988_749_894;
        }
        assert!(worst <= 4, "worst exp64 error {worst} ulp");
    }

    #[test]
    fn exp64_dense_near_zero() {
        let mut worst = 0u64;
        for i in -100_000..100_000i64 {
            let x = i as f64 * 1e-5 * 1.234_567_89;
            worst = worst.max(ulp_diff(exp64(x), x.exp()));
        }
        assert!(worst <= 2, "worst exp64 error near 0: {worst} ulp");
    }

    #[test]
    fn exp64_saturates_finitely() {
        assert!(exp64(1e308).is_finite());
        assert!(exp64(-1e308) >= 0.0);
        assert!(exp64(-1e308).is_finite());
        assert_eq!(exp64(0.0), 1.0);
    }

    #[test]
    fn ln64_matches_libm_to_a_few_ulp() {
        // Polar-method domain (0,1] and the spot-price range.
        let mut worst = 0u64;
        for i in 1..200_000u64 {
            let x = i as f64 * 5e-6;
            worst = worst.max(ulp_diff(ln64(x), x.ln()));
        }
        let mut x = 1.0;
        while x < 1e6 {
            worst = worst.max(ulp_diff(ln64(x), x.ln()));
            x *= 1.000_37;
        }
        assert!(worst <= 2, "worst ln64 error {worst} ulp");
    }

    #[test]
    fn ln_exp_roundtrip_is_tight() {
        let mut x = -30.0;
        while x < 30.0 {
            let y = ln64(exp64(x));
            assert!((y - x).abs() <= 1e-13 * (1.0 + x.abs()), "{x} -> {y}");
            x += 0.037;
        }
    }
}
