// Numerical kernels index several arrays in lockstep; the index-loop
// style clippy flags is the clearer form there.
#![allow(clippy::needless_range_loop)]

//! # mdp-math — numerical kernels for multidimensional derivative pricing
//!
//! This crate provides the self-contained numerical substrate used by every
//! pricing engine in the `mdp` workspace:
//!
//! * **Random numbers** ([`rng`]) — counter-seeded [`rng::SplitMix64`],
//!   [`rng::Xoshiro256StarStar`] with `jump`/`long_jump` for embarrassingly
//!   parallel substreams, and [`rng::Pcg64`]; plus Gaussian samplers
//!   (polar, Box–Muller and inverse-CDF).
//! * **Special functions** ([`special`]) — `erf`/`erfc`, the standard normal
//!   pdf/cdf, a high-accuracy inverse normal cdf (Acklam + Halley
//!   refinement) and the Drezner–Wesolowsky bivariate normal cdf.
//! * **Low-discrepancy sequences** ([`sobol`]) — a Sobol' generator in
//!   Gray-code order with Joe–Kuo direction numbers for the leading
//!   dimensions, and [`brownian`] for Brownian-bridge path construction.
//! * **Dense and banded linear algebra** ([`linalg`]) — a small row-major
//!   [`linalg::Matrix`], Cholesky, partially pivoted LU, Householder QR
//!   least-squares and tridiagonal (Thomas and cyclic-reduction) solvers.
//! * **Statistics** ([`stats`]) — Welford online moments with O(1) merging
//!   for parallel reduction, and confidence intervals.
//! * **Polynomial bases** ([`poly`]) — monomial/Laguerre/Hermite bases used
//!   by the Longstaff–Schwartz regression.
//!
//! Everything is implemented from scratch on `f64`; the crate has no
//! runtime dependencies, which keeps the pricing engines' performance
//! characteristics fully attributable to the algorithms in this workspace.

pub mod brownian;
pub mod cancel;
pub mod error;
pub mod fastmath;
pub mod fingerprint;
pub mod halton;
pub mod linalg;
pub mod poly;
pub mod quadrature;
pub mod rng;
pub mod sobol;
pub mod special;
pub mod stats;

pub use cancel::CancelToken;
pub use error::MathError;
pub use fingerprint::Fnv64;

/// Relative/absolute comparison helper used across the workspace tests.
///
/// Returns `true` when `a` and `b` are within `tol` of each other, where the
/// comparison is absolute for small magnitudes and relative otherwise.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_small() {
        assert!(approx_eq(1e-12, 0.0, 1e-9));
        assert!(!approx_eq(1e-6, 0.0, 1e-9));
    }

    #[test]
    fn approx_eq_relative_large() {
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!approx_eq(1e12, 1.001e12, 1e-9));
    }

    #[test]
    fn approx_eq_symmetric() {
        assert_eq!(approx_eq(3.0, 3.1, 0.05), approx_eq(3.1, 3.0, 0.05));
    }
}
