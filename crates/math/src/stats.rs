//! Online statistics with mergeable state.
//!
//! Every parallel Monte Carlo driver reduces per-worker statistics into a
//! global estimate. [`OnlineStats`] implements Welford/Chan's numerically
//! stable single-pass moments with an O(1) `merge`, so the reduction tree
//! of the cluster substrate can combine partial results without ever
//! shipping raw samples.

/// Numerically stable online mean/variance (Welford), mergeable (Chan).
///
/// ```
/// use mdp_math::stats::OnlineStats;
/// let mut a = OnlineStats::new();
/// let mut b = OnlineStats::new();
/// a.extend(&[1.0, 2.0]);
/// b.extend(&[3.0, 4.0]);
/// a.merge(&b); // exactly as if all four samples were pushed into one
/// assert_eq!(a.mean(), 2.5);
/// assert_eq!(a.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    /// Sum of squared deviations from the current mean.
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add a whole slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merge another accumulator into this one (Chan et al. pairwise
    /// update). Exact in the same sense as pushing all samples.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Symmetric confidence half-width at the given z quantile
    /// (e.g. 1.96 for 95%).
    pub fn confidence_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }

    /// Serialise to a fixed-size array for message passing:
    /// `[n, mean, m2, min, max]`.
    pub fn to_raw(&self) -> [f64; 5] {
        [self.n as f64, self.mean, self.m2, self.min, self.max]
    }

    /// Inverse of [`to_raw`](Self::to_raw).
    pub fn from_raw(raw: &[f64; 5]) -> Self {
        OnlineStats {
            n: raw[0] as u64,
            mean: raw[1],
            m2: raw[2],
            min: raw[3],
            max: raw[4],
        }
    }
}

/// Sample skewness and excess kurtosis from raw data (two-pass).
/// Diagnostic only — not used in the hot paths.
pub fn higher_moments(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    if xs.len() < 3 {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / n;
    let (mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0);
    for &x in xs {
        let d = x - mean;
        m2 += d * d;
        m3 += d * d * d;
        m4 += d * d * d * d;
    }
    m2 /= n;
    m3 /= n;
    m4 /= n;
    let skew = m3 / m2.powf(1.5);
    let kurt = m4 / (m2 * m2) - 3.0;
    (skew, kurt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn matches_two_pass_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        s.extend(&xs);
        assert_eq!(s.count(), 8);
        assert!(approx_eq(s.mean(), 5.0, 1e-14));
        // Unbiased variance = 32/7.
        assert!(approx_eq(s.variance(), 32.0 / 7.0, 1e-13));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.71).sin() * 3.0).collect();
        let mut whole = OnlineStats::new();
        whole.extend(&xs);
        for split in [1usize, 13, 50, 99] {
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            a.extend(&xs[..split]);
            b.extend(&xs[split..]);
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!(approx_eq(a.mean(), whole.mean(), 1e-12));
            assert!(approx_eq(a.variance(), whole.variance(), 1e-12));
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.extend(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn raw_round_trip() {
        let mut a = OnlineStats::new();
        a.extend(&[1.0, -1.0, 5.0]);
        let b = OnlineStats::from_raw(&a.to_raw());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn confidence_interval_width() {
        let mut s = OnlineStats::new();
        // 100 points with std dev 1 around 0 (alternating ±1).
        for i in 0..100 {
            s.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let hw = s.confidence_half_width(1.96);
        // sd ≈ 1.005, se ≈ 0.1005, hw ≈ 0.197.
        assert!((hw - 0.197).abs() < 0.01, "{hw}");
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let mut s = OnlineStats::new();
        for i in 0..1000 {
            s.push(1e9 + (i % 2) as f64);
        }
        assert!(approx_eq(s.variance(), 0.25025, 1e-3), "{}", s.variance());
    }

    #[test]
    fn higher_moments_gaussianish() {
        use crate::rng::{NormalPolar, NormalSampler, Xoshiro256StarStar};
        let mut rng = Xoshiro256StarStar::seed_from(5);
        let mut ns = NormalPolar::new();
        let xs: Vec<f64> = (0..100_000).map(|_| ns.sample(&mut rng)).collect();
        let (skew, kurt) = higher_moments(&xs);
        assert!(skew.abs() < 0.05, "skew {skew}");
        assert!(kurt.abs() < 0.1, "kurt {kurt}");
    }

    #[test]
    fn higher_moments_degenerate() {
        assert_eq!(higher_moments(&[1.0, 2.0]), (0.0, 0.0));
    }
}
