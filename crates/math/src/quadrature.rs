//! Numerical quadrature: Gauss–Legendre rules and adaptive Simpson.
//!
//! Used by the analytic reference prices (bivariate normal cdf via
//! Plackett's identity, continuous averaging) and by tests that need
//! independent numerical cross-checks of closed forms.

/// A Gauss–Legendre rule on `[-1, 1]`: `nodes[i]` with `weights[i]`.
#[derive(Debug, Clone)]
pub struct GaussLegendre {
    /// Quadrature nodes in (-1, 1), ascending.
    pub nodes: Vec<f64>,
    /// Positive weights summing to 2.
    pub weights: Vec<f64>,
}

impl GaussLegendre {
    /// Build an `n`-point rule by Newton iteration on the Legendre
    /// polynomial P_n (the classic `gauleg` construction). Exact for
    /// polynomials of degree ≤ 2n−1.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "quadrature order must be positive");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Chebyshev-based initial guess for the i-th root.
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut dp = 0.0;
            for _ in 0..100 {
                // Evaluate P_n(x) and P'_n(x) by the three-term recurrence.
                let mut p0 = 1.0;
                let mut p1 = 0.0;
                for j in 0..n {
                    let p2 = p1;
                    p1 = p0;
                    p0 = ((2 * j + 1) as f64 * x * p1 - j as f64 * p2) / (j + 1) as f64;
                }
                dp = n as f64 * (x * p0 - p1) / (x * x - 1.0);
                let dx = p0 / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        GaussLegendre { nodes, weights }
    }

    /// Integrate `f` over `[a, b]` with this rule.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, a: f64, b: f64, mut f: F) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        let mut acc = 0.0;
        for (&x, &w) in self.nodes.iter().zip(&self.weights) {
            acc += w * f(mid + half * x);
        }
        acc * half
    }
}

/// Adaptive Simpson quadrature of `f` over `[a, b]` to absolute
/// tolerance `tol`.
///
/// A robust general-purpose fallback for integrands with localised
/// features; recursion depth is capped at 50 (≈10^15 subdivision).
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> f64 {
    fn simpson(fa: f64, fm: f64, fb: f64, a: f64, b: f64) -> f64 {
        (b - a) / 6.0 * (fa + 4.0 * fm + fb)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse<F: FnMut(f64) -> f64>(
        f: &mut F,
        a: f64,
        b: f64,
        fa: f64,
        fm: f64,
        fb: f64,
        whole: f64,
        tol: f64,
        depth: u32,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = f(lm);
        let frm = f(rm);
        let left = simpson(fa, flm, fm, a, m);
        let right = simpson(fm, frm, fb, m, b);
        let delta = left + right - whole;
        if depth >= 50 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, m, fa, flm, fm, left, tol / 2.0, depth + 1)
                + recurse(f, m, b, fm, frm, fb, right, tol / 2.0, depth + 1)
        }
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(fa, fm, fb, a, b);
    recurse(&mut f, a, b, fa, fm, fb, whole, tol, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn gl_weights_sum_to_two() {
        for n in [1, 2, 5, 16, 32, 64] {
            let gl = GaussLegendre::new(n);
            let s: f64 = gl.weights.iter().sum();
            assert!(approx_eq(s, 2.0, 1e-12), "n={n}: {s}");
        }
    }

    #[test]
    fn gl_exact_for_polynomials() {
        // 5-point rule is exact for degree ≤ 9: ∫_{-1}^{1} x^8 dx = 2/9.
        let gl = GaussLegendre::new(5);
        let v = gl.integrate(-1.0, 1.0, |x| x.powi(8));
        assert!(approx_eq(v, 2.0 / 9.0, 1e-13), "{v}");
    }

    #[test]
    fn gl_odd_polynomials_vanish() {
        let gl = GaussLegendre::new(8);
        let v = gl.integrate(-1.0, 1.0, |x| x.powi(7) + x.powi(3));
        assert!(v.abs() < 1e-14);
    }

    #[test]
    fn gl_integrates_exponential() {
        // ∫_0^1 e^x dx = e − 1.
        let gl = GaussLegendre::new(16);
        let v = gl.integrate(0.0, 1.0, f64::exp);
        assert!(approx_eq(v, std::f64::consts::E - 1.0, 1e-13), "{v}");
    }

    #[test]
    fn gl_nodes_sorted_and_symmetric() {
        let gl = GaussLegendre::new(10);
        for w in gl.nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
        for i in 0..5 {
            assert!(approx_eq(gl.nodes[i], -gl.nodes[9 - i], 1e-14));
        }
    }

    #[test]
    fn simpson_matches_analytic() {
        let v = adaptive_simpson(|x| (x * x).sin(), 0.0, 2.0, 1e-10);
        // Fresnel-type integral ∫_0^2 sin(x²)dx ≈ 0.804776489343756.
        assert!(approx_eq(v, 0.804776489343756, 1e-8), "{v}");
    }

    #[test]
    fn simpson_handles_reversed_tolerance_scaling() {
        let v = adaptive_simpson(|x| 1.0 / (1.0 + x * x), 0.0, 1.0, 1e-12);
        assert!(approx_eq(v, std::f64::consts::FRAC_PI_4, 1e-10), "{v}");
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn gl_rejects_zero_order() {
        let _ = GaussLegendre::new(0);
    }
}
