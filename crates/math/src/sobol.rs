//! Sobol' low-discrepancy sequences in Gray-code order.
//!
//! Quasi-Monte Carlo replaces pseudo-random points with a digital
//! (t,s)-net in base 2, improving the integration error from O(n^-1/2)
//! to nearly O(n^-1) for the smooth integrands of basket pricing.
//!
//! Direction numbers: dimensions 1–10 use the published Joe–Kuo
//! (new-joe-kuo-6) primitive polynomials and initial values, which are the
//! community-standard table. Higher dimensions (up to [`MAX_DIMENSION`])
//! derive initial direction numbers deterministically from SplitMix64
//! subject to the validity constraints (m_k odd, m_k < 2^k), which still
//! yields a valid digital (t,s)-sequence, just with a weaker t parameter —
//! see DESIGN.md ("offline Joe–Kuo table" substitution). Pricing in this
//! workspace uses d ≤ 10 for QMC experiments, so the headline results rest
//! entirely on the published table.
//!
//! A [`scrambled`](SobolSequence::scrambled) variant applies a random
//! digital shift, turning QMC into randomised QMC so that confidence
//! intervals can be estimated from independent replicates.

use crate::rng::{Rng64, SplitMix64};
use crate::MathError;

/// Maximum supported dimension.
pub const MAX_DIMENSION: usize = 64;

/// Bits of precision per coordinate.
const BITS: usize = 52;

/// Joe–Kuo `new-joe-kuo-6` table rows for dimensions 2..=10:
/// (degree s, coefficient a, initial m values).
const JOE_KUO: &[(u32, u32, &[u64])] = &[
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
];

/// A Sobol' sequence generator over `dim` dimensions.
///
/// ```
/// use mdp_math::sobol::SobolSequence;
/// let mut seq = SobolSequence::new(2).unwrap();
/// let first = seq.next_vec();
/// assert_eq!(first, vec![0.0, 0.0]); // point 0 is the origin
/// assert_eq!(seq.next_vec(), vec![0.5, 0.5]);
/// ```
#[derive(Debug, Clone)]
pub struct SobolSequence {
    dim: usize,
    /// `direction[d][k]`: direction integer V_k for dimension d, stored
    /// left-justified in BITS bits.
    direction: Vec<[u64; BITS]>,
    /// Current Gray-code state per dimension.
    state: Vec<u64>,
    /// Index of the next point (0-based).
    index: u64,
    /// Optional digital shift for randomised QMC.
    shift: Vec<u64>,
}

impl SobolSequence {
    /// Create a `dim`-dimensional Sobol' sequence.
    ///
    /// Fails with [`MathError::SobolDimension`] above [`MAX_DIMENSION`]
    /// or for `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, MathError> {
        if dim == 0 || dim > MAX_DIMENSION {
            return Err(MathError::SobolDimension {
                requested: dim,
                max: MAX_DIMENSION,
            });
        }
        let mut direction = Vec::with_capacity(dim);
        // Dimension 1: van der Corput — all m_k = 1.
        direction.push(build_direction(0, &[]));
        for d in 1..dim {
            if d <= JOE_KUO.len() {
                let (s, a, m) = JOE_KUO[d - 1];
                direction.push(build_direction_poly(s, a, m));
            } else {
                // Deterministic valid extension beyond the embedded table.
                let (s, a, m) = synth_poly(d);
                direction.push(build_direction_poly(s, a, &m));
            }
        }
        Ok(SobolSequence {
            dim,
            direction,
            state: vec![0; dim],
            index: 0,
            shift: vec![0; dim],
        })
    }

    /// Create a digitally shifted (randomised) copy seeded by `seed`.
    ///
    /// Point sets from different seeds are independent randomisations of
    /// the same net; averaging estimates over seeds gives an unbiased
    /// estimator with a valid empirical variance.
    pub fn scrambled(dim: usize, seed: u64) -> Result<Self, MathError> {
        let mut s = Self::new(dim)?;
        let mut rng = SplitMix64::new(seed ^ 0xA0B1_C2D3_E4F5_0617);
        for v in &mut s.shift {
            *v = rng.next_u64() >> (64 - BITS as u32) << (64 - BITS as u32);
        }
        Ok(s)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Index of the next point to be generated.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Write the next point into `out` (coordinates in `[0, 1)`).
    ///
    /// # Panics
    /// Panics if `out.len() != dim`.
    pub fn next_point(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim);
        let scale = 1.0 / (1u64 << BITS) as f64;
        for (d, o) in out.iter_mut().enumerate() {
            let bits = (self.state[d] ^ self.shift[d]) >> (64 - BITS as u32);
            *o = bits as f64 * scale;
        }
        // Advance state for the next call.
        let c = self.index.trailing_ones() as usize; // lowest zero bit position of index
        for d in 0..self.dim {
            self.state[d] ^= self.direction[d][c.min(BITS - 1)];
        }
        self.index += 1;
    }

    /// Generate the next point as a fresh vector.
    pub fn next_vec(&mut self) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        self.next_point(&mut v);
        v
    }

    /// Skip ahead `n` points (O(n); used to partition a sequence over
    /// parallel workers deterministically).
    pub fn skip(&mut self, n: u64) {
        let mut buf = vec![0.0; self.dim];
        for _ in 0..n {
            self.next_point(&mut buf);
        }
    }
}

/// Build direction integers for dimension 1 (van der Corput): V_k = 2^-k.
fn build_direction(_unused: u32, _m: &[u64]) -> [u64; BITS] {
    let mut v = [0u64; BITS];
    for (k, vk) in v.iter_mut().enumerate() {
        *vk = 1u64 << (63 - k);
    }
    v
}

/// Build direction integers from a primitive polynomial of degree `s`
/// with coefficient bits `a` and initial values `m` (length `s`).
fn build_direction_poly(s: u32, a: u32, m: &[u64]) -> [u64; BITS] {
    let s = s as usize;
    debug_assert_eq!(m.len(), s);
    let mut mm = vec![0u64; BITS];
    mm[..s].copy_from_slice(m);
    for k in s..BITS {
        // m_k = 2 a_1 m_{k-1} ^ 4 a_2 m_{k-2} ^ ... ^ 2^{s-1} a_{s-1} m_{k-s+1}
        //       ^ 2^s m_{k-s} ^ m_{k-s}
        let mut val = mm[k - s] ^ (mm[k - s] << s);
        for j in 1..s {
            let bit = (a >> (s - 1 - j)) & 1;
            if bit == 1 {
                val ^= mm[k - j] << j;
            }
        }
        mm[k] = val;
    }
    let mut v = [0u64; BITS];
    for (k, vk) in v.iter_mut().enumerate() {
        *vk = mm[k] << (63 - k);
    }
    v
}

/// Deterministic synthetic (degree, coeff, m-values) for dimensions beyond
/// the embedded Joe–Kuo rows. Satisfies m_k odd and m_k < 2^k.
fn synth_poly(d: usize) -> (u32, u32, Vec<u64>) {
    // Degree grows slowly with dimension, mirroring real tables.
    let s = (3 + (d % 6)) as u32; // degrees 3..8
    let mut rng = SplitMix64::new(0x5EED_0000 + d as u64);
    // A coefficient pattern in [0, 2^{s-1}) — interior bits of the poly.
    let a = (rng.next_u64() % (1u64 << (s - 1))) as u32;
    let mut m = Vec::with_capacity(s as usize);
    for k in 0..s as usize {
        let bound = 1u64 << k; // m_k in [1, 2^{k+1}) odd ⇒ choose odd below 2^{k+1}
        let v = (rng.next_u64() % bound.max(1)) * 2 + 1; // odd, < 2^{k+1}
        m.push(v);
    }
    (s, a, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dimension_one_is_van_der_corput() {
        let mut s = SobolSequence::new(1).unwrap();
        let pts: Vec<f64> = (0..8).map(|_| s.next_vec()[0]).collect();
        let expected = [0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125];
        for (p, e) in pts.iter().zip(&expected) {
            assert!(approx_eq(*p, *e, 1e-15), "{p} vs {e}");
        }
    }

    #[test]
    fn dimension_two_known_prefix() {
        // Standard Sobol' dim-2 sequence (unshifted).
        let mut s = SobolSequence::new(2).unwrap();
        let pts: Vec<Vec<f64>> = (0..4).map(|_| s.next_vec()).collect();
        assert!(approx_eq(pts[0][1], 0.0, 1e-15));
        assert!(approx_eq(pts[1][1], 0.5, 1e-15));
        assert!(approx_eq(pts[2][1], 0.25, 1e-15));
        assert!(approx_eq(pts[3][1], 0.75, 1e-15));
    }

    #[test]
    fn first_2k_points_stratify_each_dimension() {
        // Property of a (t,s)-net: among the first 2^k points, each dyadic
        // interval [j/2^k, (j+1)/2^k) contains exactly one coordinate value
        // in dimension 1 (van der Corput), and each interval of width 1/8
        // has exactly 2 of 16 points in every dimension.
        let dim = 6;
        let mut s = SobolSequence::new(dim).unwrap();
        let n = 16usize;
        let mut pts = vec![vec![0.0; dim]; n];
        for p in pts.iter_mut() {
            s.next_point(p);
        }
        for d in 0..dim {
            let mut counts = [0usize; 8];
            for p in &pts {
                counts[(p[d] * 8.0) as usize] += 1;
            }
            for (j, &c) in counts.iter().enumerate() {
                assert_eq!(c, 2, "dim {d}, bin {j}: {counts:?}");
            }
        }
    }

    #[test]
    fn balanced_halves_in_all_dimensions() {
        let dim = 32; // exercises the synthetic extension
        let mut s = SobolSequence::new(dim).unwrap();
        let n = 256usize;
        let mut lows = vec![0usize; dim];
        let mut buf = vec![0.0; dim];
        for _ in 0..n {
            s.next_point(&mut buf);
            for (d, &x) in buf.iter().enumerate() {
                assert!((0.0..1.0).contains(&x), "coordinate out of range: {x}");
                if x < 0.5 {
                    lows[d] += 1;
                }
            }
        }
        for (d, &l) in lows.iter().enumerate() {
            assert_eq!(l, n / 2, "dim {d} not balanced: {l}");
        }
    }

    #[test]
    fn qmc_integrates_faster_than_uniform_grid_noise() {
        // ∫ over [0,1]^5 of Π x_i = 1/32; 4096 Sobol points should be
        // within 1e-3 (MC with same n would have SE ≈ 2e-3).
        let dim = 5;
        let mut s = SobolSequence::new(dim).unwrap();
        let n = 4096;
        let mut acc = 0.0;
        let mut buf = vec![0.0; dim];
        for _ in 0..n {
            s.next_point(&mut buf);
            acc += buf.iter().product::<f64>();
        }
        let est = acc / n as f64;
        assert!((est - 1.0 / 32.0).abs() < 1e-3, "est {est}");
    }

    #[test]
    fn scrambled_sequences_differ_but_both_integrate() {
        let mut a = SobolSequence::scrambled(3, 1).unwrap();
        let mut b = SobolSequence::scrambled(3, 2).unwrap();
        let pa = a.next_vec();
        let pb = b.next_vec();
        assert_ne!(pa, pb);
        // Integration sanity for the shifted net.
        let mut s = SobolSequence::scrambled(3, 42).unwrap();
        let n = 2048;
        let mut acc = 0.0;
        let mut buf = vec![0.0; 3];
        for _ in 0..n {
            s.next_point(&mut buf);
            acc += buf.iter().sum::<f64>();
        }
        assert!((acc / n as f64 - 1.5).abs() < 5e-3);
    }

    #[test]
    fn skip_matches_sequential_generation() {
        let mut a = SobolSequence::new(4).unwrap();
        let mut b = SobolSequence::new(4).unwrap();
        a.skip(37);
        for _ in 0..37 {
            b.next_vec();
        }
        assert_eq!(a.next_vec(), b.next_vec());
    }

    #[test]
    fn rejects_invalid_dimensions() {
        assert!(SobolSequence::new(0).is_err());
        assert!(SobolSequence::new(MAX_DIMENSION + 1).is_err());
        assert!(SobolSequence::new(MAX_DIMENSION).is_ok());
    }
}
