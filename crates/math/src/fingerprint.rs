//! Bit-exact 64-bit fingerprinting (FNV-1a) shared by every cache key
//! in the workspace.
//!
//! Plan caches, request coalescing and portfolio grouping all key on
//! "is this input *bitwise* the same as that one" — floats compared by
//! IEEE-754 bit pattern, never by value, so `0.0` and `-0.0` are
//! different inputs exactly as they could produce different downstream
//! bits. [`Fnv64`] is the single implementation behind
//! `GbmMarket::cache_key`, `Method::cache_key` and
//! `Portfolio::group_key`; it hashes a stream of `u64` words with
//! FNV-1a over their little-endian bytes, which is stable across runs,
//! processes and platforms.

/// Incremental FNV-1a 64-bit hasher over a stream of `u64` words.
///
/// Words are folded byte-by-byte (little-endian) with the standard
/// FNV-1a offset basis and prime, so the digest of a sequence of words
/// is identical to hashing their concatenated LE byte strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    h: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// FNV-1a 64-bit offset basis.
    const OFFSET_BASIS: u64 = 0xcbf29ce484222325;
    /// FNV-1a 64-bit prime.
    const PRIME: u64 = 0x100000001b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 {
            h: Self::OFFSET_BASIS,
        }
    }

    /// Fold one `u64` word into the digest, byte by byte (LE order).
    pub fn eat(&mut self, word: u64) -> &mut Self {
        for b in word.to_le_bytes() {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold an `f64` by its IEEE-754 bit pattern (`0.0 != -0.0`).
    pub fn eat_f64(&mut self, x: f64) -> &mut Self {
        self.eat(x.to_bits())
    }

    /// Fold a `usize` (widened to `u64`).
    pub fn eat_usize(&mut self, x: usize) -> &mut Self {
        self.eat(x as u64)
    }

    /// Fold a slice of `f64`s in order, each by bit pattern.
    pub fn eat_f64s(&mut self, xs: &[f64]) -> &mut Self {
        for &x in xs {
            self.eat_f64(x);
        }
        self
    }

    /// The digest of everything eaten so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hand-rolled loop this helper replaced, kept as the oracle:
    /// digests must stay value-identical so existing cache keys and
    /// golden pins survive the deduplication.
    fn reference(words: &[u64]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &word in words {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    #[test]
    fn matches_hand_rolled_reference() {
        let cases: &[&[u64]] = &[
            &[],
            &[0],
            &[1, 2, 3],
            &[u64::MAX, 0x5EED, 42],
            &[100.0f64.to_bits(), 0.2f64.to_bits(), 0.05f64.to_bits()],
        ];
        for words in cases {
            let mut f = Fnv64::new();
            for &w in *words {
                f.eat(w);
            }
            assert_eq!(f.finish(), reference(words));
        }
    }

    #[test]
    fn empty_digest_is_offset_basis() {
        assert_eq!(Fnv64::new().finish(), 0xcbf29ce484222325);
    }

    #[test]
    fn order_sensitive() {
        let ab = *Fnv64::new().eat(1).eat(2);
        let ba = *Fnv64::new().eat(2).eat(1);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let pos = *Fnv64::new().eat_f64(0.0);
        let neg = *Fnv64::new().eat_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish(), "0.0 and -0.0 must differ");
        let nan = *Fnv64::new().eat_f64(f64::NAN);
        assert_eq!(nan.finish(), Fnv64::new().eat_f64(f64::NAN).finish());
    }

    #[test]
    fn slice_equals_elementwise() {
        let xs = [1.5, -2.25, 3.75];
        let mut a = Fnv64::new();
        a.eat_f64s(&xs);
        let mut b = Fnv64::new();
        for &x in &xs {
            b.eat_f64(x);
        }
        assert_eq!(a.finish(), b.finish());
    }
}
